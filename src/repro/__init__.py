"""repro — parallel mining of generalized association rules.

Reproduction of Shintani & Kitsuregawa, *Parallel Mining Algorithms for
Generalized Association Rules with Classification Hierarchy* (SIGMOD
1998).

Public API tour
---------------
Taxonomy substrate
    :class:`~repro.taxonomy.Taxonomy`, :func:`~repro.taxonomy.generate_taxonomy`
Synthetic data (Srikant-Agrawal generator)
    :func:`~repro.datagen.generate_dataset`, :func:`~repro.datagen.preset`
Sequential mining
    :func:`~repro.core.cumulate`, :func:`~repro.core.apriori`,
    :func:`~repro.core.generate_rules`
Cluster simulator (shared-nothing SP-2 substitute)
    :class:`~repro.cluster.ClusterConfig`, :class:`~repro.cluster.Cluster`
Parallel algorithms
    :func:`~repro.parallel.mine_parallel` and the classes
    ``NPGM``, ``HPGM``, ``HHPGM``, ``HHPGMTreeGrain``, ``HHPGMPathGrain``,
    ``HHPGMFineGrain``
Experiments
    :mod:`repro.experiments` — one module per table/figure of the paper.
"""

from repro.core import apriori, cumulate, generate_rules, interesting_rules, stratify
from repro.core.result import MiningResult, PassResult, Rule
from repro.datagen import GeneratorParams, TransactionDatabase, generate_dataset, preset
from repro.taxonomy import Taxonomy, generate_taxonomy

__version__ = "1.0.0"

__all__ = [
    "GeneratorParams",
    "MiningResult",
    "PassResult",
    "Rule",
    "Taxonomy",
    "TransactionDatabase",
    "apriori",
    "cumulate",
    "generate_dataset",
    "generate_rules",
    "generate_taxonomy",
    "interesting_rules",
    "preset",
    "stratify",
]
