"""Classification-hierarchy (taxonomy) substrate.

The paper (Section 2) models the classification hierarchy as a forest of
*is-a* trees over the item universe.  This subpackage provides:

* :class:`~repro.taxonomy.hierarchy.Taxonomy` — an immutable, fully
  precomputed view of the forest (parents, ancestors, roots, depths).
* :mod:`~repro.taxonomy.builder` — validated construction from edge lists
  and parent mappings.
* :mod:`~repro.taxonomy.generate` — random taxonomies matching the
  synthetic-data parameters of the paper (number of roots, fanout, levels).
* :mod:`~repro.taxonomy.ops` — the transaction-level operations every
  mining pass needs: ancestor extension (Cumulate), closest-large-ancestor
  replacement (H-HPGM family), and pruning the hierarchy to the items that
  actually appear in candidates.
"""

from repro.taxonomy.builder import taxonomy_from_edges, taxonomy_from_parents
from repro.taxonomy.generate import generate_taxonomy
from repro.taxonomy.hierarchy import Taxonomy
from repro.taxonomy.ops import (
    AncestorIndex,
    closest_large_ancestors,
    extend_transaction,
    replace_with_closest_large,
)

__all__ = [
    "AncestorIndex",
    "Taxonomy",
    "closest_large_ancestors",
    "extend_transaction",
    "generate_taxonomy",
    "replace_with_closest_large",
    "taxonomy_from_edges",
    "taxonomy_from_parents",
]
