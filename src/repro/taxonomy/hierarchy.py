"""The :class:`Taxonomy` class — an immutable classification hierarchy.

A taxonomy is a forest: every item has at most one parent, edges encode
*is-a* relationships, and the relation is acyclic (Section 2 of the paper).
The class precomputes everything the mining algorithms query in inner
loops — ancestor tuples, root assignment, depth — so lookups are plain
dictionary reads.

Construction should normally go through :mod:`repro.taxonomy.builder`,
which validates the parent relation; the constructor here assumes a clean
relation and only performs cheap structural checks.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from repro.errors import CycleError, UnknownItemError

Item = int


class Taxonomy:
    """Immutable forest of *is-a* relationships over integer item ids.

    Parameters
    ----------
    parents:
        Mapping from every item in the universe to its parent item, or to
        ``None`` for roots.  Every item of the universe must appear as a
        key; parents must themselves be keys.

    Notes
    -----
    The item universe is exactly ``parents.keys()``.  Items are opaque
    integer ids; nothing requires them to be contiguous, although the
    synthetic generator produces BFS-ordered contiguous ids (so an
    ancestor's id is always smaller than its descendants').
    """

    __slots__ = (
        "_parent",
        "_children",
        "_ancestors",
        "_root",
        "_depth",
        "_roots",
        "_leaves",
        "_max_depth",
    )

    def __init__(self, parents: Mapping[Item, Item | None]):
        self._parent: dict[Item, Item | None] = dict(parents)
        for item, parent in self._parent.items():
            if parent is not None and parent not in self._parent:
                raise UnknownItemError(
                    f"item {item} names parent {parent}, which is not in the universe"
                )

        self._children: dict[Item, tuple[Item, ...]] = {}
        kids: dict[Item, list[Item]] = {item: [] for item in self._parent}
        for item, parent in self._parent.items():
            if parent is not None:
                kids[parent].append(item)
        for item, child_list in kids.items():
            self._children[item] = tuple(sorted(child_list))

        self._ancestors: dict[Item, tuple[Item, ...]] = {}
        self._root: dict[Item, Item] = {}
        self._depth: dict[Item, int] = {}
        for item in self._parent:
            self._resolve(item)

        self._roots: tuple[Item, ...] = tuple(
            sorted(i for i, p in self._parent.items() if p is None)
        )
        self._leaves: tuple[Item, ...] = tuple(
            sorted(i for i, c in self._children.items() if not c)
        )
        self._max_depth: int = max(self._depth.values(), default=0)

    def _resolve(self, item: Item) -> None:
        """Fill the ancestor/root/depth caches for ``item`` iteratively."""
        if item in self._ancestors:
            return
        chain: list[Item] = []
        cursor: Item | None = item
        seen: set[Item] = set()
        while cursor is not None and cursor not in self._ancestors:
            if cursor in seen:
                raise CycleError(f"cycle through item {cursor}")
            seen.add(cursor)
            chain.append(cursor)
            cursor = self._parent[cursor]
        # ``cursor`` is now None (we walked to a root) or already resolved.
        if cursor is None:
            base_ancestors: tuple[Item, ...] = ()
            base_root: Item | None = None
            base_depth = -1
        else:
            base_ancestors = (cursor,) + self._ancestors[cursor]
            base_root = self._root[cursor]
            base_depth = self._depth[cursor]
        for node in reversed(chain):
            self._ancestors[node] = base_ancestors
            self._root[node] = base_root if base_root is not None else node
            if base_root is None:
                base_root = node
            base_depth += 1
            self._depth[node] = base_depth
            base_ancestors = (node,) + base_ancestors

    # ------------------------------------------------------------------
    # Universe
    # ------------------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        return item in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def __iter__(self) -> Iterator[Item]:
        return iter(self._parent)

    @property
    def items(self) -> Iterable[Item]:
        """All item ids in the universe (unordered view)."""
        return self._parent.keys()

    @property
    def roots(self) -> tuple[Item, ...]:
        """Items with no parent, sorted ascending."""
        return self._roots

    @property
    def leaves(self) -> tuple[Item, ...]:
        """Items with no children, sorted ascending."""
        return self._leaves

    @property
    def max_depth(self) -> int:
        """Depth of the deepest item (roots have depth 0)."""
        return self._max_depth

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------
    def parent(self, item: Item) -> Item | None:
        """Parent of ``item`` or ``None`` for roots."""
        try:
            return self._parent[item]
        except KeyError:
            raise UnknownItemError(f"unknown item {item}") from None

    def children(self, item: Item) -> tuple[Item, ...]:
        """Direct children of ``item``, sorted ascending."""
        try:
            return self._children[item]
        except KeyError:
            raise UnknownItemError(f"unknown item {item}") from None

    def ancestors(self, item: Item) -> tuple[Item, ...]:
        """All proper ancestors of ``item``, nearest first (parent, …, root)."""
        try:
            return self._ancestors[item]
        except KeyError:
            raise UnknownItemError(f"unknown item {item}") from None

    def ancestors_or_self(self, item: Item) -> tuple[Item, ...]:
        """``item`` followed by its proper ancestors, nearest first."""
        return (item,) + self.ancestors(item)

    def root_of(self, item: Item) -> Item:
        """The root of the tree containing ``item`` (itself if a root)."""
        try:
            return self._root[item]
        except KeyError:
            raise UnknownItemError(f"unknown item {item}") from None

    def depth(self, item: Item) -> int:
        """Distance from ``item`` to its root (roots have depth 0)."""
        try:
            return self._depth[item]
        except KeyError:
            raise UnknownItemError(f"unknown item {item}") from None

    def is_root(self, item: Item) -> bool:
        """True when ``item`` has no parent."""
        return self.parent(item) is None

    def is_leaf(self, item: Item) -> bool:
        """True when ``item`` has no children."""
        return not self.children(item)

    def is_ancestor(self, candidate: Item, item: Item) -> bool:
        """True when ``candidate`` is a *proper* ancestor of ``item``."""
        return candidate in self.ancestors(item)

    def subtree(self, root: Item) -> tuple[Item, ...]:
        """Every item of the tree rooted at ``root`` (including it), BFS order."""
        if root not in self._parent:
            raise UnknownItemError(f"unknown item {root}")
        found: list[Item] = [root]
        frontier = [root]
        while frontier:
            nxt: list[Item] = []
            for node in frontier:
                nxt.extend(self._children[node])
            found.extend(nxt)
            frontier = nxt
        return tuple(found)

    def descendants(self, item: Item) -> tuple[Item, ...]:
        """Every proper descendant of ``item``, BFS order."""
        return self.subtree(item)[1:]

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def parent_map(self) -> dict[Item, Item | None]:
        """A copy of the underlying item → parent mapping."""
        return dict(self._parent)

    def tree_sizes(self) -> dict[Item, int]:
        """Number of items in each root's tree, keyed by root id."""
        sizes: dict[Item, int] = {root: 0 for root in self._roots}
        for item in self._parent:
            sizes[self._root[item]] += 1
        return sizes

    def __repr__(self) -> str:
        return (
            f"Taxonomy(items={len(self._parent)}, roots={len(self._roots)}, "
            f"leaves={len(self._leaves)}, max_depth={self._max_depth})"
        )
