"""Transaction-level taxonomy operations used in mining inner loops.

Three operations from the paper:

* **Ancestor extension** (Cumulate, step 2): add to a transaction every
  ancestor of its items — optionally only the ancestors that still occur
  in some candidate, the "delete any ancestors in T that are not present
  in the candidates" optimization.
* **Closest-large-ancestor replacement** (H-HPGM, line 8): replace each
  item with its nearest *large* ancestor (or itself if large), dropping
  items that have no large ancestor-or-self.
* **:class:`AncestorIndex`** — a precomputed, prunable item → ancestors
  table so the per-transaction work is dictionary lookups only.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable, Set

from repro.taxonomy.hierarchy import Item, Taxonomy


class AncestorIndex:
    """Precomputed item → relevant-ancestors table.

    Cumulate prunes the hierarchy each pass: ancestors that appear in no
    candidate need not be added to transactions.  ``AncestorIndex`` bakes
    that pruning into a flat dictionary so extension is one lookup per
    item.

    Parameters
    ----------
    taxonomy:
        The full classification hierarchy.
    keep:
        When given, only ancestors in this set are retained (the items
        themselves are always kept by :meth:`extend`).  ``None`` keeps
        every ancestor.
    """

    __slots__ = ("_ancestors",)

    def __init__(self, taxonomy: Taxonomy, keep: Set[Item] | None = None):
        self._ancestors: dict[Item, tuple[Item, ...]] = {}
        for item in taxonomy.items:
            ancestors = taxonomy.ancestors(item)
            if keep is not None:
                ancestors = tuple(a for a in ancestors if a in keep)
            self._ancestors[item] = ancestors

    def ancestors(self, item: Item) -> tuple[Item, ...]:
        """Retained ancestors of ``item``, nearest first; () if unknown."""
        return self._ancestors.get(item, ())

    def extend(self, transaction: Iterable[Item]) -> tuple[Item, ...]:
        """Return the sorted, deduplicated ancestor extension of a transaction.

        Items not present in the taxonomy are passed through unchanged
        (they simply have no ancestors), matching the paper's treatment of
        items outside the hierarchy.
        """
        extended: set[Item] = set()
        for item in transaction:
            extended.add(item)
            extended.update(self._ancestors.get(item, ()))
        return tuple(sorted(extended))


def extend_transaction(
    taxonomy: Taxonomy,
    transaction: Iterable[Item],
    keep: Set[Item] | None = None,
) -> tuple[Item, ...]:
    """One-shot ancestor extension (see :class:`AncestorIndex` for loops).

    Returns the sorted union of the transaction's items and their
    ancestors, restricted to ``keep`` when given.
    """
    extended: set[Item] = set()
    for item in transaction:
        extended.add(item)
        if item in taxonomy:
            for ancestor in taxonomy.ancestors(item):
                if keep is None or ancestor in keep:
                    extended.add(ancestor)
    return tuple(sorted(extended))


def closest_large_ancestors(
    taxonomy: Taxonomy,
    large_items: Collection[Item],
) -> dict[Item, Item | None]:
    """Map every item to its nearest large ancestor-or-self.

    This is the replacement table for H-HPGM's transaction rewrite
    (Figure 5, line 8): a large item maps to itself; a small item maps to
    the closest-to-the-bottom large ancestor; items with no large
    ancestor map to ``None`` and are dropped from transactions.
    """
    large = set(large_items)
    table: dict[Item, Item | None] = {}
    for item in taxonomy.items:
        if item in large:
            table[item] = item
            continue
        replacement: Item | None = None
        for ancestor in taxonomy.ancestors(item):
            if ancestor in large:
                replacement = ancestor
                break
        table[item] = replacement
    return table


def replace_with_closest_large(
    transaction: Iterable[Item],
    table: dict[Item, Item | None],
) -> tuple[Item, ...]:
    """Apply a closest-large-ancestor table to one transaction.

    Returns the sorted, deduplicated rewrite; items mapping to ``None``
    (no large ancestor) and items absent from the table are dropped.
    """
    rewritten = {
        table[item]
        for item in transaction
        if table.get(item) is not None
    }
    return tuple(sorted(rewritten))  # type: ignore[arg-type]
