"""Validated construction of :class:`~repro.taxonomy.hierarchy.Taxonomy`.

Two entry points:

* :func:`taxonomy_from_parents` — from an item → parent mapping.
* :func:`taxonomy_from_edges` — from ``(parent, child)`` edge pairs plus an
  optional set of extra isolated items.

Both reject multi-parent items, unknown references, self-loops and cycles,
which keeps the :class:`Taxonomy` constructor's assumptions honest.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.errors import TaxonomyError
from repro.taxonomy.hierarchy import Item, Taxonomy


def taxonomy_from_parents(parents: Mapping[Item, Item | None]) -> Taxonomy:
    """Build a taxonomy from an item → parent mapping.

    Parameters
    ----------
    parents:
        Every item of the universe mapped to its parent, ``None`` for
        roots.  Parents must themselves appear as keys.

    Raises
    ------
    TaxonomyError
        On self-loops; the :class:`Taxonomy` constructor additionally
        raises on unknown parents and cycles.
    """
    for item, parent in parents.items():
        if parent == item:
            raise TaxonomyError(f"item {item} is its own parent")
    return Taxonomy(parents)


def taxonomy_from_edges(
    edges: Iterable[tuple[Item, Item]],
    isolated: Iterable[Item] = (),
) -> Taxonomy:
    """Build a taxonomy from ``(parent, child)`` edges.

    Parameters
    ----------
    edges:
        Iterable of ``(parent, child)`` pairs.  Each child may appear at
        most once (a forest, not a DAG).
    isolated:
        Items that participate in no edge but still belong to the
        universe (single-item trees).

    Raises
    ------
    TaxonomyError
        When a child has two distinct parents or an edge is a self-loop.
    """
    parents: dict[Item, Item | None] = {}
    for parent, child in edges:
        if parent == child:
            raise TaxonomyError(f"self-loop on item {parent}")
        if child in parents and parents[child] is not None and parents[child] != parent:
            raise TaxonomyError(
                f"item {child} has two parents: {parents[child]} and {parent}"
            )
        parents[child] = parent
        parents.setdefault(parent, None)
    for item in isolated:
        parents.setdefault(item, None)
    return Taxonomy(parents)
