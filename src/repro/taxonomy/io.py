"""Taxonomy on-disk format.

One line per item: ``<item> <parent>`` with ``-1`` for roots — the
format ``repro-mine generate`` writes and anything downstream can read
back.  Order-independent; blank lines ignored.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import TransactionFormatError
from repro.taxonomy.builder import taxonomy_from_parents
from repro.taxonomy.hierarchy import Taxonomy


def save_taxonomy(taxonomy: Taxonomy, path: str | Path) -> None:
    """Write the parent relation, items ascending, roots as ``-1``."""
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        for item, parent in sorted(taxonomy.parent_map().items()):
            handle.write(f"{item} {-1 if parent is None else parent}\n")


def load_taxonomy(path: str | Path) -> Taxonomy:
    """Read the format written by :func:`save_taxonomy` (validated)."""
    path = Path(path)
    parents: dict[int, int | None] = {}
    with path.open("r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            tokens = line.split()
            if len(tokens) != 2:
                raise TransactionFormatError(
                    f"{path}:{line_number}: expected '<item> <parent>'"
                )
            try:
                item, parent = int(tokens[0]), int(tokens[1])
            except ValueError as exc:
                raise TransactionFormatError(
                    f"{path}:{line_number}: non-integer id"
                ) from exc
            if item in parents:
                raise TransactionFormatError(
                    f"{path}:{line_number}: duplicate item {item}"
                )
            parents[item] = None if parent == -1 else parent
    return taxonomy_from_parents(parents)
