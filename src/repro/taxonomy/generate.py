"""Random taxonomy generation matching the paper's dataset parameters.

The synthetic datasets of Table 5 (R30F5, R30F3, R30F10) are described by
three structural knobs: *number of items*, *number of roots* and *fanout*.
The resulting *number of levels* (5–6 for fanout 5, 6–7 for fanout 3, 3–4
for fanout 10 at 30 000 items) is an emergent property of filling the item
budget breadth-first, which is exactly how this generator works:

1. Roots get the first ``num_roots`` ids.
2. Repeatedly pop the next unexpanded node (FIFO) and give it a number of
   children drawn around ``fanout`` until the item budget is exhausted.

Because expansion is breadth-first, item ids are level-ordered: every
ancestor has a smaller id than all of its descendants.  Nothing in the
library relies on that, but it makes examples and debugging output easy
to read.
"""

from __future__ import annotations

import random
from collections import deque

from repro.errors import DataGenerationError
from repro.taxonomy.hierarchy import Item, Taxonomy


def generate_taxonomy(
    num_items: int,
    num_roots: int,
    fanout: float,
    seed: int | None = None,
    jitter: float = 0.5,
) -> Taxonomy:
    """Generate a random classification hierarchy.

    Parameters
    ----------
    num_items:
        Total number of items (all levels included).
    num_roots:
        Number of trees in the forest; the paper uses 30.
    fanout:
        Average number of children per internal node (paper: 3, 5, 10).
    seed:
        RNG seed; the same seed always yields the same forest.
    jitter:
        Relative spread of the per-node child count.  Each expanded node
        receives ``uniform(fanout * (1 - jitter), fanout * (1 + jitter))``
        children (rounded, at least one), so trees are irregular like the
        original generator's rather than perfect ``fanout``-ary trees.

    Returns
    -------
    Taxonomy
        Forest with ids ``0 .. num_items - 1`` in BFS (level) order.

    Raises
    ------
    DataGenerationError
        When the parameters are inconsistent (e.g. more roots than items).
    """
    if num_items <= 0:
        raise DataGenerationError(f"num_items must be positive, got {num_items}")
    if num_roots <= 0:
        raise DataGenerationError(f"num_roots must be positive, got {num_roots}")
    if num_roots > num_items:
        raise DataGenerationError(
            f"num_roots ({num_roots}) exceeds num_items ({num_items})"
        )
    if fanout < 1:
        raise DataGenerationError(f"fanout must be >= 1, got {fanout}")
    if not 0 <= jitter < 1:
        raise DataGenerationError(f"jitter must be in [0, 1), got {jitter}")

    rng = random.Random(seed)
    parents: dict[Item, Item | None] = {item: None for item in range(num_roots)}
    frontier: deque[Item] = deque(range(num_roots))
    next_id = num_roots
    low = fanout * (1.0 - jitter)
    high = fanout * (1.0 + jitter)

    while next_id < num_items:
        node = frontier.popleft()
        want = max(1, round(rng.uniform(low, high)))
        take = min(want, num_items - next_id)
        for _ in range(take):
            parents[next_id] = node
            frontier.append(next_id)
            next_id += 1

    return Taxonomy(parents)
