"""``repro-mine`` — command-line front end.

Three subcommands:

* ``generate`` — write a scaled synthetic dataset (transactions + the
  taxonomy's parent relation) to disk.
* ``mine`` — mine generalized association rules from a preset dataset
  or a transaction file, sequentially (Cumulate) or on the simulated
  cluster with any of the six parallel algorithms.
* ``experiment`` — run one of the paper's tables/figures.

Examples
--------
::

    repro-mine mine --dataset R30F5 --min-support 0.02 --algorithm H-HPGM-FGD
    repro-mine generate --dataset R30F3 --transactions 5000 --out /tmp/r30f3
    repro-mine experiment table6
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.core.cumulate import cumulate
from repro.perf.config import CountingConfig
from repro.core.rules import generate_rules, interesting_rules, rule_interest
from repro.core.io import save_result
from repro.datagen.io import save_transactions_text
from repro.errors import ReproError, StoreFormatError, error_label, exit_code_for
from repro.taxonomy.io import save_taxonomy
from repro.experiments import common
from repro.experiments import fig13, fig14, fig15, fig16, table6
from repro.parallel.registry import ALGORITHMS, make_miner

_EXPERIMENTS = {
    "table6": table6,
    "fig13": fig13,
    "fig14": fig14,
    "fig15": fig15,
    "fig16": fig16,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mine",
        description="Parallel generalized association rule mining (SIGMOD '98 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="write a synthetic dataset to disk")
    gen.add_argument("--dataset", default="R30F5", help="R30F5 | R30F3 | R30F10")
    gen.add_argument("--transactions", type=int, default=None)
    gen.add_argument("--seed", type=int, default=common.DEFAULT_SEED)
    gen.add_argument(
        "--out",
        default=None,
        help="output prefix (writes <out>.txt and <out>.taxonomy); "
        "materialises the dataset in memory",
    )
    gen.add_argument(
        "--store-out",
        default=None,
        help="write a columnar store directory instead (streaming: the "
        "dataset is never materialised; taxonomy is saved inside)",
    )
    gen.add_argument(
        "--segment-rows",
        type=int,
        default=None,
        help="rows per store segment (with --store-out)",
    )

    mine = sub.add_parser("mine", help="mine generalized association rules")
    mine.add_argument("--dataset", default="R30F5", help="R30F5 | R30F3 | R30F10")
    mine.add_argument("--transactions", type=int, default=None)
    mine.add_argument("--seed", type=int, default=common.DEFAULT_SEED)
    mine.add_argument(
        "--store",
        default=None,
        help="mine a columnar store directory (from `generate --store-out`) "
        "instead of generating a dataset; scans it out-of-core",
    )
    mine.add_argument(
        "--taxonomy",
        default=None,
        help="taxonomy file for --store (defaults to the taxonomy.txt "
        "saved inside the store directory)",
    )
    mine.add_argument("--min-support", type=float, default=0.02)
    mine.add_argument("--min-confidence", type=float, default=0.6)
    mine.add_argument(
        "--algorithm",
        default="cumulate",
        help="cumulate (sequential) or one of: " + ", ".join(ALGORITHMS),
    )
    mine.add_argument("--nodes", type=int, default=common.DEFAULT_NUM_NODES)
    mine.add_argument("--memory", type=int, default=common.DEFAULT_MEMORY_PER_NODE)
    mine.add_argument(
        "--strict-memory",
        action="store_true",
        help="fail (exit 4) when a node overflows its candidate budget "
        "instead of fragmenting",
    )
    mine.add_argument("--max-k", type=int, default=None)
    mine.add_argument(
        "--workers",
        type=int,
        default=1,
        help="host processes for the per-node scans (>1 selects the "
        "process executor; results are identical either way)",
    )
    mine.add_argument(
        "--kernel",
        choices=("fast", "naive"),
        default="fast",
        help="counting kernels: fast (candidate trie + dedup) or naive "
        "(reference enumeration); identical results and statistics",
    )
    mine.add_argument("--rules", type=int, default=10, help="rules to print (0 = none)")
    mine.add_argument(
        "--rules-out",
        default=None,
        help="export the generated rules as JSONL for `repro-serve build "
        "--rules` (exit 15 when no rule clears the thresholds)",
    )
    mine.add_argument(
        "--min-interest",
        type=float,
        default=None,
        help="keep only R-interesting rules at this ratio before "
        "printing/exporting",
    )
    mine.add_argument(
        "--save-result", default=None, help="write the mining result as JSON"
    )
    mine.add_argument(
        "--trace-out",
        default=None,
        help="write the observability event stream (JSONL) to this path "
        "(parallel algorithms only; inspect with repro-trace)",
    )
    mine.add_argument(
        "--metrics-out",
        default=None,
        help="write the metrics registry in Prometheus text format",
    )

    exp = sub.add_parser("experiment", help="run one of the paper's experiments")
    exp.add_argument("name", choices=sorted(_EXPERIMENTS))

    seq = sub.add_parser(
        "sequences", help="mine generalized sequential patterns (GSP / [SK98])"
    )
    seq.add_argument("--customers", type=int, default=400)
    seq.add_argument("--seed", type=int, default=common.DEFAULT_SEED)
    seq.add_argument("--min-support", type=float, default=0.05)
    seq.add_argument(
        "--algorithm",
        default="gsp",
        help="gsp (sequential) or one of: NPSPM, SPSPM, HPSPM",
    )
    seq.add_argument("--nodes", type=int, default=8)
    seq.add_argument("--max-k", type=int, default=2)
    seq.add_argument("--patterns", type=int, default=10, help="patterns to print")

    return parser


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.out is None and args.store_out is None:
        print("repro-mine: generate needs --out and/or --store-out", file=sys.stderr)
        return 2
    if args.store_out is not None:
        from repro.datagen.generator import generate_dataset_to_store
        from repro.store import open_store

        params = common.experiment_params(args.dataset, args.transactions, args.seed)
        manifest = generate_dataset_to_store(
            params, args.store_out, segment_rows=args.segment_rows
        )
        store = open_store(args.store_out, verify=False)
        print(
            f"wrote {len(store)} transactions "
            f"({store.num_segments} segments, {store.store_bytes()} bytes) "
            f"to {manifest.parent}"
        )
    if args.out is not None:
        dataset = common.experiment_dataset(args.dataset, args.transactions, args.seed)
        prefix = Path(args.out)
        prefix.parent.mkdir(parents=True, exist_ok=True)
        transactions_path = prefix.with_suffix(".txt")
        taxonomy_path = prefix.with_suffix(".taxonomy")
        save_transactions_text(dataset.database, transactions_path)
        save_taxonomy(dataset.taxonomy, taxonomy_path)
        print(f"wrote {len(dataset.database)} transactions to {transactions_path}")
        print(f"wrote {len(dataset.taxonomy)} taxonomy entries to {taxonomy_path}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    store = None
    if args.store is not None:
        from repro.store import TAXONOMY_NAME, open_store
        from repro.taxonomy.io import load_taxonomy

        store = open_store(args.store)
        taxonomy_path = (
            Path(args.taxonomy)
            if args.taxonomy is not None
            else Path(args.store) / TAXONOMY_NAME
        )
        if not taxonomy_path.exists():
            raise StoreFormatError(
                f"{taxonomy_path}: no taxonomy found for store {args.store} "
                "(pass --taxonomy)"
            )
        database = store
        taxonomy = load_taxonomy(taxonomy_path)
        dataset_label = str(args.store)
    else:
        dataset = common.experiment_dataset(args.dataset, args.transactions, args.seed)
        database, taxonomy = dataset.database, dataset.taxonomy
        dataset_label = args.dataset
    counting = CountingConfig(
        kernel=args.kernel,
        dedup=args.kernel == "fast",
        store=args.store,
    )
    if args.algorithm.lower() == "cumulate":
        result = cumulate(
            database,
            taxonomy,
            args.min_support,
            max_k=args.max_k,
            counting=counting,
        )
        print(result)
    else:
        config = ClusterConfig(
            num_nodes=args.nodes,
            memory_per_node=args.memory,
            strict_memory=args.strict_memory,
            executor="process" if args.workers > 1 else "serial",
            workers=args.workers,
        )
        if store is not None:
            cluster = Cluster.from_store(config, store)
        else:
            cluster = Cluster.from_database(config, database)
        telemetry = None
        if args.trace_out or args.metrics_out:
            from repro.obs import EventSink, Telemetry

            sink = EventSink(path=args.trace_out) if args.trace_out else None
            telemetry = Telemetry(sink=sink)
            cluster.attach_telemetry(telemetry)
        miner = make_miner(args.algorithm, cluster, taxonomy, counting=counting)
        try:
            run = miner.mine(args.min_support, max_k=args.max_k)
        finally:
            cluster.close()
        if telemetry is not None:
            if telemetry.sink is not None:
                telemetry.sink.close()
                print(f"trace written to {args.trace_out}")
            if args.metrics_out:
                Path(args.metrics_out).write_text(
                    telemetry.registry.to_prometheus(), encoding="utf-8"
                )
                print(f"metrics written to {args.metrics_out}")
        result = run.result
        print(result)
        for pass_stats in run.stats.passes:
            print(
                f"  pass {pass_stats.k}: |C|={pass_stats.num_candidates} "
                f"|L|={pass_stats.num_large} elapsed={pass_stats.elapsed:.3f}s "
                f"recv={pass_stats.total_bytes_received}B "
                f"dup={pass_stats.duplicated_candidates} "
                f"fragments={pass_stats.fragments}"
            )
    if args.rules or args.rules_out:
        rules = generate_rules(result, args.min_confidence, taxonomy)
        if args.min_interest is not None:
            rules = interesting_rules(
                rules, result, taxonomy, args.min_interest
            )
        print(f"{len(rules)} rules at confidence >= {args.min_confidence}:")
        for rule in rules[: args.rules]:
            print(f"  {rule}")
        if args.rules_out:
            from repro.serve.rules_io import write_rules_jsonl

            supports = result.large_itemsets()
            by_key = {(rule.antecedent, rule.consequent): rule for rule in rules}
            interests = [
                rule_interest(rule, by_key, supports, taxonomy)
                for rule in rules
            ]
            source = {
                "dataset": dataset_label,
                "seed": args.seed,
                "algorithm": args.algorithm,
                "min_support": args.min_support,
                "min_confidence": args.min_confidence,
            }
            write_rules_jsonl(rules, args.rules_out, interests, source)
            print(f"{len(rules)} rules exported to {args.rules_out}")
    if args.save_result:
        save_result(result, args.save_result)
        print(f"result written to {args.save_result}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    _EXPERIMENTS[args.name].main()
    return 0


def _cmd_sequences(args: argparse.Namespace) -> int:
    from repro.sequences import (
        SequenceGeneratorParams,
        generate_sequence_dataset,
        gsp,
        mine_sequences_parallel,
    )

    dataset = generate_sequence_dataset(
        SequenceGeneratorParams(num_customers=args.customers, seed=args.seed)
    )
    if args.algorithm.lower() == "gsp":
        result = gsp(
            dataset.database, dataset.taxonomy, args.min_support, max_k=args.max_k
        )
        print(result)
    else:
        run = mine_sequences_parallel(
            dataset.database,
            dataset.taxonomy,
            args.min_support,
            algorithm=args.algorithm,
            config=ClusterConfig(num_nodes=args.nodes),
            max_k=args.max_k,
        )
        result = run.result
        print(result)
        for pass_stats in run.stats.passes:
            print(
                f"  pass {pass_stats.k}: |C|={pass_stats.num_candidates} "
                f"|L|={pass_stats.num_large} elapsed={pass_stats.elapsed:.3f}s "
                f"recv={pass_stats.total_bytes_received}B"
            )
    if args.patterns:
        top = sorted(
            (
                (sequence, count)
                for sequence, count in result.large_sequences(args.max_k).items()
            ),
            key=lambda kv: -kv[1],
        )[: args.patterns]
        print(f"top {len(top)} {args.max_k}-sequences:")
        for sequence, count in top:
            rendered = " -> ".join(
                "{" + ",".join(map(str, element)) + "}" for element in sequence
            )
            print(f"  {rendered}: {count}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "mine":
            return _cmd_mine(args)
        if args.command == "sequences":
            return _cmd_sequences(args)
        return _cmd_experiment(args)
    except ReproError as error:
        # One line per failure class, with a distinct exit code so
        # scripts can branch on what went wrong without parsing text.
        print(f"repro-mine: {error_label(error)}: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":
    sys.exit(main())
