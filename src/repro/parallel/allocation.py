"""Candidate→node placement: itemset hashing and root-itemset hashing.

Two placement schemes from the paper:

* **HPGM** hashes the candidate itemset itself (Figure 3) — placement
  ignores the hierarchy, so a candidate and its ancestor candidates
  usually land on different nodes.
* **H-HPGM** hashes the candidate's *root itemset* (Figure 5, line 6):
  each item is replaced by the root of its tree, the resulting multiset
  is hashed, and therefore every candidate sharing a root combination —
  in particular a candidate and all of its ancestor candidates — lands
  on one node.

The hash must be identical on every node and across runs, so Python's
randomized ``hash`` is out; :func:`stable_hash` is FNV-1a over the item
ids' bytes.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping
from itertools import combinations

from repro.core.counting import feasible_sorted_multisets
from repro.core.itemsets import Itemset
from repro.taxonomy.hierarchy import Taxonomy

RootKey = tuple[int, ...]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(items: Iterable[int]) -> int:
    """Deterministic hash of a sequence of item ids.

    FNV-1a over the ids' bytes, finished with a splitmix64-style
    avalanche so the low bits disperse well (``% num_nodes`` reads
    them); raw FNV-1a leaves consecutive inputs correlated in the low
    bits, which skews candidate placement.  Identical across processes
    and platforms (unlike built-in ``hash`` under hash randomisation):
    every node must agree on every placement decision without
    communicating.
    """
    value = _FNV_OFFSET
    for item in items:
        for _ in range(4):
            value ^= item & 0xFF
            value = (value * _FNV_PRIME) & _MASK
            item >>= 8
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK
    value ^= value >> 33
    return value


def itemset_owner(itemset: Itemset, num_nodes: int) -> int:
    """HPGM placement: hash of the itemset itself."""
    return stable_hash(itemset) % num_nodes


def root_key(itemset: Itemset, root_of: Mapping[int, int]) -> RootKey:
    """The root itemset of a candidate, as a sorted multiset.

    Multiplicity matters: a candidate with two items from tree 1 has
    root key ``(1, 1)``, distinct from ``(1, 2)`` (the paper's Example 2
    hashes ``{5, 10}`` — roots ``(1, 1)`` — separately from ``{5, 6}`` —
    roots ``(1, 2)``).
    """
    return tuple(sorted(root_of[item] for item in itemset))


def root_key_owner(key: RootKey, num_nodes: int) -> int:
    """H-HPGM placement: hash of the root itemset."""
    return stable_hash(key) % num_nodes


def build_root_table(taxonomy: Taxonomy) -> dict[int, int]:
    """Item → root-of-its-tree lookup table."""
    return {item: taxonomy.root_of(item) for item in taxonomy.items}


def group_by_root_key(
    candidates: Iterable[Itemset],
    root_of: Mapping[int, int],
) -> dict[RootKey, list[Itemset]]:
    """Bucket candidates by their root itemset."""
    groups: dict[RootKey, list[Itemset]] = {}
    for candidate in candidates:
        groups.setdefault(root_key(candidate, root_of), []).append(candidate)
    return groups


def feasible_root_keys(
    transaction_roots: Counter[int],
    k: int,
) -> list[RootKey]:
    """Root multisets of size ``k`` realisable by this transaction.

    ``transaction_roots`` counts how many transaction items fall in each
    tree; a key is feasible when no root is used more often than the
    transaction supplies items for it.  Feasible keys drive routing: the
    items of every feasible key's trees form the fragment t″ sent to the
    key's owner.
    """
    return feasible_sorted_multisets(transaction_roots, k)


def partition_candidates_by_itemset(
    candidates: Iterable[Itemset],
    num_nodes: int,
) -> list[list[Itemset]]:
    """HPGM's partitioning: node → its candidate list."""
    partitions: list[list[Itemset]] = [[] for _ in range(num_nodes)]
    for candidate in candidates:
        partitions[itemset_owner(candidate, num_nodes)].append(candidate)
    return partitions


def partition_candidates_by_root(
    candidates: Iterable[Itemset],
    root_of: Mapping[int, int],
    num_nodes: int,
) -> tuple[list[list[Itemset]], dict[RootKey, int]]:
    """H-HPGM's partitioning.

    Returns the per-node candidate lists and the root-key → owner map
    (which routing consults on the sending side).
    """
    partitions: list[list[Itemset]] = [[] for _ in range(num_nodes)]
    owners: dict[RootKey, int] = {}
    for key, group in sorted(group_by_root_key(candidates, root_of).items()):
        owner = root_key_owner(key, num_nodes)
        owners[key] = owner
        partitions[owner].extend(group)
    return partitions, owners


def ancestor_closure(
    candidate: Itemset,
    candidate_set: frozenset[Itemset] | set[Itemset],
    chains: Mapping[int, tuple[int, ...]],
) -> set[Itemset]:
    """All ancestor candidates of ``candidate`` (itself excluded).

    ``chains`` maps an item to its ancestors-or-self tuple.  Used by the
    PGD/FGD duplicate selectors, which copy a frequent itemset *"and
    their all ancestor itemsets"*.
    """
    closure: set[Itemset] = set()
    options = [chains.get(item, (item,)) for item in candidate]
    stack: list[tuple[int, list[int]]] = [(0, [])]
    while stack:
        depth, chosen = stack.pop()
        if depth == len(options):
            variant = tuple(sorted(set(chosen)))
            if (
                len(variant) == len(candidate)
                and variant != candidate
                and variant in candidate_set
            ):
                closure.add(variant)
            continue
        for item in options[depth]:
            stack.append((depth + 1, chosen + [item]))
    return closure


def candidate_pairs_from(items: tuple[int, ...], k: int) -> Iterable[Itemset]:
    """All sorted k-subsets of an already sorted item tuple."""
    return combinations(items, k)
