"""Candidate→node placement: itemset hashing and root-itemset hashing.

Two placement schemes from the paper:

* **HPGM** hashes the candidate itemset itself (Figure 3) — placement
  ignores the hierarchy, so a candidate and its ancestor candidates
  usually land on different nodes.
* **H-HPGM** hashes the candidate's *root itemset* (Figure 5, line 6):
  each item is replaced by the root of its tree, the resulting multiset
  is hashed, and therefore every candidate sharing a root combination —
  in particular a candidate and all of its ancestor candidates — lands
  on one node.

The hash must be identical on every node and across runs, so Python's
randomized ``hash`` is out; :func:`stable_hash` is FNV-1a over the item
ids' bytes.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping
from itertools import combinations

from repro.core.counting import feasible_sorted_multisets
from repro.core.itemsets import Itemset
from repro.taxonomy.hierarchy import Taxonomy

try:  # optional accelerator for bulk placement (see pair_owner_matrix)
    import numpy as _np
except ImportError:  # pragma: no cover - depends on the environment
    _np = None

RootKey = tuple[int, ...]

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MASK = 0xFFFFFFFFFFFFFFFF


def stable_hash(items: Iterable[int]) -> int:
    """Deterministic hash of a sequence of item ids.

    FNV-1a over the ids' bytes, finished with a splitmix64-style
    avalanche so the low bits disperse well (``% num_nodes`` reads
    them); raw FNV-1a leaves consecutive inputs correlated in the low
    bits, which skews candidate placement.  Identical across processes
    and platforms (unlike built-in ``hash`` under hash randomisation):
    every node must agree on every placement decision without
    communicating.
    """
    value = _FNV_OFFSET
    for item in items:
        for _ in range(4):
            value ^= item & 0xFF
            value = (value * _FNV_PRIME) & _MASK
            item >>= 8
    value ^= value >> 33
    value = (value * 0xFF51AFD7ED558CCD) & _MASK
    value ^= value >> 33
    value = (value * 0xC4CEB9FE1A85EC53) & _MASK
    value ^= value >> 33
    return value


def itemset_owner(itemset: Itemset, num_nodes: int) -> int:
    """HPGM placement: hash of the itemset itself."""
    return stable_hash(itemset) % num_nodes


def root_key(itemset: Itemset, root_of: Mapping[int, int]) -> RootKey:
    """The root itemset of a candidate, as a sorted multiset.

    Multiplicity matters: a candidate with two items from tree 1 has
    root key ``(1, 1)``, distinct from ``(1, 2)`` (the paper's Example 2
    hashes ``{5, 10}`` — roots ``(1, 1)`` — separately from ``{5, 6}`` —
    roots ``(1, 2)``).
    """
    if len(itemset) == 2:
        first, second = root_of[itemset[0]], root_of[itemset[1]]
        return (first, second) if first <= second else (second, first)
    return tuple(sorted(root_of[item] for item in itemset))


def pair_owner_matrix(
    universe: Iterable[int],
    num_nodes: int,
) -> tuple[dict[int, int], "object"] | None:
    """Vectorized HPGM placement for every item pair of a universe.

    Returns ``(index_of, owners)`` where ``owners[index_of[a],
    index_of[b]]`` equals ``itemset_owner((a, b), num_nodes)`` for every
    ``a <= b`` pair, or ``None`` when numpy is unavailable.  The matrix
    replays :func:`stable_hash` exactly — FNV-1a byte rounds and the
    splitmix64 finalizer — in wrapping uint64 arithmetic, so the scan
    workers can route ``C(n, 2)`` subsets with one fancy-indexing read
    instead of one Python hash per subset.  Pinned against
    :func:`itemset_owner` by the equivalence suite.
    """
    if _np is None:
        return None
    items = sorted(universe)
    index_of = {item: position for position, item in enumerate(items)}
    width = len(items)
    if width == 0:
        return index_of, _np.zeros((0, 0), dtype=_np.uint8)
    prime = _np.uint64(_FNV_PRIME)
    byte = _np.uint64(0xFF)
    eight = _np.uint64(8)

    def accumulate(value, item):
        # One item's four FNV-1a byte rounds, vectorized and wrapping.
        for _ in range(4):
            value = (value ^ (item & byte)) * prime
            item = item >> eight
        return value

    column = _np.asarray(items, dtype=_np.uint64)
    first = accumulate(
        _np.full(width, _FNV_OFFSET, dtype=_np.uint64), column.copy()
    )
    value = accumulate(
        _np.repeat(first[:, None], width, axis=1),
        _np.repeat(column[None, :], width, axis=0),
    )
    value ^= value >> _np.uint64(33)
    value *= _np.uint64(0xFF51AFD7ED558CCD)
    value ^= value >> _np.uint64(33)
    value *= _np.uint64(0xC4CEB9FE1A85EC53)
    value ^= value >> _np.uint64(33)
    return index_of, (value % _np.uint64(num_nodes)).astype(_np.uint8)


def root_key_owner(key: RootKey, num_nodes: int) -> int:
    """H-HPGM placement: hash of the root itemset."""
    return stable_hash(key) % num_nodes


def build_root_table(taxonomy: Taxonomy) -> dict[int, int]:
    """Item → root-of-its-tree lookup table."""
    return {item: taxonomy.root_of(item) for item in taxonomy.items}


def group_by_root_key(
    candidates: Iterable[Itemset],
    root_of: Mapping[int, int],
) -> dict[RootKey, list[Itemset]]:
    """Bucket candidates by their root itemset."""
    groups: dict[RootKey, list[Itemset]] = {}
    for candidate in candidates:
        groups.setdefault(root_key(candidate, root_of), []).append(candidate)
    return groups


def feasible_root_keys(
    transaction_roots: Counter[int],
    k: int,
) -> list[RootKey]:
    """Root multisets of size ``k`` realisable by this transaction.

    ``transaction_roots`` counts how many transaction items fall in each
    tree; a key is feasible when no root is used more often than the
    transaction supplies items for it.  Feasible keys drive routing: the
    items of every feasible key's trees form the fragment t″ sent to the
    key's owner.
    """
    return feasible_sorted_multisets(transaction_roots, k)


def partition_candidates_by_itemset(
    candidates: Iterable[Itemset],
    num_nodes: int,
    pair_owners: tuple | None = None,
) -> list[list[Itemset]]:
    """HPGM's partitioning: node → its candidate list.

    ``pair_owners`` — a :func:`pair_owner_matrix` result covering every
    candidate's items — replaces the per-candidate FNV hash with one
    vectorized gather; the placement (and the within-partition order,
    which follows ``candidates``) is identical either way.
    """
    partitions: list[list[Itemset]] = [[] for _ in range(num_nodes)]
    if pair_owners is not None:
        ordered = list(candidates)
        index_of, owners = pair_owners
        first = _np.fromiter(
            (index_of[c[0]] for c in ordered), dtype=_np.intp, count=len(ordered)
        )
        second = _np.fromiter(
            (index_of[c[1]] for c in ordered), dtype=_np.intp, count=len(ordered)
        )
        for candidate, dest in zip(ordered, owners[first, second].tolist()):
            partitions[dest].append(candidate)
        return partitions
    for candidate in candidates:
        partitions[itemset_owner(candidate, num_nodes)].append(candidate)
    return partitions


def partition_candidates_by_root(
    candidates: Iterable[Itemset],
    root_of: Mapping[int, int],
    num_nodes: int,
) -> tuple[list[list[Itemset]], dict[RootKey, int]]:
    """H-HPGM's partitioning.

    Returns the per-node candidate lists and the root-key → owner map
    (which routing consults on the sending side).
    """
    partitions: list[list[Itemset]] = [[] for _ in range(num_nodes)]
    owners: dict[RootKey, int] = {}
    for key, group in sorted(group_by_root_key(candidates, root_of).items()):
        owner = root_key_owner(key, num_nodes)
        owners[key] = owner
        partitions[owner].extend(group)
    return partitions, owners


def ancestor_closure(
    candidate: Itemset,
    candidate_set: frozenset[Itemset] | set[Itemset],
    chains: Mapping[int, tuple[int, ...]],
) -> set[Itemset]:
    """All ancestor candidates of ``candidate`` (itself excluded).

    ``chains`` maps an item to its ancestors-or-self tuple.  Used by the
    PGD/FGD duplicate selectors, which copy a frequent itemset *"and
    their all ancestor itemsets"*.
    """
    closure: set[Itemset] = set()
    options = [chains.get(item, (item,)) for item in candidate]
    stack: list[tuple[int, list[int]]] = [(0, [])]
    while stack:
        depth, chosen = stack.pop()
        if depth == len(options):
            variant = tuple(sorted(set(chosen)))
            if (
                len(variant) == len(candidate)
                and variant != candidate
                and variant in candidate_set
            ):
                closure.add(variant)
            continue
        for item in options[depth]:
            stack.append((depth + 1, chosen + [item]))
    return closure


def candidate_pairs_from(items: tuple[int, ...], k: int) -> Iterable[Itemset]:
    """All sorted k-subsets of an already sorted item tuple."""
    return combinations(items, k)
