"""NPGM — Non-Partitioned Generalized association rule Mining (§3.1).

Candidates are replicated on every node; each node counts its local
partition independently and the coordinator reduces all counts.  No
transaction data ever crosses the interconnect.

The catch the paper measures (Figure 14): when ``|Ck|`` exceeds one
node's memory ``M``, the candidates are split into ``⌈|Ck| / M⌉``
fragments and the node re-reads its *entire* partition once per
fragment — I/O and subset-enumeration CPU scale with the fragment
count, which is why NPGM collapses at small minimum support.

The simulator counts one real scan (the support counts are identical
regardless of fragmentation) and charges the fragment multiplier to the
I/O, extension, generation and probe counters, exactly the work the
fragment loop of Figure 2 performs.
"""

from __future__ import annotations

import math

from repro.cluster.stats import PassStats
from repro.core.candidates import candidate_item_universe
from repro.core.itemsets import Itemset
from repro.faults.recovery import RecoveryProfile
from repro.parallel.base import ParallelMiner
from repro.perf.executor import execute_per_node
from repro.perf.workers import NPGMScanTask, apply_stats, npgm_scan
from repro.taxonomy.ops import AncestorIndex


class NPGM(ParallelMiner):
    """Replicated-candidate mining with fragmenting re-scans."""

    name = "NPGM"

    #: Candidates are replicated: a pass is scan + coordinator reduce,
    #: nothing ever crosses the interconnect (``repro-analyze`` checks
    #: ``_run_pass`` against this machine statically).
    pass_protocol: tuple[str, ...] = ("begin_pass", "finish_pass")

    def fault_profile(self) -> RecoveryProfile:
        return RecoveryProfile(
            placement="replicated",
            replicated_candidates=True,
            description="every node holds every candidate; a standby "
            "regenerates them from the broadcast L_{k-1} and only "
            "re-scans its own partition",
        )

    def _run_pass(
        self,
        k: int,
        candidates: list[Itemset],
        threshold: int,
    ) -> tuple[dict[Itemset, int], PassStats]:
        cluster = self.cluster
        cluster.begin_pass()

        memory = cluster.config.memory_per_node
        fragments = (
            1 if memory is None else max(1, math.ceil(len(candidates) / memory))
        )
        universe = candidate_item_universe(candidates)
        index = AncestorIndex(self.taxonomy, keep=universe)

        # The fragment loop of Figure 2 repeats the scan, the extension
        # and the subset enumeration once per fragment; the worker counts
        # one real scan and applies the multipliers.
        tasks = [
            NPGMScanTask(
                disk=node.disk,
                index=index,
                candidates=tuple(candidates),
                k=k,
                fragments=fragments,
                counting=self.counting,
            )
            for node in cluster.nodes
        ]
        results = execute_per_node(cluster.config, npgm_scan, tasks)

        total: dict[Itemset, int] = {}
        for node, scan in zip(cluster.nodes, results):
            with self.obs.node_span("scan", node, fragments=fragments):
                apply_stats(node.stats, scan.stats)
                node.charge_candidates(
                    len(candidates) if memory is None else min(len(candidates), memory)
                )
                for itemset, count in sorted(scan.counts.items()):
                    total[itemset] = total.get(itemset, 0) + count

        large = {
            itemset: count for itemset, count in sorted(total.items()) if count >= threshold
        }
        pass_stats = cluster.finish_pass(
            k=k,
            num_candidates=len(candidates),
            num_large=len(large),
            # Every node ships every candidate's count to the coordinator.
            reduced_counts=len(candidates) * cluster.num_nodes,
            fragments=fragments,
        )
        return large, pass_stats
