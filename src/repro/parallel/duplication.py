"""Duplicate-set selection for the skew-handling variants (§3.4).

When ``|Ck|`` is smaller than the machine's aggregate memory, the
H-HPGM partitions leave free slots on every node.  The three variants
fill that free space with the most frequently occurring candidates —
copied to *all* nodes so their counting needs no communication — at
three grains:

* **Tree grain (TGD)** — whole root-itemset trees: all candidates whose
  root combination matches the chosen root k-itemset.
* **Path grain (PGD)** — a frequent *lowest-level* candidate plus all
  of its ancestor candidates.
* **Fine grain (FGD)** — a frequent candidate of *any* level plus its
  ancestor candidates.

Selection is greedy in descending frequency (scored by the pass-1 item
supports, which is the information the paper sorts on in Examples 3–5),
constrained so every node can still hold its partition share plus the
whole duplicated set: ``max_n |Ck^n| + |Ck^D| <= M``.  Groups that no
longer fit are skipped and smaller ones keep being tried — "so that the
memory space is used fully".
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Collection, Mapping

from repro.core.itemsets import Itemset
from repro.parallel.allocation import ancestor_closure, group_by_root_key
from repro.taxonomy.hierarchy import Taxonomy


class GreedyPacker:
    """Tracks partition sizes and the duplicated-set size during selection.

    Parameters
    ----------
    partition_sizes:
        ``|Ck^n|`` per node before any duplication.
    memory:
        Per-node slot budget; ``None`` means unbounded (every group
        fits).
    """

    def __init__(self, partition_sizes: list[int], memory: int | None):
        self._sizes = list(partition_sizes)
        self._memory = memory
        self.duplicated: set[Itemset] = set()

    def try_add(self, members: list[tuple[Itemset, int]]) -> bool:
        """Duplicate a group of (candidate, owner) pairs if it fits.

        Members already duplicated are ignored; the group is accepted
        atomically (the paper copies a whole tree / path / closure, not
        a prefix of one).
        """
        fresh = [(c, owner) for c, owner in members if c not in self.duplicated]
        if not fresh:
            return False
        if self._memory is not None:
            removed: Counter[int] = Counter(owner for _, owner in fresh)
            new_dup = len(self.duplicated) + len(fresh)
            peak = max(
                size - removed.get(node, 0)
                for node, size in enumerate(self._sizes)
            )
            if peak + new_dup > self._memory:
                return False
        for candidate, owner in fresh:
            self.duplicated.add(candidate)
            self._sizes[owner] -= 1
        return True


def _itemset_score(itemset: Itemset, item_counts: Mapping[int, int]) -> int:
    """Frequency score: sum of the members' pass-1 supports.

    The sum favours itemsets built from overall-popular items, which is
    both what the paper's Examples 3–5 sort on and — measured on the
    scaled workloads — what best drains the hot node: duplicating many
    candidates that *share* the hot items empties the hot keys' item
    universes, whereas a min-based upper-bound score scatters the picks
    across keys and leaves the hot keys populated.
    """
    return sum(item_counts.get(item, 0) for item in itemset)


def lowest_large_items(large_items: Collection[int], taxonomy: Taxonomy) -> set[int]:
    """Large items closest to the bottom: those with no large descendant."""
    covered: set[int] = set()
    for item in large_items:
        if item in taxonomy:
            covered.update(taxonomy.ancestors(item))
    return {item for item in large_items if item not in covered}


def select_tree_grain(
    candidates: list[Itemset],
    root_of: Mapping[int, int],
    owner_of: Mapping[Itemset, int],
    item_counts: Mapping[int, int],
    partition_sizes: list[int],
    memory: int | None,
) -> set[Itemset]:
    """TGD: duplicate whole root-itemset trees, most frequent roots first."""
    groups = group_by_root_key(candidates, root_of)
    ordered = sorted(
        groups,
        key=lambda key: (-_itemset_score(key, item_counts), key),
    )
    packer = GreedyPacker(partition_sizes, memory)
    for key in ordered:
        packer.try_add([(c, owner_of[c]) for c in groups[key]])
    return packer.duplicated


def select_path_grain(
    candidates: list[Itemset],
    owner_of: Mapping[Itemset, int],
    item_counts: Mapping[int, int],
    chains: Mapping[int, tuple[int, ...]],
    lowest_items: Collection[int],
    partition_sizes: list[int],
    memory: int | None,
) -> set[Itemset]:
    """PGD: duplicate frequent lowest-level candidates plus their ancestors."""
    candidate_set = set(candidates)
    lowest = set(lowest_items)
    eligible = [c for c in candidates if all(item in lowest for item in c)]
    eligible.sort(key=lambda c: (-_itemset_score(c, item_counts), c))
    packer = GreedyPacker(partition_sizes, memory)
    for candidate in eligible:
        group = [(candidate, owner_of[candidate])] + [
            (ancestor, owner_of[ancestor])
            for ancestor in sorted(ancestor_closure(candidate, candidate_set, chains))
        ]
        packer.try_add(group)
    return packer.duplicated


def select_fine_grain(
    candidates: list[Itemset],
    owner_of: Mapping[Itemset, int],
    item_counts: Mapping[int, int],
    chains: Mapping[int, tuple[int, ...]],
    partition_sizes: list[int],
    memory: int | None,
) -> set[Itemset]:
    """FGD: duplicate frequent candidates of any level plus their ancestors."""
    candidate_set = set(candidates)
    ordered = sorted(candidates, key=lambda c: (-_itemset_score(c, item_counts), c))
    packer = GreedyPacker(partition_sizes, memory)
    for candidate in ordered:
        group = [(candidate, owner_of[candidate])] + [
            (ancestor, owner_of[ancestor])
            for ancestor in sorted(ancestor_closure(candidate, candidate_set, chains))
        ]
        packer.try_add(group)
    return packer.duplicated
