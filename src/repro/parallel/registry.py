"""Algorithm registry and one-call mining entry point."""

from __future__ import annotations

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.datagen.corpus import TransactionDatabase
from repro.errors import MiningError
from repro.parallel.base import ParallelMiner, ParallelRun
from repro.parallel.hhpgm import HHPGM
from repro.parallel.hhpgm_fgd import HHPGMFineGrain
from repro.parallel.hhpgm_pgd import HHPGMPathGrain
from repro.parallel.hhpgm_tgd import HHPGMTreeGrain
from repro.parallel.hpgm import HPGM
from repro.parallel.npgm import NPGM
from repro.perf.config import CountingConfig
from repro.taxonomy.hierarchy import Taxonomy

#: Paper name → miner class, in the paper's order of introduction.
ALGORITHMS: dict[str, type[ParallelMiner]] = {
    "NPGM": NPGM,
    "HPGM": HPGM,
    "H-HPGM": HHPGM,
    "H-HPGM-TGD": HHPGMTreeGrain,
    "H-HPGM-PGD": HHPGMPathGrain,
    "H-HPGM-FGD": HHPGMFineGrain,
}


def make_miner(
    algorithm: str,
    cluster: Cluster,
    taxonomy: Taxonomy,
    counting: CountingConfig | None = None,
) -> ParallelMiner:
    """Instantiate a miner by its paper name (case-insensitive)."""
    try:
        miner_class = ALGORITHMS[algorithm.upper()]
    except KeyError:
        known = ", ".join(ALGORITHMS)
        raise MiningError(f"unknown algorithm {algorithm!r}; known: {known}") from None
    return miner_class(cluster, taxonomy, counting=counting)


def mine_parallel(
    database: TransactionDatabase | None,
    taxonomy: Taxonomy,
    min_support: float,
    algorithm: str = "H-HPGM-FGD",
    config: ClusterConfig | None = None,
    max_k: int | None = None,
    counting: CountingConfig | None = None,
) -> ParallelRun:
    """Mine a database on a freshly built simulated cluster.

    Parameters
    ----------
    database:
        Transactions; partitioned evenly over the nodes' local disks.
        May be ``None`` when ``counting.store`` names an on-disk
        columnar store — the cluster is then built from strided store
        views (:meth:`~repro.cluster.machine.Cluster.from_store`) and
        mines out-of-core with byte-identical digests.
    taxonomy:
        Classification hierarchy over the items.
    min_support:
        Fractional minimum support in (0, 1].
    algorithm:
        One of :data:`ALGORITHMS` (default: the paper's best, FGD).
    config:
        Cluster description; defaults to the 16-node SP-2-like preset.
    max_k:
        Optional cap on itemset size.
    counting:
        Optional :class:`~repro.perf.config.CountingConfig` selecting
        the counting kernels (result-preserving; wall-clock only).

    Returns
    -------
    ParallelRun
        The mining result (identical to Cumulate's) plus per-pass
        cluster statistics.
    """
    config = config if config is not None else ClusterConfig.sp2_like()
    if database is None:
        if counting is None or counting.store is None:
            raise MiningError(
                "mine_parallel needs a database or a counting config with store="
            )
        from repro.store import open_store

        cluster = Cluster.from_store(config, open_store(counting.store))
    else:
        cluster = Cluster.from_database(config, database)
    miner = make_miner(algorithm, cluster, taxonomy, counting=counting)
    try:
        return miner.mine(min_support, max_k=max_k)
    finally:
        cluster.close()
