"""H-HPGM-TGD — Tree Grain Duplicate (§3.4.1).

Duplicates candidates in the unit of a whole root-itemset tree: the
most frequent root combinations (by the supports of their root items,
as in Example 3) are copied — with *all* their descendant candidates —
to every node, as long as each node can still hold its partition plus
the duplicated set.  The grain is coarse: whole trees are large, so at
small minimum support (little free memory) nothing fits and TGD
degenerates to plain H-HPGM — exactly the behaviour Figure 14 shows.
"""

from __future__ import annotations

from repro.core.itemsets import Itemset
from repro.faults.recovery import RecoveryProfile
from repro.parallel.duplication import select_tree_grain
from repro.parallel.hhpgm import HHPGM


class HHPGMTreeGrain(HHPGM):
    """H-HPGM with whole-tree duplication."""

    name = "H-HPGM-TGD"

    #: Same wire protocol as H-HPGM — duplication only changes *what*
    #: is counted locally, never the pass structure.
    pass_protocol: tuple[str, ...] = ("begin_pass", "send*", "drain*", "finish_pass")

    def fault_profile(self) -> RecoveryProfile:
        return RecoveryProfile(
            placement="root-hash+tree-dup",
            replicates_duplicates=True,
            description="duplicated trees are restored from any "
            "survivor; only the non-duplicated root partition is "
            "reassigned",
        )

    def _select_duplicates(
        self,
        k: int,
        candidates: list[Itemset],
        owner_of: dict[Itemset, int],
        partition_sizes: list[int],
        chains: dict[int, tuple[int, ...]],
    ) -> set[Itemset]:
        with self.obs.span("duplicate-select", grain="tree", k=k):
            return select_tree_grain(
                candidates=candidates,
                root_of=self.root_of,
                owner_of=owner_of,
                item_counts=self._item_counts,
                partition_sizes=partition_sizes,
                memory=self.cluster.config.memory_per_node,
            )
