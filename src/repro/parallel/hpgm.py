"""HPGM — Hash Partitioned Generalized association rule Mining (§3.2).

Candidates are hash-partitioned over the nodes (like HPA for flat
rules), which exploits the aggregate memory — but the hierarchy is
ignored.  During the scan each node extends its transactions with every
candidate-referenced ancestor, enumerates **all** k-itemsets of the
extended transaction, and ships each one to the node owning its hash —
ancestor combinations included.  That per-itemset shipping is the
communication the paper's Table 6 shows to be two orders of magnitude
above H-HPGM's.

One message is sent per (transaction, destination) carrying that
destination's k-itemsets back to back (``len(payload) / k`` itemsets);
the receiver probes its hash table once per itemset.
"""

from __future__ import annotations

from itertools import combinations

from repro.cluster.stats import PassStats
from repro.core.candidates import candidate_item_universe
from repro.core.itemsets import Itemset
from repro.parallel.allocation import itemset_owner, partition_candidates_by_itemset
from repro.parallel.base import ParallelMiner
from repro.taxonomy.ops import AncestorIndex


class HPGM(ParallelMiner):
    """Hierarchy-oblivious hash partitioning of the candidates."""

    name = "HPGM"

    def _run_pass(
        self,
        k: int,
        candidates: list[Itemset],
        threshold: int,
    ) -> tuple[dict[Itemset, int], PassStats]:
        cluster = self.cluster
        num_nodes = cluster.num_nodes
        network = cluster.network
        node_stats = cluster.begin_pass()

        universe = candidate_item_universe(candidates)
        index = AncestorIndex(self.taxonomy, keep=universe)
        partitions = partition_candidates_by_itemset(candidates, num_nodes)
        counts: list[dict[Itemset, int]] = [
            dict.fromkeys(partition, 0) for partition in partitions
        ]
        for node, partition in zip(cluster.nodes, partitions):
            node.charge_candidates(len(partition))

        # Scan phase: extend, enumerate k-itemsets, route by hash.
        for node in cluster.nodes:
            with self.obs.node_span("scan", node):
                me = node.node_id
                stats = node.stats
                my_counts = counts[me]
                for transaction in node.disk.scan(stats):
                    stats.extend_items += len(transaction)
                    extended = index.extend(transaction)
                    relevant = tuple(item for item in extended if item in universe)
                    if len(relevant) < k:
                        continue
                    batches: dict[int, list[int]] = {}
                    for subset in combinations(relevant, k):
                        stats.itemsets_generated += 1
                        dest = itemset_owner(subset, num_nodes)
                        if dest == me:
                            stats.probes += 1
                            if subset in my_counts:
                                my_counts[subset] += 1
                                stats.increments += 1
                        else:
                            batches.setdefault(dest, []).extend(subset)
                    for dest, flat in sorted(batches.items()):
                        network.send(
                            me, dest, tuple(flat), stats, node_stats[dest]
                        )

        # Receive phase: probe the local table for each shipped itemset.
        for node in cluster.nodes:
            with self.obs.node_span("probe", node):
                me = node.node_id
                stats = node.stats
                my_counts = counts[me]
                for payload in network.drain(me):
                    for start in range(0, len(payload), k):
                        subset = payload[start : start + k]
                        stats.probes += 1
                        if subset in my_counts:
                            my_counts[subset] += 1
                            stats.increments += 1

        large: dict[Itemset, int] = {}
        reduced = 0
        for per_node in counts:
            local_large = {
                itemset: count
                for itemset, count in sorted(per_node.items())
                if count >= threshold
            }
            reduced += len(local_large)
            large.update(local_large)

        pass_stats = cluster.finish_pass(
            k=k,
            num_candidates=len(candidates),
            num_large=len(large),
            reduced_counts=reduced,
        )
        return large, pass_stats
