"""HPGM — Hash Partitioned Generalized association rule Mining (§3.2).

Candidates are hash-partitioned over the nodes (like HPA for flat
rules), which exploits the aggregate memory — but the hierarchy is
ignored.  During the scan each node extends its transactions with every
candidate-referenced ancestor, enumerates **all** k-itemsets of the
extended transaction, and ships each one to the node owning its hash —
ancestor combinations included.  That per-itemset shipping is the
communication the paper's Table 6 shows to be two orders of magnitude
above H-HPGM's.

One message is sent per (transaction, destination) carrying that
destination's k-itemsets back to back (``len(payload) / k`` itemsets);
the receiver probes its hash table once per itemset.
"""

from __future__ import annotations

from repro.cluster.stats import PassStats
from repro.core.candidates import candidate_item_universe
from repro.core.itemsets import Itemset
from repro.faults.recovery import RecoveryProfile
from repro.parallel.allocation import (
    pair_owner_matrix,
    partition_candidates_by_itemset,
)
from repro.parallel.base import ParallelMiner
from repro.perf.executor import execute_per_node
from repro.perf.kernels import PairMaskFolder
from repro.perf.workers import HPGMScanTask, apply_stats, hpgm_scan
from repro.taxonomy.ops import AncestorIndex

class HPGM(ParallelMiner):
    """Hierarchy-oblivious hash partitioning of the candidates."""

    name = "HPGM"

    #: Scan phase ships hashed k-itemsets (sends), receive phase drains
    #: and probes; all sends precede all drains within a pass.
    pass_protocol: tuple[str, ...] = ("begin_pass", "send*", "drain*", "finish_pass")

    def fault_profile(self) -> RecoveryProfile:
        return RecoveryProfile(
            placement="itemset-hash",
            description="the dead node's hash partition — unrelated "
            "candidates scattered by itemset hash — is reassigned in full",
        )

    def _run_pass(
        self,
        k: int,
        candidates: list[Itemset],
        threshold: int,
    ) -> tuple[dict[Itemset, int], PassStats]:
        cluster = self.cluster
        num_nodes = cluster.num_nodes
        network = cluster.network
        node_stats = cluster.begin_pass()

        universe = candidate_item_universe(candidates)
        index = AncestorIndex(self.taxonomy, keep=universe)
        # Placement is the same pure function everywhere, so the pair
        # owner matrix is computed once per pass and shared by the
        # partitioner and every node's scan worker.
        pair_owners = (
            pair_owner_matrix(universe, num_nodes)
            if self.counting.fast and k == 2
            else None
        )
        partitions = partition_candidates_by_itemset(
            candidates, num_nodes, pair_owners
        )
        counts: list[dict[Itemset, int]] = [
            dict.fromkeys(partition, 0) for partition in partitions
        ]
        for node, partition in zip(cluster.nodes, partitions):
            node.charge_candidates(len(partition))

        # Scan phase: extend, enumerate k-itemsets, route by hash.  Each
        # node's scan is a pure worker; sends are replayed here in node
        # order so traces and receive charges match a serial run.
        tasks = [
            HPGMScanTask(
                disk=node.disk,
                index=index,
                universe=frozenset(universe),
                owned=frozenset(partitions[node.node_id]),
                k=k,
                me=node.node_id,
                num_nodes=num_nodes,
                counting=self.counting,
                pair_owners=pair_owners,
            )
            for node in cluster.nodes
        ]
        results = execute_per_node(cluster.config, hpgm_scan, tasks)
        for node, scan in zip(cluster.nodes, results):
            with self.obs.node_span("scan", node):
                me = node.node_id
                stats = node.stats
                apply_stats(stats, scan.stats)
                my_counts = counts[me]
                for subset, hits in sorted(scan.hits.items()):
                    my_counts[subset] += hits
                for dest, payload in scan.sends:
                    network.send(me, dest, payload, stats, node_stats[dest])

        # Receive phase: probe the local table for each shipped itemset.
        # Payloads repeat heavily (one per (transaction, destination)),
        # so the probe outcome per distinct payload is memoized — per
        # node, since hits depend on the receiver's candidate partition.
        for node in cluster.nodes:
            with self.obs.node_span("probe", node):
                me = node.node_id
                stats = node.stats
                my_counts = counts[me]
                # Fast k == 2 probing works on whole-batch bitmasks: a
                # batch is all pairs of one relevant set routed here, so
                # any owned pair whose items both appear in the batch is
                # in the batch — one mask per payload replaces the
                # per-pair membership tests, and the count fold is
                # deferred (see PairMaskFolder).
                folder = (
                    PairMaskFolder(my_counts)
                    if self.counting.fast and k == 2 and my_counts
                    else None
                )
                receive_memo: dict[tuple[int, ...], tuple] | None = (
                    {} if self.counting.dedup else None
                )
                for payload in network.drain(me):
                    entry = (
                        receive_memo.get(payload)
                        if receive_memo is not None
                        else None
                    )
                    if folder is not None:
                        if entry is None:
                            bit_of = folder.bit_of
                            mask = 0
                            for item in payload:
                                bit = bit_of.get(item)
                                if bit:
                                    mask |= bit
                            entry = (len(payload) // 2, mask)
                            if receive_memo is not None:
                                receive_memo[payload] = entry
                        probes, mask = entry
                        stats.probes += probes
                        if mask:
                            folder.add_mask(mask)
                        continue
                    if entry is None:
                        if k == 2:
                            hit_subsets = [
                                pair
                                for pair in zip(payload[0::2], payload[1::2])
                                if pair in my_counts
                            ]
                        else:
                            hit_subsets = []
                            for start in range(0, len(payload), k):
                                subset = payload[start : start + k]
                                if subset in my_counts:
                                    hit_subsets.append(subset)
                        entry = ((len(payload) + k - 1) // k, tuple(hit_subsets))
                        if receive_memo is not None:
                            receive_memo[payload] = entry
                    probes, hit_subsets = entry
                    stats.probes += probes
                    stats.increments += len(hit_subsets)
                    for subset in hit_subsets:
                        my_counts[subset] += 1
                if folder is not None:
                    # The fold returns exactly the increments the naive
                    # per-batch probe loop would have accumulated.
                    stats.increments += folder.fold()

        large: dict[Itemset, int] = {}
        reduced = 0
        for per_node in counts:
            local_large = {
                itemset: count
                for itemset, count in sorted(per_node.items())
                if count >= threshold
            }
            reduced += len(local_large)
            large.update(local_large)

        pass_stats = cluster.finish_pass(
            k=k,
            num_candidates=len(candidates),
            num_large=len(large),
            reduced_counts=reduced,
        )
        return large, pass_stats
