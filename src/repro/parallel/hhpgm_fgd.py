"""H-HPGM-FGD — Fine Grain Duplicate (§3.4.3).

The finest grain: candidates of *any* level are ranked by frequency and
the hottest ones are copied together with their ancestor candidates
(Example 5 copies ``{4,8} {4,6} {6,8}`` and their ancestors).  Only
genuinely frequent itemsets are duplicated — no whole trees, no
leaf-driven guesses — so the free space turns into load balance most
effectively; the paper finds FGD the best performer across the whole
minimum-support range (Figures 14–16).
"""

from __future__ import annotations

from repro.core.itemsets import Itemset
from repro.faults.recovery import RecoveryProfile
from repro.parallel.duplication import select_fine_grain
from repro.parallel.hhpgm import HHPGM


class HHPGMFineGrain(HHPGM):
    """H-HPGM with any-level frequent-itemset duplication."""

    name = "H-HPGM-FGD"

    #: Same wire protocol as H-HPGM — duplication only changes *what*
    #: is counted locally, never the pass structure.
    pass_protocol: tuple[str, ...] = ("begin_pass", "send*", "drain*", "finish_pass")

    def fault_profile(self) -> RecoveryProfile:
        return RecoveryProfile(
            placement="root-hash+fine-dup",
            replicates_duplicates=True,
            description="duplicated hot itemsets are restored from any "
            "survivor; only the non-duplicated root partition is "
            "reassigned",
        )

    def _select_duplicates(
        self,
        k: int,
        candidates: list[Itemset],
        owner_of: dict[Itemset, int],
        partition_sizes: list[int],
        chains: dict[int, tuple[int, ...]],
    ) -> set[Itemset]:
        with self.obs.span("duplicate-select", grain="fine", k=k):
            return select_fine_grain(
                candidates=candidates,
                owner_of=owner_of,
                item_counts=self._item_counts,
                chains=chains,
                partition_sizes=partition_sizes,
                memory=self.cluster.config.memory_per_node,
            )
