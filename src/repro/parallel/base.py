"""Shared skeleton of every parallel miner.

All six algorithms share the Apriori pass structure (Section 3):

* **Pass 1** is embarrassingly parallel and identical everywhere: each
  node counts items-plus-ancestors over its local partition and the
  coordinator reduces (the paper's evaluation starts at pass 2, where
  the algorithms diverge).
* **Pass k ≥ 2** differs per algorithm only in candidate placement and
  in what crosses the interconnect; subclasses implement
  :meth:`ParallelMiner._run_pass`.

Candidate generation is performed redundantly on every node from the
broadcast ``L_{k-1}`` (as in the paper); since it is deterministic the
simulator computes it once and charges no communication for it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cluster.machine import Cluster
from repro.cluster.stats import PassStats, RunStats
from repro.core.candidates import generate_candidates
from repro.core.itemsets import Itemset, minimum_count
from repro.core.result import MiningResult, PassResult
from repro.errors import MiningError
from repro.faults.recovery import RecoveryProfile
from repro.obs.telemetry import NULL_TELEMETRY, Telemetry
from repro.parallel.allocation import build_root_table
from repro.perf.config import CountingConfig, default_counting
from repro.perf.executor import execute_per_node
from repro.perf.workers import Pass1Task, apply_stats, pass1_scan
from repro.taxonomy.hierarchy import Taxonomy
from repro.taxonomy.ops import AncestorIndex


@dataclass(frozen=True)
class ParallelRun:
    """Outcome of a parallel mining run: the answer plus the telemetry."""

    result: MiningResult
    stats: RunStats
    telemetry: Telemetry | None = None

    @property
    def algorithm(self) -> str:
        return self.stats.algorithm


class ParallelMiner(ABC):
    """Base class: pass loop, pass-1 counting, result assembly.

    Parameters
    ----------
    cluster:
        The simulated machine, already loaded with partitions.
    taxonomy:
        Classification hierarchy over the items.
    counting:
        :class:`~repro.perf.config.CountingConfig` selecting the
        counting kernels (fast trie vs naive enumeration) and the
        distinct-transaction memoization.  Defaults to the process-wide
        default (``REPRO_KERNEL`` / ``REPRO_DEDUP`` aware).  Never
        changes results or statistics — only wall-clock time.
    """

    name = "abstract"

    #: Declared pass-1 state machine — the shared :meth:`_pass_one`
    #: skeleton never touches the network.  Checked statically by
    #: ``repro-analyze`` (protocol conformance pass) and at runtime by
    #: :mod:`repro.cluster.invariants`.
    pass1_protocol: tuple[str, ...] = ("begin_pass", "finish_pass")

    def __init__(
        self,
        cluster: Cluster,
        taxonomy: Taxonomy,
        counting: CountingConfig | None = None,
    ):
        self.cluster = cluster
        self.taxonomy = taxonomy
        self.counting = counting if counting is not None else default_counting()
        self.root_of = build_root_table(taxonomy)
        self._full_index = AncestorIndex(taxonomy)
        # Per-run state, populated by mine().
        self._item_counts: dict[int, int] = {}
        self._large_items: set[int] = set()

    @property
    def obs(self):
        """The cluster's telemetry, or a shared no-op stand-in.

        Miners instrument unconditionally through this handle; with no
        telemetry attached every span call is a reusable null context.
        """
        telemetry = self.cluster.telemetry
        return telemetry if telemetry is not None else NULL_TELEMETRY

    def fault_profile(self) -> RecoveryProfile:
        """What this algorithm's placement loses when a node dies.

        Subclasses override to describe their candidate placement; the
        :class:`~repro.faults.recovery.FaultController` prices crash
        recovery from it (see ``docs/fault_tolerance.md``).
        """
        return RecoveryProfile(
            placement="partitioned",
            description="full candidate partition reassigned to the standby",
        )

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def mine(self, min_support: float, max_k: int | None = None) -> ParallelRun:
        """Run the full pass loop and return result + statistics.

        Parameters
        ----------
        min_support:
            Fractional minimum support in (0, 1].
        max_k:
            Optional cap on itemset size.  The paper's evaluation
            reports pass 2 (``max_k=2``); without a cap the loop runs
            until no large itemsets remain.
        """
        num_transactions = self.cluster.num_transactions
        if num_transactions == 0:
            raise MiningError("cannot mine an empty cluster")
        threshold = minimum_count(min_support, num_transactions)

        result = MiningResult(
            min_support=min_support, num_transactions=num_transactions
        )
        run = RunStats(algorithm=self.name, num_nodes=self.cluster.num_nodes)
        obs = self.obs
        faults = self.cluster.faults
        if faults is not None:
            faults.bind_miner(self)
        obs.begin_run(self.name, self.cluster.num_nodes)

        with obs.pass_span(1):
            large_1, pass1_stats = self._pass_one(threshold)
        result.passes.append(
            PassResult(k=1, num_candidates=pass1_stats.num_candidates, large=large_1)
        )
        run.passes.append(pass1_stats)
        if faults is not None:
            faults.checkpoint_pass(1, large_1)
        self._large_items = {itemset[0] for itemset in large_1}
        self._after_pass_one()

        previous: dict[Itemset, int] = large_1
        k = 2
        while previous and (max_k is None or k <= max_k):
            candidates = generate_candidates(sorted(previous), k, self.taxonomy)
            if not candidates:
                break
            with obs.pass_span(k):
                large_k, pass_stats = self._run_pass(k, candidates, threshold)
            result.passes.append(
                PassResult(k=k, num_candidates=len(candidates), large=large_k)
            )
            run.passes.append(pass_stats)
            if faults is not None:
                faults.checkpoint_pass(k, large_k)
            previous = large_k
            k += 1

        obs.end_run(run)
        return ParallelRun(
            result=result, stats=run, telemetry=self.cluster.telemetry
        )

    # ------------------------------------------------------------------
    # Pass 1 (shared by every algorithm)
    # ------------------------------------------------------------------
    def _pass_one(self, threshold: int) -> tuple[dict[Itemset, int], PassStats]:
        """Local item+ancestor counting with a coordinator reduce."""
        self.cluster.begin_pass()
        obs = self.obs
        counting = self.counting
        tasks = [
            Pass1Task(disk=node.disk, index=self._full_index, counting=counting)
            for node in self.cluster.nodes
        ]
        results = execute_per_node(self.cluster.config, pass1_scan, tasks)
        if self.cluster.faults is not None:
            # The replay oracle: a crashed node's standby re-scans its
            # partition and must reproduce exactly these counts.
            self.cluster.faults.record_pass1([scan.counts for scan in results])
        total: dict[int, int] = {}
        reduced = 0
        for node, scan in zip(self.cluster.nodes, results):
            with obs.node_span("scan", node):
                apply_stats(node.stats, scan.stats)
                local = scan.counts
                # Pass-1 counters are chargeable like NPGM's candidates:
                # they can always be fragmented across repeated scans, so
                # at most one budget's worth is resident at a time.
                budget = self.cluster.config.memory_per_node
                node.charge_candidates(
                    len(local) if budget is None else min(len(local), budget)
                )
                reduced += len(local)
                for item, count in sorted(local.items()):
                    total[item] = total.get(item, 0) + count

        self._item_counts = total
        large_1 = {
            (item,): count for item, count in sorted(total.items()) if count >= threshold
        }
        pass_stats = self.cluster.finish_pass(
            k=1,
            num_candidates=len(total),
            num_large=len(large_1),
            reduced_counts=reduced,
        )
        return large_1, pass_stats

    def _after_pass_one(self) -> None:
        """Hook for per-run precomputation that needs ``L1`` (optional)."""

    # ------------------------------------------------------------------
    # Pass k >= 2 (algorithm-specific)
    # ------------------------------------------------------------------
    @abstractmethod
    def _run_pass(
        self,
        k: int,
        candidates: list[Itemset],
        threshold: int,
    ) -> tuple[dict[Itemset, int], PassStats]:
        """Count one pass; return the large k-itemsets and the pass stats."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(nodes={self.cluster.num_nodes})"
