"""H-HPGM — Hierarchical Hash Partitioned mining (§3.3).

The paper's key idea: partition candidates by the hash of their **root
itemset**.  A candidate and every one of its ancestor candidates share
the same root combination, so they land on the same node — counting a
k-itemset "and all its ancestor candidates" (Figure 5, lines 12/16) is
then entirely local.  On the wire, only the transaction's *lowest
large* items travel (3 items instead of HPGM's 18 in the running
example), once per destination node.

Per pass:

1. rewrite each local transaction to its lowest-large form t′
   (Figure 5, line 8);
2. find the root combinations t′ can realise, keep those that own at
   least one (non-duplicated) candidate, and send each owning node the
   fragment t″ of items in that combination's trees (lines 9–14);
3. the owner generates k-itemsets from t″ and counts each together with
   its ancestor candidates, once per transaction (lines 12/16);
4. per-node large determination, small coordinator reduce (lines 19–22).

The duplication variants (TGD/PGD/FGD) subclass this and override
:meth:`HHPGM._select_duplicates`; duplicated candidates are removed
from the partitions, counted locally on every node against the full t′
(Figures 7/9/11, line 8.1), and reduced at the coordinator.
"""

from __future__ import annotations

from repro.cluster.stats import PassStats
from repro.core.candidates import candidate_item_universe
from repro.core.counting import build_closure_table
from repro.core.itemsets import Itemset
from repro.faults.recovery import RecoveryProfile
from repro.parallel.allocation import (
    partition_candidates_by_root,
    root_key,
)
from repro.parallel.base import ParallelMiner
from repro.perf.executor import execute_per_node
from repro.perf.workers import HHPGMScanTask, apply_stats, hhpgm_scan
from repro.taxonomy.ops import closest_large_ancestors


class HHPGM(ParallelMiner):
    """Root-itemset hash partitioning; no duplication."""

    name = "H-HPGM"

    #: Scan phase routes transaction fragments (sends), receive phase
    #: drains and counts; all sends precede all drains within a pass.
    pass_protocol: tuple[str, ...] = ("begin_pass", "send*", "drain*", "finish_pass")

    def fault_profile(self) -> RecoveryProfile:
        return RecoveryProfile(
            placement="root-hash",
            description="a lost node loses whole candidate subtrees "
            "(all candidates sharing its root combinations); the full "
            "root partition is reassigned",
        )

    def _after_pass_one(self) -> None:
        # Lowest-large rewrite table (Figure 5, line 8); L1 is fixed for
        # the whole run, so the table is too.
        self._replacement = closest_large_ancestors(self.taxonomy, self._large_items)

    def _select_duplicates(
        self,
        k: int,
        candidates: list[Itemset],
        owner_of: dict[Itemset, int],
        partition_sizes: list[int],
        chains: dict[int, tuple[int, ...]],
    ) -> set[Itemset]:
        """Hook for the skew-handling subclasses; plain H-HPGM copies nothing."""
        return set()

    def _run_pass(
        self,
        k: int,
        candidates: list[Itemset],
        threshold: int,
    ) -> tuple[dict[Itemset, int], PassStats]:
        cluster = self.cluster
        num_nodes = cluster.num_nodes
        network = cluster.network
        node_stats = cluster.begin_pass()
        root_of = self.root_of

        universe = candidate_item_universe(candidates)
        chains = build_closure_table(self._full_index, self._large_items, universe)
        partitions, owners = partition_candidates_by_root(
            candidates, root_of, num_nodes
        )
        owner_of = {
            candidate: owners[root_key(candidate, root_of)]
            for candidate in candidates
        }

        duplicated = self._select_duplicates(
            k,
            candidates,
            owner_of,
            [len(partition) for partition in partitions],
            chains,
        )
        if duplicated:
            partitions = [
                [c for c in partition if c not in duplicated]
                for partition in partitions
            ]
            active_keys = {
                root_key(candidate, root_of)
                for partition in partitions
                for candidate in partition
            }
        else:
            # Without duplication every owned key keeps its candidates,
            # so the owner map's keys ARE the active keys.
            active_keys = set(owners)

        # An item needs shipping to a node only when some candidate still
        # RESIDENT there can use it as a witness — i.e. the item's
        # ancestor chain meets that partition's item universe.  Items
        # whose hot candidates were all duplicated are counted locally
        # and stop travelling ("support counting for frequent candidates
        # can be locally processed, which further reduces the
        # communication overhead", §5).  Every node derives this filter
        # from the broadcast L_{k-1}, so no coordination is needed.
        useful_for: list[set[int]] = []
        for partition in partitions:
            partition_universe = {item for c in partition for item in c}
            useful_for.append(
                {
                    item
                    for item in self._large_items
                    if any(
                        link in partition_universe
                        for link in chains.get(item, (item,))
                    )
                }
            )

        counting = self.counting
        part_counters = [
            counting.root_keyed_counter(partition, k, chains, root_of)
            for partition in partitions
        ]
        for node, partition in zip(cluster.nodes, partitions):
            node.charge_candidates(len(partition) + len(duplicated))

        # Scan phase: rewrite, count duplicates locally, route fragments.
        # Each node's scan is a pure worker; local-fragment hits come
        # back as counter state, remote fragments as an ordered send
        # list replayed here so traces and receive charges match a
        # serial run.  The duplicated set is materialised in sorted
        # order so every node builds its replica counter with identical
        # internal layout.
        tasks = [
            HHPGMScanTask(
                disk=node.disk,
                replacement=self._replacement,
                root_of=root_of,
                owners=owners,
                active_keys=frozenset(active_keys),
                useful_for=tuple(frozenset(useful) for useful in useful_for),
                chains=chains,
                partition=tuple(partitions[node.node_id]),
                duplicated=tuple(sorted(duplicated)),
                k=k,
                me=node.node_id,
                counting=counting,
            )
            for node in cluster.nodes
        ]
        results = execute_per_node(cluster.config, hhpgm_scan, tasks)
        for node, scan in zip(cluster.nodes, results):
            with self.obs.node_span("scan", node):
                me = node.node_id
                stats = node.stats
                apply_stats(stats, scan.stats)
                counter = part_counters[me]
                counter.probes += scan.probes
                counter.generated += scan.generated
                for itemset, count in sorted(scan.counts.items()):
                    counter.counts[itemset] += count
                for dest, fragment in scan.sends:
                    network.send(me, dest, fragment, stats, node_stats[dest])

        # Receive phase: count routed fragments against the local partition.
        for node in cluster.nodes:
            with self.obs.node_span("deliver", node):
                counter = part_counters[node.node_id]
                for payload in network.drain(node.node_id):
                    counter.add_transaction(payload)

        # Fold counter telemetry into the node stats.
        for node, scan in zip(cluster.nodes, results):
            with self.obs.node_span("count", node):
                stats = node.stats
                counter = part_counters[node.node_id]
                stats.probes += counter.probes
                stats.itemsets_generated += counter.generated
                stats.increments += sum(counter.counts.values())
                if duplicated:
                    stats.probes += scan.dup_probes
                    stats.itemsets_generated += scan.dup_generated
                    stats.increments += sum(scan.dup_counts.values())

        # Large determination: local for partitions, reduced for duplicates.
        large: dict[Itemset, int] = {}
        reduced = 0
        for counter in part_counters:
            local_large = {
                itemset: count
                for itemset, count in sorted(counter.counts.items())
                if count >= threshold
            }
            reduced += len(local_large)
            large.update(local_large)
        if duplicated:
            aggregated: dict[Itemset, int] = {}
            for scan in results:
                for itemset, count in sorted(scan.dup_counts.items()):
                    aggregated[itemset] = aggregated.get(itemset, 0) + count
            reduced += len(duplicated) * num_nodes
            large.update(
                {
                    itemset: count
                    for itemset, count in sorted(aggregated.items())
                    if count >= threshold
                }
            )

        pass_stats = cluster.finish_pass(
            k=k,
            num_candidates=len(candidates),
            num_large=len(large),
            reduced_counts=reduced,
            duplicated_candidates=len(duplicated),
        )
        return large, pass_stats
