"""The paper's contribution: six parallel generalized-rule miners.

All six algorithms mine exactly the same large itemsets as sequential
:func:`repro.core.cumulate` (the test suite asserts equality); they
differ in where candidates live and what crosses the interconnect:

* :class:`~repro.parallel.npgm.NPGM` — candidates replicated; fragments
  and re-scans the database when they overflow a node's memory.
* :class:`~repro.parallel.hpgm.HPGM` — candidates hash-partitioned
  ignoring the hierarchy; every k-itemset of every extended transaction
  is shipped to its owner.
* :class:`~repro.parallel.hhpgm.HHPGM` — candidates partitioned by the
  hash of their *root* itemset, so a candidate and all of its ancestor
  candidates share a node and only lowest-large items travel.
* :class:`~repro.parallel.hhpgm_tgd.HHPGMTreeGrain`,
  :class:`~repro.parallel.hhpgm_pgd.HHPGMPathGrain`,
  :class:`~repro.parallel.hhpgm_fgd.HHPGMFineGrain` — H-HPGM plus
  duplication of frequent candidates into the cluster's free memory, at
  tree / path / fine grain respectively.

:func:`mine_parallel` is the one-call convenience entry point;
:data:`ALGORITHMS` maps paper names to classes.
"""

from repro.parallel.base import ParallelMiner, ParallelRun
from repro.parallel.hhpgm import HHPGM
from repro.parallel.hhpgm_fgd import HHPGMFineGrain
from repro.parallel.hhpgm_pgd import HHPGMPathGrain
from repro.parallel.hhpgm_tgd import HHPGMTreeGrain
from repro.parallel.hpgm import HPGM
from repro.parallel.npgm import NPGM
from repro.parallel.registry import ALGORITHMS, make_miner, mine_parallel

__all__ = [
    "ALGORITHMS",
    "HHPGM",
    "HHPGMFineGrain",
    "HHPGMPathGrain",
    "HHPGMTreeGrain",
    "HPGM",
    "NPGM",
    "ParallelMiner",
    "ParallelRun",
    "make_miner",
    "mine_parallel",
]
