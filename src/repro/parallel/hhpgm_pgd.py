"""H-HPGM-PGD — Path Grain Duplicate (§3.4.2).

Duplicates at path grain: the *lowest-level* large candidates (itemsets
of large items with no large descendants) are ranked by frequency, and
each chosen one is copied together with **all of its ancestor
candidates** (Example 4 copies ``{8,10}`` plus ``{1,3} {1,8} {3,4}
{3,10} {4,8}``).  Smaller groups than TGD's trees, so free memory is
usable even when tight — but the choice is driven by leaf frequency
only, which can copy useless closures when an interior item is hot and
its descendants are not (the weakness FGD removes).
"""

from __future__ import annotations

from repro.core.itemsets import Itemset
from repro.faults.recovery import RecoveryProfile
from repro.parallel.duplication import lowest_large_items, select_path_grain
from repro.parallel.hhpgm import HHPGM


class HHPGMPathGrain(HHPGM):
    """H-HPGM with leaf-itemset + ancestor-path duplication."""

    name = "H-HPGM-PGD"

    #: Same wire protocol as H-HPGM — duplication only changes *what*
    #: is counted locally, never the pass structure.
    pass_protocol: tuple[str, ...] = ("begin_pass", "send*", "drain*", "finish_pass")

    def fault_profile(self) -> RecoveryProfile:
        return RecoveryProfile(
            placement="root-hash+path-dup",
            replicates_duplicates=True,
            description="duplicated paths are restored from any "
            "survivor; only the non-duplicated root partition is "
            "reassigned",
        )

    def _select_duplicates(
        self,
        k: int,
        candidates: list[Itemset],
        owner_of: dict[Itemset, int],
        partition_sizes: list[int],
        chains: dict[int, tuple[int, ...]],
    ) -> set[Itemset]:
        with self.obs.span("duplicate-select", grain="path", k=k):
            return select_path_grain(
                candidates=candidates,
                owner_of=owner_of,
                item_counts=self._item_counts,
                chains=chains,
                lowest_items=lowest_large_items(self._large_items, self.taxonomy),
                partition_sizes=partition_sizes,
                memory=self.cluster.config.memory_per_node,
            )
