"""Per-file analysis context shared by every rule.

One :class:`ModuleContext` is built per linted file: the parsed AST with
parent links, the inferred dotted module name (which the scoped rules
match their package lists against), and small AST classification
helpers used by several rules.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

#: ``# repro-lint: module=repro.parallel.foo`` — overrides the module
#: name inferred from the file path.  Used by rule fixtures, which live
#: outside the package tree but must exercise package-scoped rules.
_MODULE_MARKER = re.compile(r"#\s*repro-lint:\s*module=([\w.]+)")

#: Dict views are iteration-order hazards; everything reached through
#: one of these attributes is treated as unordered.
DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})

#: Calls that consume an iterable without observing its order, so an
#: unordered argument is harmless.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "sum", "min", "max", "len", "any", "all", "set", "frozenset", "Counter"}
)


def infer_module_name(path: Path) -> str:
    """Dotted module name from a file path.

    Everything from the last ``repro`` path component onward; files
    outside the package tree fall back to their stem (fixtures override
    via the module marker comment).
    """
    parts = list(path.parts)
    name = path.stem
    if "repro" in parts:
        start = len(parts) - 1 - parts[::-1].index("repro")
        dotted = [p for p in parts[start:-1]]
        if name != "__init__":
            dotted.append(name)
        return ".".join(dotted)
    return name


def dotted_name(node: ast.AST) -> str | None:
    """Render ``a.b.c`` chains; None for anything more dynamic."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is None:
            return None
        return f"{base}.{node.attr}"
    return None


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one file."""

    path: Path
    display_path: str
    source: str
    tree: ast.AST
    module: str = ""
    lines: list[str] = field(default_factory=list)
    _parents: dict[int, ast.AST] = field(default_factory=dict)

    @classmethod
    def build(cls, path: Path, source: str, display_path: str | None = None) -> "ModuleContext":
        tree = ast.parse(source, filename=str(path))
        ctx = cls(
            path=path,
            display_path=display_path if display_path is not None else str(path),
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )
        ctx.module = cls._module_name(path, ctx.lines)
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                ctx._parents[id(child)] = parent
        return ctx

    @staticmethod
    def _module_name(path: Path, lines: list[str]) -> str:
        for line in lines[:20]:
            marker = _MODULE_MARKER.search(line)
            if marker:
                return marker.group(1)
        return infer_module_name(path)

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(id(node))

    def in_packages(self, prefixes: tuple[str, ...]) -> bool:
        """Does this module live under one of the dotted prefixes?"""
        return any(
            self.module == prefix or self.module.startswith(prefix + ".")
            for prefix in prefixes
        )

    # ------------------------------------------------------------------
    # AST classification helpers
    # ------------------------------------------------------------------
    def is_dict_view(self, node: ast.AST) -> bool:
        """``x.keys()`` / ``x.values()`` / ``x.items()``."""
        return (
            isinstance(node, ast.Call)
            and not node.args
            and not node.keywords
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in DICT_VIEW_METHODS
        )

    def is_set_expr(self, node: ast.AST) -> bool:
        """A syntactically evident set: display, comprehension, set()/frozenset()."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in {"set", "frozenset"}
        )

    def is_unordered(self, node: ast.AST) -> bool:
        return self.is_dict_view(node) or self.is_set_expr(node)

    def consumed_order_insensitively(self, node: ast.AST) -> bool:
        """Is ``node`` an argument of sorted()/sum()/... (order laundered)?"""
        parent = self.parent(node)
        return (
            isinstance(parent, ast.Call)
            and node in parent.args
            and isinstance(parent.func, ast.Name)
            and parent.func.id in ORDER_INSENSITIVE_CONSUMERS
        )
