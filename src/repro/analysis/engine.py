"""Lint engine: file discovery, rule dispatch, suppression comments.

Suppression syntax (see ``docs/static_analysis.md``):

* ``some_code()  # repro-lint: disable=RL001`` — suppresses the listed
  rule(s) on that line; a justification after the rule list is
  encouraged and ignored by the parser.
* a comment-only line ``# repro-lint: disable=RL001 — why`` suppresses
  the listed rules on the *next* line (for statements too long to
  carry the comment).
* ``# repro-lint: disable-file=RL003`` anywhere in the first 20 lines
  suppresses the rule for the whole file.

A file that does not parse yields a single ``RL000`` finding at the
syntax-error location rather than crashing the run.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES, Rule

def _disable_pattern(marker: str) -> re.Pattern:
    """The suppression-comment regex for one tool marker.

    Compiled per call; :mod:`re` memoizes compilation internally, and
    there are only two markers in practice.
    """
    return re.compile(
        rf"#\s*{re.escape(marker)}:\s*disable(?P<file>-file)?\s*=\s*"
        r"(?P<rules>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
    )


@dataclass
class Suppressions:
    """Parsed suppression comments of one file."""

    by_line: dict[int, set[str]] = field(default_factory=dict)
    whole_file: set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, lines: list[str], marker: str = "repro-lint") -> "Suppressions":
        supp = cls()
        disable = _disable_pattern(marker)
        for lineno, text in enumerate(lines, start=1):
            match = disable.search(text)
            if not match:
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            if match.group("file"):
                if lineno <= 20:
                    supp.whole_file |= rules
                continue
            target = lineno
            if text.lstrip().startswith("#"):
                # Comment-only line: applies to the next code line, so a
                # justification may span several comment lines.
                target = lineno + 1
                while target <= len(lines) and (
                    not lines[target - 1].strip()
                    or lines[target - 1].lstrip().startswith("#")
                ):
                    target += 1
            supp.by_line.setdefault(target, set()).update(rules)
        return supp

    def allows(self, finding: Finding) -> bool:
        """True when the finding survives (is NOT suppressed)."""
        if finding.rule in self.whole_file:
            return False
        return finding.rule not in self.by_line.get(finding.line, set())


@dataclass
class LintResult:
    """Outcome of linting a set of paths."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files and directories into a sorted, de-duplicated file list."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def _select_rules(
    rules: tuple[Rule, ...],
    select: set[str] | None,
    ignore: set[str] | None,
) -> tuple[Rule, ...]:
    chosen = rules
    if select:
        chosen = tuple(r for r in chosen if r.rule_id in select)
    if ignore:
        chosen = tuple(r for r in chosen if r.rule_id not in ignore)
    return chosen


def lint_source(
    source: str,
    path: Path,
    rules: tuple[Rule, ...] = ALL_RULES,
    display_path: str | None = None,
) -> tuple[list[Finding], int]:
    """Lint one in-memory source; returns (findings, suppressed count)."""
    shown = display_path if display_path is not None else str(path)
    try:
        ctx = ModuleContext.build(path, source, display_path=shown)
    except SyntaxError as error:
        return (
            [
                Finding(
                    path=shown,
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                    rule="RL000",
                    message=f"file does not parse: {error.msg}",
                )
            ],
            0,
        )
    suppressions = Suppressions.parse(ctx.lines)
    kept: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            if suppressions.allows(finding):
                kept.append(finding)
            else:
                suppressed += 1
    kept.sort()
    return kept, suppressed


def lint_file(
    path: Path,
    rules: tuple[Rule, ...] = ALL_RULES,
    display_path: str | None = None,
) -> list[Finding]:
    """Lint one file from disk (suppression-filtered findings)."""
    source = path.read_text(encoding="utf-8")
    findings, _ = lint_source(source, path, rules=rules, display_path=display_path)
    return findings


def lint_paths(
    paths: list[Path],
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    rules: tuple[Rule, ...] = ALL_RULES,
) -> LintResult:
    """Lint files and directories; the CLI's workhorse."""
    chosen = _select_rules(rules, select, ignore)
    result = LintResult()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings, suppressed = lint_source(source, file_path, rules=chosen)
        result.findings.extend(findings)
        result.suppressed += suppressed
        result.files_checked += 1
    result.findings.sort()
    return result
