"""SARIF 2.1.0 serialization, shared by ``repro-lint`` and ``repro-analyze``.

One serializer so both tools upload to GitHub code scanning with the
same shape.  Output is canonical: findings pre-sorted by the caller's
``Finding`` ordering, keys sorted, URIs repo-relative where possible —
``json.dumps`` of the result is byte-stable across runs and hash seeds.
"""

from __future__ import annotations

import json
from pathlib import PurePath

from repro.analysis.findings import Finding

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
SARIF_VERSION = "2.1.0"


def _uri(path: str) -> str:
    """Forward-slash, relative-looking URI for one finding path."""
    pure = PurePath(path)
    text = pure.as_posix()
    return text.lstrip("/") if pure.is_absolute() else text


def to_sarif(
    findings: list[Finding],
    tool_name: str,
    rules: list[dict],
    information_uri: str = "https://github.com/repro/repro",
) -> dict:
    """Build a SARIF log dict.

    Parameters
    ----------
    findings:
        Already-sorted findings.
    tool_name:
        ``repro-lint`` or ``repro-analyze``.
    rules:
        Rule metadata dicts with ``id``, ``name`` and ``summary`` keys,
        in rule-id order.
    """
    driver_rules = [
        {
            "id": rule["id"],
            "name": rule["name"],
            "shortDescription": {"text": rule["summary"]},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": _uri(finding.path)},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.column,
                        },
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": information_uri,
                        "rules": driver_rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: list[Finding],
    tool_name: str,
    rules: list[dict],
) -> str:
    """Canonical SARIF text (sorted keys, 2-space indent, no trailing ws)."""
    return json.dumps(
        to_sarif(findings, tool_name, rules), indent=2, sort_keys=True
    )
