"""Static analysis for the reproduction's correctness invariants.

The test suite can only spot-check the two claims everything rests on —
all six parallel algorithms return itemsets identical to sequential
Cumulate, and the shared-nothing simulator is bit-for-bit deterministic
run-to-run.  This package enforces the *coding* invariants behind those
claims at review time with an AST-based linter (stdlib ``ast`` only):

* :mod:`repro.analysis.engine` — file discovery, suppression comments,
  rule dispatch;
* :mod:`repro.analysis.rules` — the rule set (RL001–RL006);
* :mod:`repro.analysis.cli` — the ``repro-lint`` console entry point.

The linter's static view is cross-checked at runtime by
:mod:`repro.cluster.invariants`, which validates message conservation
and candidate-memory accounting at every pass boundary when enabled.

See ``docs/static_analysis.md`` for the rule catalogue and the
suppression syntax.
"""

from __future__ import annotations

from repro.analysis.engine import LintResult, lint_file, lint_paths
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES, rule_catalog

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintResult",
    "lint_file",
    "lint_paths",
    "rule_catalog",
]
