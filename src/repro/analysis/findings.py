"""The unit of linter output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Orders by location first so reports read top-to-bottom per file;
    ``rule`` breaks ties when several rules fire on one line.
    """

    path: str
    line: int
    column: int
    rule: str
    message: str

    def render(self) -> str:
        """The classic compiler-style one-liner."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"

    def to_json(self) -> dict:
        """JSON-serialisable form (``--format json``)."""
        return {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
        }
