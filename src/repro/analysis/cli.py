"""``repro-lint`` — the console entry point of :mod:`repro.analysis`.

Usage::

    repro-lint src/                      # human-readable report
    repro-lint src/ --format json        # machine-readable (CI)
    repro-lint src/ --format sarif       # GitHub code scanning
    repro-lint src/ --select RL001,RL006 # only some rules
    repro-lint --list-rules              # the rule catalogue

Exit codes: 0 clean, 1 findings, 2 bad invocation (unknown rule id,
missing path) — distinct from "findings present" so CI can tell a
broken gate from a failing one.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.engine import LintResult, lint_paths
from repro.analysis.rules import ALL_RULES
from repro.analysis.sarif import render_sarif


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="determinism & invariant static analysis for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["."],
        help="files or directories to lint (default: current directory)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run exclusively (e.g. RL001,RL006)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _parse_rule_list(raw: str | None, known: set[str]) -> set[str] | None:
    if raw is None:
        return None
    rules = {piece.strip() for piece in raw.split(",") if piece.strip()}
    unknown = rules - known
    if unknown:
        raise SystemExit(
            f"repro-lint: unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return rules


def _render_text(result: LintResult) -> str:
    lines = [finding.render() for finding in result.findings]
    noun = "finding" if len(result.findings) == 1 else "findings"
    lines.append(
        f"{len(result.findings)} {noun} in {result.files_checked} files "
        f"({result.suppressed} suppressed)"
    )
    return "\n".join(lines)


def _render_json(result: LintResult) -> str:
    return json.dumps(
        {
            "version": 1,
            "findings": [finding.to_json() for finding in result.findings],
            "summary": {
                "files_checked": result.files_checked,
                "findings": len(result.findings),
                "suppressed": result.suppressed,
            },
        },
        indent=2,
        sort_keys=True,
    )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.name:<22} {rule.summary}")
        return 0

    known = {rule.rule_id for rule in ALL_RULES}
    try:
        select = _parse_rule_list(args.select, known)
        ignore = _parse_rule_list(args.ignore, known)
    except SystemExit as error:
        print(error, file=sys.stderr)
        return 2

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro-lint: no such path: {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return 2

    result = lint_paths(paths, select=select, ignore=ignore)
    if args.format == "json":
        output = _render_json(result)
    elif args.format == "sarif":
        output = render_sarif(
            result.findings,
            "repro-lint",
            [
                {"id": rule.rule_id, "name": rule.name, "summary": rule.summary}
                for rule in ALL_RULES
            ],
        )
    else:
        output = _render_text(result)
    print(output)
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
