"""Determinism rules: RL001 unordered iteration, RL002 wall-clock /
unseeded randomness, RL003 float equality.

These enforce the two claims the repository's tests can only
spot-check: identical itemsets across all algorithms, and bit-for-bit
reproducible simulator runs.  See ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: Packages where *any* unordered iteration is flagged: their iteration
#: order reaches message routing, candidate allocation or result
#: assembly (RL001's "order-critical" scope).
ORDER_CRITICAL_PACKAGES = ("repro.parallel", "repro.cluster", "repro.core")

#: Canonical callables that read the wall clock.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Modules whose float comparisons feed measured results.
FLOAT_SENSITIVE_PACKAGES = ("repro.cluster.cost", "repro.metrics")


def _describe_iterable(ctx: ModuleContext, node: ast.AST) -> str:
    if ctx.is_dict_view(node):
        assert isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)
        target = dotted_name(node.func.value) or "<expr>"
        return f"dict view `{target}.{node.func.attr}()`"
    if isinstance(node, ast.Name):
        return f"set `{node.id}`"
    return "set expression"


def _contains_network_send(body: list[ast.stmt]) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "send"
            ):
                return True
    return False


class UnorderedIterationRule(Rule):
    """RL001 — unordered ``dict``/``set`` iteration where order escapes.

    Two triggers:

    * in the order-critical packages (``repro.parallel``,
      ``repro.cluster``, ``repro.core``) every ``for`` statement or
      comprehension iterating a dict view or set must iterate
      ``sorted(...)`` instead — iteration order there flows into
      network sends, candidate allocation and result assembly;
    * anywhere, a ``for`` loop over an unordered iterable whose body
      performs a ``.send(...)`` call is flagged — message emission
      order must be canonical.

    Set comprehensions are exempt (their result is itself unordered),
    as are iterables consumed by order-insensitive reducers
    (``sorted``/``sum``/``min``/``max``/``len``/``any``/``all``/
    ``set``/``frozenset``/``Counter``).  Dict views passed as plain
    call arguments in the critical packages are also flagged: the
    callee inherits the unordered iteration.
    """

    rule_id = "RL001"
    name = "unordered-iteration"
    summary = "dict/set iteration order must not reach sends, allocation or results"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        critical = ctx.in_packages(ORDER_CRITICAL_PACKAGES)
        set_names = self._locally_bound_sets(ctx)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                findings.extend(self._check_for(ctx, node, critical, set_names))
            elif isinstance(node, (ast.ListComp, ast.DictComp, ast.GeneratorExp)):
                findings.extend(
                    self._check_comprehension(ctx, node, critical, set_names)
                )
            elif critical and isinstance(node, ast.Call):
                findings.extend(self._check_call_args(ctx, node))
        return findings

    # ------------------------------------------------------------------
    def _locally_bound_sets(self, ctx: ModuleContext) -> set[str]:
        """Names assigned from a syntactically evident set expression."""
        names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if isinstance(target, ast.Name) and ctx.is_set_expr(value):
                names.add(target.id)
        return names

    def _is_unordered_iter(
        self, ctx: ModuleContext, node: ast.AST, set_names: set[str]
    ) -> bool:
        if ctx.is_unordered(node):
            return True
        return isinstance(node, ast.Name) and node.id in set_names

    def _check_for(
        self,
        ctx: ModuleContext,
        node: ast.For,
        critical: bool,
        set_names: set[str],
    ) -> list[Finding]:
        if not self._is_unordered_iter(ctx, node.iter, set_names):
            return []
        sends = _contains_network_send(node.body)
        if not critical and not sends:
            return []
        what = _describe_iterable(ctx, node.iter)
        reason = (
            "loop body sends messages; emission order must be canonical"
            if sends
            else "iteration order is not canonical in an order-critical module"
        )
        return [
            self.finding(
                ctx,
                node.iter,
                f"unordered iteration over {what}: {reason}; iterate sorted(...)",
            )
        ]

    def _check_comprehension(
        self,
        ctx: ModuleContext,
        node: ast.ListComp | ast.DictComp | ast.GeneratorExp,
        critical: bool,
        set_names: set[str],
    ) -> list[Finding]:
        if not critical or ctx.consumed_order_insensitively(node):
            return []
        findings = []
        for generator in node.generators:
            if self._is_unordered_iter(ctx, generator.iter, set_names):
                what = _describe_iterable(ctx, generator.iter)
                findings.append(
                    self.finding(
                        ctx,
                        generator.iter,
                        f"comprehension iterates unordered {what}; "
                        "iterate sorted(...) so the result order is canonical",
                    )
                )
        return findings

    def _check_call_args(self, ctx: ModuleContext, node: ast.Call) -> list[Finding]:
        """Dict views handed to an order-sensitive callee."""
        findings = []
        callee = dotted_name(node.func)
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if ctx.is_dict_view(arg) and not ctx.consumed_order_insensitively(arg):
                what = _describe_iterable(ctx, arg)
                findings.append(
                    self.finding(
                        ctx,
                        arg,
                        f"{what} passed to `{callee or '<callee>'}`, which "
                        "inherits its unordered iteration; pass sorted(...)",
                    )
                )
        return findings


class WallClockRule(Rule):
    """RL002 — wall-clock reads and unseeded randomness.

    ``time.time``/``time.time_ns``, ``datetime.now``-family calls, the
    module-level ``random.*`` functions (the global, unseeded RNG),
    ``random.Random()`` constructed without a seed, and
    ``random.SystemRandom`` are all banned everywhere in the library:
    the simulator, generators and experiment pipeline must be pure
    functions of their inputs.  Durations belong to
    ``time.perf_counter``/``time.monotonic``; randomness to a
    ``random.Random(seed)`` instance threaded through parameters.
    """

    rule_id = "RL002"
    name = "wall-clock"
    summary = "no wall-clock or unseeded randomness in deterministic code"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        aliases = self._import_aliases(ctx)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = self._canonical(node.func, aliases)
            if canonical is None:
                continue
            if canonical in WALL_CLOCK_CALLS:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"wall-clock call `{canonical}`; inject a clock or use "
                        "time.perf_counter for durations",
                    )
                )
            elif canonical.startswith("random."):
                findings.extend(self._check_random(ctx, node, canonical))
        return findings

    @staticmethod
    def _import_aliases(ctx: ModuleContext) -> dict[str, str]:
        """Local name → canonical dotted name, from this file's imports."""
        aliases: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    aliases[alias.asname or alias.name.split(".")[0]] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return aliases

    @staticmethod
    def _canonical(func: ast.AST, aliases: dict[str, str]) -> str | None:
        dotted = dotted_name(func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head not in aliases:
            return None
        expanded = aliases[head]
        return f"{expanded}.{rest}" if rest else expanded

    def _check_random(
        self, ctx: ModuleContext, node: ast.Call, canonical: str
    ) -> list[Finding]:
        symbol = canonical.split(".", 1)[1]
        if symbol == "Random":
            if node.args or node.keywords:
                return []  # seeded — reproducible by construction
            message = "`random.Random()` without a seed is nondeterministic"
        elif symbol == "SystemRandom":
            message = "`random.SystemRandom` is nondeterministic by design"
        elif symbol[:1].islower():
            message = (
                f"module-level `{canonical}` uses the global unseeded RNG; "
                "thread a seeded random.Random through parameters"
            )
        else:
            return []
        return [self.finding(ctx, node, message)]


class FloatEqualityRule(Rule):
    """RL003 — float equality in the cost model and metrics.

    ``==``/``!=`` against a float literal silently depends on the exact
    rounding of upstream arithmetic; use ``math.isclose`` or compare
    against the integer counters the floats were derived from.  Scoped
    to ``repro.cluster.cost`` and ``repro.metrics``, where comparisons
    feed reported numbers.
    """

    rule_id = "RL003"
    name = "float-equality"
    summary = "no ==/!= against float literals in cost model or metrics"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        if not ctx.in_packages(FLOAT_SENSITIVE_PACKAGES):
            return []
        findings = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                continue
            operands = [node.left, *node.comparators]
            if any(
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, float)
                for operand in operands
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "float equality comparison; use math.isclose or an "
                        "integer-domain comparison",
                    )
                )
        return findings
