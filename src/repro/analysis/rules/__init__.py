"""Rule registry.

``ALL_RULES`` lists one instance of every rule, in rule-id order; the
engine and CLI consume the registry, never the classes directly, so new
rules only need to be added here.
"""

from __future__ import annotations

from repro.analysis.rules.async_rules import UntimedAwaitRule
from repro.analysis.rules.base import Rule
from repro.analysis.rules.caches import UnboundedCacheRule
from repro.analysis.rules.determinism import (
    FloatEqualityRule,
    UnorderedIterationRule,
    WallClockRule,
)
from repro.analysis.rules.hygiene import BroadExceptRule, MutableDefaultRule
from repro.analysis.rules.protocol import SimulatorProtocolRule
from repro.analysis.rules.publish_rules import TornPublishRule
from repro.analysis.rules.requests import RequestSpanRule
from repro.analysis.rules.retry import UnboundedRetryRule
from repro.analysis.rules.spans import SpanDisciplineRule
from repro.analysis.rules.store_rules import StoreMaterializeRule

ALL_RULES: tuple[Rule, ...] = (
    UnorderedIterationRule(),
    WallClockRule(),
    FloatEqualityRule(),
    MutableDefaultRule(),
    BroadExceptRule(),
    SimulatorProtocolRule(),
    SpanDisciplineRule(),
    UnboundedRetryRule(),
    UnboundedCacheRule(),
    RequestSpanRule(),
    StoreMaterializeRule(),
    UntimedAwaitRule(),
    TornPublishRule(),
)


def rule_catalog() -> dict[str, Rule]:
    """Rule id → rule instance."""
    return {rule.rule_id: rule for rule in ALL_RULES}


__all__ = ["ALL_RULES", "Rule", "rule_catalog"]
