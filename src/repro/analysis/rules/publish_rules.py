"""RL013 — non-atomic publish-artifact writes.

Every serving-visible artifact in this repo — store manifests, rule
snapshots, refresh checkpoints, the ``CURRENT`` pointer — is committed
through the atomic helpers in :mod:`repro.store.atomic`
(write to a same-directory temp file, flush, fsync, ``os.replace``),
and always manifest/pointer **last**.  A plain ``path.write_text(...)``
on one of these files can be observed half-written by a concurrent
reader and survives a crash as a torn artifact — exactly the failure
class the refresh tier's recovery contract rules out.

Flagged: ``X.write_text(...)`` / ``X.write_bytes(...)`` where the
receiver *reads* as a publish artifact — its dotted name's last
component contains ``manifest``, ``snapshot``, ``pointer``,
``checkpoint`` or ``state_path``, or it is a ``path / NAME`` expression
whose name constant does (``path / "log.json"``, ``root / CURRENT``).

Exempt: test modules (tests construct torn artifacts on purpose) and
:mod:`repro.store.atomic` itself (the allow-listed commit point; its
temp-file write is the mechanism, not a violation).
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: Name fragments that mark a receiver as a publish artifact.
_ARTIFACT_MARKERS = ("manifest", "snapshot", "pointer", "checkpoint", "state_path")

#: Basename constants that are publish artifacts wherever they appear.
_ARTIFACT_BASENAMES = frozenset(
    {"log.json", "manifest.json", "state.json", "current"}
)

#: The module allowed to perform the raw write (the commit helper).
_ALLOWED_MODULES = frozenset({"repro.store.atomic"})

_WRITERS = frozenset({"write_text", "write_bytes"})


def _is_test_module(module: str) -> bool:
    last = module.rsplit(".", 1)[-1]
    return (
        module.startswith("tests")
        or last.startswith("test_")
        or last == "conftest"
    )


def _names_an_artifact(node: ast.expr) -> bool:
    """Does this receiver *read* as a publish artifact?"""
    name = dotted_name(node)
    if name is not None:
        last = name.rsplit(".", 1)[-1].lower()
        return any(marker in last for marker in _ARTIFACT_MARKERS)
    # ``dir / "manifest.json"`` style: check the path's last constant
    # segment (and names like ``root / CURRENT_NAME``).
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
        segment = node.right
        if isinstance(segment, ast.Constant) and isinstance(segment.value, str):
            base = segment.value.lower()
            return (
                base in _ARTIFACT_BASENAMES
                or any(marker in base for marker in _ARTIFACT_MARKERS)
            )
        segment_name = dotted_name(segment)
        if segment_name is not None:
            last = segment_name.rsplit(".", 1)[-1].lower()
            return (
                last in {"current_name", "manifest_name", "state_name"}
                or any(marker in last for marker in _ARTIFACT_MARKERS)
            )
    return False


class TornPublishRule(Rule):
    """RL013 — publish artifacts commit atomically, manifest last.

    Flags direct ``.write_text()``/``.write_bytes()`` on
    manifest/snapshot/pointer/checkpoint-shaped paths outside tests and
    :mod:`repro.store.atomic`.  Route the write through
    ``atomic_write_text``/``atomic_write_bytes``/``atomic_write_json``
    instead.
    """

    rule_id = "RL013"
    name = "torn-publish"
    summary = (
        "manifest/snapshot/pointer writes go through repro.store.atomic "
        "(no raw write_text on publish artifacts)"
    )

    def check(self, ctx: ModuleContext) -> list[Finding]:
        if _is_test_module(ctx.module) or ctx.module in _ALLOWED_MODULES:
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _WRITERS
                and _names_an_artifact(node.func.value)
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f".{node.func.attr}() on a publish artifact can be "
                        "observed half-written; commit it with "
                        "repro.store.atomic (temp file + fsync + replace)",
                    )
                )
        findings.sort(key=lambda finding: (finding.line, finding.column))
        return findings
