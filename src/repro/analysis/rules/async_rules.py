"""RL012 — untimed awaits on blocking primitives.

The sharded serving tier (:mod:`repro.serve.shard`) is an asyncio
program whose robustness contract is that **every** await on a queue,
lock, or network primitive is bounded: an untimed ``await queue.get()``
on a dispatch path turns one dead shard into a hung request, and the
backpressure/deadline machinery never gets a chance to shed or fail
over.  Similarly, an unbounded ``asyncio.Queue()`` silently absorbs
overload instead of surfacing it as a ``QueueFull`` the admission layer
can convert into 429s.

Flagged:

* ``await x.get()`` / ``x.put()`` / ``x.join()`` / ``x.wait()`` /
  ``x.acquire()`` / ``x.recv()`` / ``x.read()`` … without a ``timeout``
  keyword — wrap the call in ``asyncio.wait_for(..., timeout=...)`` (the
  wrapper itself is not flagged, so the sanctioned spelling is one
  line);
* ``asyncio.Queue()`` (and the Lifo/Priority variants) constructed
  without a positive literal ``maxsize`` — bounded queues are the
  backpressure signal.

The pool's drain loop (:mod:`repro.serve.shard.pool`) is the one
sanctioned home of untimed queue awaits: a worker parked on its own
queue *is* the idle state, and its liveness is owned by the breaker and
deadline stamps, not a timeout.  That module is exempted here by name;
test modules are exempt as everywhere else.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: Method names whose await blocks until a peer acts.  Deliberately not
#: ``wait_for``/``gather``/``sleep`` — those are the bounding tools.
BLOCKING_ATTRS = frozenset(
    {
        "acquire",
        "connect",
        "drain",
        "get",
        "join",
        "put",
        "read",
        "readexactly",
        "readline",
        "recv",
        "wait",
    }
)

#: Queue constructors that must be bounded.
_QUEUE_CONSTRUCTORS = frozenset(
    {"asyncio.Queue", "asyncio.LifoQueue", "asyncio.PriorityQueue"}
)

#: Modules whose untimed queue awaits are the design (see module
#: docstring); each declares the sanction in its own docstring too.
_SANCTIONED_MODULES = frozenset({"repro.serve.shard.pool"})


def _is_test_module(module: str) -> bool:
    last = module.rsplit(".", 1)[-1]
    return (
        module.startswith("tests")
        or last.startswith("test_")
        or last == "conftest"
    )


def _has_timeout_keyword(call: ast.Call) -> bool:
    return any(keyword.arg == "timeout" for keyword in call.keywords)


def _bounded_maxsize(call: ast.Call) -> bool:
    """Is a positive maxsize evident?  Non-literal sizes get the benefit
    of the doubt — the rule is for the obviously unbounded default."""
    size: ast.expr | None = None
    if call.args:
        size = call.args[0]
    for keyword in call.keywords:
        if keyword.arg == "maxsize":
            size = keyword.value
    if size is None:
        return False
    if isinstance(size, ast.Constant) and isinstance(size.value, int):
        return size.value > 0
    return True


class UntimedAwaitRule(Rule):
    """RL012 — every blocking await is bounded, every queue has a depth.

    Flags ``await`` of queue/lock/network primitives without a
    ``timeout`` keyword (bound them with ``asyncio.wait_for``) and
    ``asyncio.Queue()`` constructions without a positive ``maxsize``.
    """

    rule_id = "RL012"
    name = "untimed-await"
    summary = (
        "blocking awaits carry a timeout and asyncio queues a maxsize "
        "(wrap in asyncio.wait_for; bound the queue)"
    )

    def check(self, ctx: ModuleContext) -> list[Finding]:
        if _is_test_module(ctx.module) or ctx.module in _SANCTIONED_MODULES:
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Await):
                finding = self._check_await(ctx, node)
            elif isinstance(node, ast.Call):
                finding = self._check_queue(ctx, node)
            else:
                continue
            if finding is not None:
                findings.append(finding)
        findings.sort(key=lambda finding: (finding.line, finding.column))
        return findings

    # ------------------------------------------------------------------
    def _check_await(self, ctx: ModuleContext, node: ast.Await) -> Finding | None:
        call = node.value
        if not isinstance(call, ast.Call):
            return None
        if not isinstance(call.func, ast.Attribute):
            return None
        attr = call.func.attr
        if attr not in BLOCKING_ATTRS:
            return None
        if _has_timeout_keyword(call):
            return None
        return self.finding(
            ctx,
            node,
            f"await .{attr}() has no bound; a dead peer hangs this task "
            "forever — wrap in asyncio.wait_for(..., timeout=...)",
        )

    def _check_queue(self, ctx: ModuleContext, node: ast.Call) -> Finding | None:
        callee = dotted_name(node.func)
        if callee not in _QUEUE_CONSTRUCTORS:
            return None
        if _bounded_maxsize(node):
            return None
        return self.finding(
            ctx,
            node,
            f"{callee}() without a positive maxsize absorbs overload "
            "silently; bound it so saturation surfaces as QueueFull",
        )
