"""RL006 — simulator-protocol checks for the shared-nothing model.

The cluster simulator is honest only while two conventions hold:

* every module that puts payloads on the wire (``network.send``) also
  drains a mailbox (``network.drain``) — otherwise messages pile up
  and ``finish_pass`` aborts at runtime, but only on paths a test
  happens to execute;
* inside a per-node scan loop (``for node in cluster.nodes``), code
  must not reach into *another* node's state via ``...nodes[...]`` —
  a read across ranks that a real shared-nothing machine cannot do
  without a message (the lightweight race detector).

This rule is the static half; :mod:`repro.cluster.invariants` is the
matching runtime half (message conservation, memory accounting).
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule


def _is_network_call(node: ast.AST, method: str) -> bool:
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == method
    ):
        return False
    receiver = dotted_name(node.func.value)
    return receiver is not None and "network" in receiver.split(".")


def _is_node_scan_loop(node: ast.For) -> bool:
    dotted = dotted_name(node.iter)
    return dotted is not None and dotted.split(".")[-1] == "nodes"


class SimulatorProtocolRule(Rule):
    """RL006 — unbalanced sends and cross-rank state access."""

    rule_id = "RL006"
    name = "simulator-protocol"
    summary = "every Network.send needs a drain path; no cross-rank state reads"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        sends: list[ast.Call] = []
        drains = 0
        for node in ast.walk(ctx.tree):
            if _is_network_call(node, "send"):
                sends.append(node)
            elif _is_network_call(node, "drain"):
                drains += 1
            elif isinstance(node, ast.For) and _is_node_scan_loop(node):
                findings.extend(self._check_cross_rank(ctx, node))
        if sends and drains == 0:
            findings.append(
                self.finding(
                    ctx,
                    sends[0],
                    "module calls network.send but never network.drain; "
                    "every send needs a receive path in the same pass",
                )
            )
        return findings

    def _check_cross_rank(self, ctx: ModuleContext, loop: ast.For) -> list[Finding]:
        findings = []
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Subscript):
                    continue
                dotted = dotted_name(node.value)
                if dotted is not None and dotted.split(".")[-1] == "nodes":
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "indexing into the node list inside a per-node "
                            "scan loop reads another rank's state; a "
                            "shared-nothing node only sees messages",
                        )
                    )
        return findings
