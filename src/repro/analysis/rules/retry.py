"""RL008 — unbounded retry loops.

The fault layer's contract is that every retry is **bounded**: a
``while True`` loop wrapping a ``try`` whose handlers neither re-raise
nor break is a retry-forever — under a persistent fault (or a seeded
chaos plan with a high transient rate) it spins instead of failing
with :class:`~repro.errors.SendRetryExhaustedError`.  Write the retry
as ``for attempt in range(budget)`` with an explicit exhaustion raise,
as :meth:`repro.faults.recovery.FaultController._retry_transient`
does.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule


def _is_while_true(node: ast.While) -> bool:
    test = node.test
    return isinstance(test, ast.Constant) and bool(test.value) is True


def _handler_escapes(handler: ast.ExceptHandler) -> bool:
    """True when the handler can leave the loop (raise/break/return),
    looking through nested ifs but not into nested functions/loops."""
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Break, ast.Return)):
            return True
    return False


def _loop_escapes(loop: ast.While) -> bool:
    """True when the loop body itself has a break/return outside the
    ``try`` handlers (a success path that terminates the loop)."""

    class _Finder(ast.NodeVisitor):
        found = False

        def visit_Break(self, node):  # noqa: N802 (ast visitor API)
            self.found = True

        def visit_Return(self, node):  # noqa: N802
            self.found = True

        # Don't descend into scopes whose break/return can't end *this* loop.
        def visit_While(self, node):  # noqa: N802
            pass

        def visit_For(self, node):  # noqa: N802
            pass

        def visit_FunctionDef(self, node):  # noqa: N802
            pass

        def visit_AsyncFunctionDef(self, node):  # noqa: N802
            pass

    finder = _Finder()
    for statement in loop.body:
        if isinstance(statement, ast.Try):
            # The try body and else block only run to completion on
            # success — their break/return never fires under a
            # persistent fault, so they don't bound the retry.  A
            # ``finally`` break runs unconditionally and does.
            for part in statement.finalbody:
                finder.visit(part)
        else:
            finder.visit(statement)
    return finder.found


class UnboundedRetryRule(Rule):
    """RL008 — ``while True`` retry loops without an exit.

    Flags ``while True:`` (and ``while 1:``) loops that contain a
    ``try`` statement where no ``except`` handler raises, breaks or
    returns AND the loop body has no break/return of its own: the
    classic swallow-and-retry-forever.  Bound the retry with a ``for``
    over the budget and raise on exhaustion.
    """

    rule_id = "RL008"
    name = "unbounded-retry"
    summary = "retry loops must be bounded: no while-True around a swallowing try"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While) or not _is_while_true(node):
                continue
            tries = [s for s in node.body if isinstance(s, ast.Try)]
            if not tries:
                continue
            swallowing = any(
                not any(_handler_escapes(h) for h in t.handlers)
                for t in tries
                if t.handlers
            )
            if swallowing and not _loop_escapes(node):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "unbounded retry: while-True around a try whose "
                        "handlers never raise/break/return; bound it with "
                        "`for attempt in range(budget)` and raise on "
                        "exhaustion",
                    )
                )
        return findings
