"""RL007 — span discipline for the telemetry layer.

A span opened with ``open_span`` must be closed on every path, or the
span stack in :class:`repro.obs.telemetry.Telemetry` drifts and every
later span nests under a phantom parent.  The safe idioms are the
``span()``/``pass_span()``/``node_span()`` context managers (close in a
``finally``); manual ``open_span`` is legitimate only when a matching
close demonstrably runs.

The rule flags, per function (and at module level):

* an ``open_span`` call in a scope with no close call at all — the span
  can never be closed locally, so it leaks unless some other function
  cleans up (suppress with a justification when that is the design, as
  ``Telemetry.begin_run``/``end_run`` do);
* an ``open_span`` whose closes all sit inside conditional branches
  (``if``/``elif``/``else``) — the fall-through path leaks the span.

A "close call" is any call whose name mentions both ``close`` and
``span`` (``close_span``, ``_close_node_span``, …), so helpers that
close on the caller's behalf count.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return ""


def _is_open(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and _call_name(node) == "open_span"


def _is_close(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = _call_name(node).lower()
    return "close" in name and "span" in name


class SpanDisciplineRule(Rule):
    """RL007 — ``open_span`` without a close on all paths."""

    rule_id = "RL007"
    name = "span-discipline"
    summary = "every open_span needs an unconditional close path (or a context manager)"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for scope in self._scopes(ctx.tree):
            findings.extend(self._check_scope(ctx, scope))
        return findings

    def _scopes(self, tree: ast.Module) -> list[list[ast.stmt]]:
        """Module body plus every function body (nested included)."""
        scopes: list[list[ast.stmt]] = [tree.body]
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        return scopes

    def _check_scope(
        self, ctx: ModuleContext, body: list[ast.stmt]
    ) -> list[Finding]:
        opens: list[ast.Call] = []
        closes: list[ast.Call] = []
        conditional_closes: list[ast.Call] = []
        for stmt in body:
            for node in self._walk_scope(stmt):
                if _is_open(node):
                    opens.append(node)
                elif _is_close(node):
                    closes.append(node)
        if not opens:
            return []
        if not closes:
            return [
                self.finding(
                    ctx,
                    call,
                    "open_span without any close in this scope; close in "
                    "a finally or use the span() context managers",
                )
                for call in opens
            ]
        conditional_opens: list[ast.Call] = []
        for stmt in body:
            for node in self._conditional_subtrees(stmt):
                for inner in ast.walk(node):
                    if _is_close(inner):
                        conditional_closes.append(inner)
                    elif _is_open(inner):
                        conditional_opens.append(inner)
        unconditional_opens = [
            call
            for call in opens
            if not any(call is cond for cond in conditional_opens)
        ]
        unconditional_closes = [
            close
            for close in closes
            if not any(close is cond for cond in conditional_closes)
        ]
        if unconditional_opens and not unconditional_closes:
            # A conditional open may legitimately pair with a close on
            # the same branch; an unconditional open cannot.
            return [
                self.finding(
                    ctx,
                    unconditional_opens[0],
                    "every close for this open_span sits on a conditional "
                    "branch; the fall-through path leaks the span",
                )
            ]
        return []

    def _walk_scope(self, stmt: ast.stmt):
        """Walk one statement without descending into nested functions
        (they are separate scopes)."""
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        stack = [stmt]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                stack.append(child)

    def _conditional_subtrees(self, stmt: ast.stmt):
        """All ``if`` statements in the scope (nested functions excluded)."""
        for node in self._walk_scope(stmt):
            if isinstance(node, ast.If):
                yield node
