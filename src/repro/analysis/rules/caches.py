"""RL009 — unbounded caches.

The serving layer runs as a long-lived process; any cache without an
eviction bound is a slow memory leak driven by whatever the workload
happens to look like.  The repo's contract (see
:class:`repro.serve.cache.BoundedLRUCache`) is that every cache states
its bound explicitly:

* ``@functools.cache`` is unbounded by definition;
* ``@lru_cache(maxsize=None)`` is unbounded by request;
* ``@lru_cache`` / ``@lru_cache()`` without an explicit ``maxsize``
  silently inherits a default — on a serving hot path the bound is
  load-bearing configuration and must be written down;
* a module-level ``SOMETHING_CACHE = {}`` dict grows forever and, being
  module state, additionally leaks across what should be independent
  runs.

Function-local dict caches (scoped to one call) are fine and not
flagged.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule


def _dotted_name(node: ast.AST) -> str | None:
    """``functools.lru_cache`` → that string; bare names pass through."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted_name(node.value)
        return None if base is None else f"{base}.{node.attr}"
    return None


def _is_cache_name(name: str) -> bool:
    return "cache" in name.lower()


class UnboundedCacheRule(Rule):
    """RL009 — every cache must state an explicit, finite bound.

    Flags ``functools.cache``, ``lru_cache(maxsize=None)``, ``lru_cache``
    used without an explicit ``maxsize`` argument, and module-level dict
    literals assigned to cache-named variables.  Use
    :class:`repro.serve.cache.BoundedLRUCache` (or
    ``lru_cache(maxsize=N)``) instead.
    """

    rule_id = "RL009"
    name = "unbounded-cache"
    summary = "caches must declare a finite bound (no bare lru_cache, no module-level dict caches)"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for decorator in node.decorator_list:
                    findings.extend(self._check_decorator(ctx, decorator))
        findings.extend(self._check_module_dicts(ctx))
        findings.sort(key=lambda finding: (finding.line, finding.column))
        return findings

    # ------------------------------------------------------------------
    def _check_decorator(
        self, ctx: ModuleContext, decorator: ast.AST
    ) -> list[Finding]:
        callee = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = _dotted_name(callee)
        if name is None:
            return []
        short = name.rsplit(".", 1)[-1]
        if short == "cache" and name in ("cache", "functools.cache"):
            return [
                self.finding(
                    ctx,
                    decorator,
                    "functools.cache is unbounded; use "
                    "lru_cache(maxsize=N) or BoundedLRUCache",
                )
            ]
        if short != "lru_cache":
            return []
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "maxsize":
                    if (
                        isinstance(keyword.value, ast.Constant)
                        and keyword.value.value is None
                    ):
                        return [
                            self.finding(
                                ctx,
                                decorator,
                                "lru_cache(maxsize=None) is unbounded; "
                                "give the cache a finite maxsize",
                            )
                        ]
                    return []
            if decorator.args:
                # lru_cache(128): positional maxsize — bounded unless None.
                first = decorator.args[0]
                if isinstance(first, ast.Constant) and first.value is None:
                    return [
                        self.finding(
                            ctx,
                            decorator,
                            "lru_cache(None) is unbounded; give the "
                            "cache a finite maxsize",
                        )
                    ]
                return []
        return [
            self.finding(
                ctx,
                decorator,
                "lru_cache without an explicit maxsize hides the cache "
                "bound; state it: lru_cache(maxsize=N)",
            )
        ]

    def _check_module_dicts(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for statement in ctx.tree.body:
            targets: list[ast.expr]
            if isinstance(statement, ast.Assign):
                targets = statement.targets
                value = statement.value
            elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
                targets = [statement.target]
                value = statement.value
            else:
                continue
            is_empty_dict = isinstance(value, ast.Dict) and not value.keys
            is_dict_call = (
                isinstance(value, ast.Call)
                and _dotted_name(value.func) in ("dict", "collections.defaultdict", "defaultdict")
                and not value.args
                and not value.keywords
            ) or (
                isinstance(value, ast.Call)
                and _dotted_name(value.func) in ("collections.defaultdict", "defaultdict")
            )
            if not (is_empty_dict or is_dict_call):
                continue
            for target in targets:
                if isinstance(target, ast.Name) and _is_cache_name(target.id):
                    findings.append(
                        self.finding(
                            ctx,
                            statement,
                            f"module-level dict cache {target.id!r} grows "
                            "without bound; use BoundedLRUCache",
                        )
                    )
        return findings
