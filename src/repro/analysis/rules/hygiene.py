"""Hygiene rules: RL004 mutable defaults, RL005 overbroad excepts.

Both are classic Python footguns with a determinism angle here: a
mutable default is cross-run shared state, and a swallowing ``except``
can hide the very invariant violations the simulator is built to
surface.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: Constructors whose results are shared mutable state when used as a
#: parameter default.
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque", "OrderedDict"}
)

_BROAD_EXCEPTIONS = frozenset(
    {"Exception", "BaseException", "builtins.Exception", "builtins.BaseException"}
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name is not None and name.split(".")[-1] in _MUTABLE_CALLS
    return False


class MutableDefaultRule(Rule):
    """RL004 — mutable default arguments.

    The default is evaluated once at definition time and shared by
    every call — mutation leaks state across calls and across runs of
    anything that reuses the function object.  Use ``None`` plus an
    in-body fallback (the codebase's established idiom).
    """

    rule_id = "RL004"
    name = "mutable-default"
    summary = "no list/dict/set (or their constructors) as parameter defaults"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            args = node.args
            for default in list(args.defaults) + [
                d for d in args.kw_defaults if d is not None
            ]:
                if _is_mutable_default(default):
                    label = (
                        f"`{node.name}`"
                        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                        else "lambda"
                    )
                    findings.append(
                        self.finding(
                            ctx,
                            default,
                            f"mutable default argument in {label}; "
                            "use None and fill in the body",
                        )
                    )
        return findings


class BroadExceptRule(Rule):
    """RL005 — bare or overbroad ``except`` clauses.

    A bare ``except:`` (or ``except Exception``/``BaseException``
    without re-raising) swallows :class:`~repro.errors.ReproError`
    subclasses — including the simulator's invariant violations — and
    turns protocol bugs into silently wrong numbers.  Catch the
    specific error, or re-raise.
    """

    rule_id = "RL005"
    name = "broad-except"
    summary = "no bare except; no except Exception without re-raise"

    def check(self, ctx: ModuleContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(
                    self.finding(ctx, node, "bare `except:`; name the exception")
                )
                continue
            caught = dotted_name(node.type)
            if caught in _BROAD_EXCEPTIONS and not self._reraises(node):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"`except {caught}` without re-raise swallows "
                        "invariant violations; catch the specific error",
                    )
                )
        return findings

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(node, ast.Raise) for node in ast.walk(handler))
