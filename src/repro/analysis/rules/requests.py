"""RL010 — request-span close discipline on the serving path.

Request traces (:mod:`repro.obs.requests`) power the serve tier's SLO
accounting: a :class:`RequestContext` opened with ``begin_request`` (or
a raw ``open_span``) that never reaches ``finish_request`` /
``fail_request`` silently drops a request from the latency histograms
and the error-rate denominator — the SLO report lies.  The safe idioms
are the ``tracer.request()`` context manager and ``try``/``finally``.

Scoped to modules under ``repro.serve`` and ``repro.obs`` (the request
path); elsewhere RL007 already covers the telemetry span stack.  A
begin call is accepted when one of these demonstrably closes it:

* the call sits in a ``with`` item (a context manager owns the close);
* a later statement in the same (or an enclosing) suite closes
  unconditionally — a top-level ``finish_request``/``fail_request``/
  ``close_span``-family call, or a ``try`` whose ``finally`` closes;
* the call sits inside a ``try`` body whose ``finally`` closes.

Anything else — a close only in an ``except`` arm, only behind an
``if``, or in no local path at all — is flagged.  Hand-off designs
(e.g. a context that rides the batching queue to a worker that closes
it) are legitimate but must carry a ``# repro-lint: disable=RL010``
justification.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: Only the request path is in scope; the mining telemetry has RL007.
REQUEST_PACKAGES: tuple[str, ...] = ("repro.serve", "repro.obs")

#: Calls that open a request trace / span.
_BEGIN_NAMES = frozenset({"begin_request", "open_span"})

_NEW_SCOPE = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return ""


def _is_begin(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and _call_name(node) in _BEGIN_NAMES


def _is_closer(node: ast.AST) -> bool:
    """``finish_request`` / ``fail_request`` / ``close_span`` family —
    helpers count (``_close_node_span``, ``_finish_abandoned_request``)."""
    if not isinstance(node, ast.Call):
        return False
    name = _call_name(node).lower()
    verb = "finish" in name or "fail" in name or "close" in name
    noun = "request" in name or "span" in name
    return verb and noun


def _expression_nodes(stmt: ast.stmt):
    """The statement's own expression subtree: child statements (their
    suites are separate levels) and nested functions are not descended."""
    stack = [stmt]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.stmt, *_NEW_SCOPE)):
                continue
            stack.append(child)


def _with_guarded(stmt: ast.stmt) -> set[int]:
    """ids of nodes under a ``with`` item expression of ``stmt``."""
    guarded: set[int] = set()
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            for node in ast.walk(item.context_expr):
                guarded.add(id(node))
    return guarded


def _closes_in_finally(try_stmt: ast.Try) -> bool:
    return any(
        _is_closer(node)
        for stmt in try_stmt.finalbody
        for node in ast.walk(stmt)
    )


def _statement_closes(stmt: ast.stmt) -> bool:
    """Does this sibling unconditionally close?  Either a closer in its
    own expression subtree, or a ``try`` whose ``finally`` closes."""
    if isinstance(stmt, ast.Try) and _closes_in_finally(stmt):
        return True
    return any(_is_closer(node) for node in _expression_nodes(stmt))


class RequestSpanRule(Rule):
    """RL010 — request spans must close via context manager or finally."""

    rule_id = "RL010"
    name = "request-span-close"
    summary = (
        "begin_request/open_span on the serve path must close via a "
        "context manager, a finally, or an unconditional follow-up close"
    )

    def check(self, ctx: ModuleContext) -> list[Finding]:
        if not ctx.in_packages(REQUEST_PACKAGES):
            return []
        findings: list[Finding] = []
        self._visit_suite(ctx, ctx.tree.body, [], findings)
        return findings

    def _visit_suite(
        self,
        ctx: ModuleContext,
        suite: list[ast.stmt],
        ancestors: list[tuple[list[ast.stmt], int, str]],
        findings: list[Finding],
    ) -> None:
        """``ancestors`` is the path here, outermost first: each entry
        ``(suite, index, role)`` names a statement and the field of it
        (``body``/``orelse``/``finalbody``/``handler``) the next level
        occupies."""
        for index, stmt in enumerate(suite):
            guarded = _with_guarded(stmt)
            for node in _expression_nodes(stmt):
                if _is_begin(node) and id(node) not in guarded:
                    levels = ancestors + [(suite, index, "")]
                    if not _protected(levels):
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                f"{_call_name(node)} on the request path "
                                "without a guaranteed close: use the "
                                "request()/span() context managers or close "
                                "in a finally",
                            )
                        )
            if isinstance(stmt, _NEW_SCOPE[:2]):
                # New scope: close obligations cannot bubble past it.
                self._visit_suite(ctx, stmt.body, [], findings)
                continue
            for role in ("body", "orelse", "finalbody"):
                child_suite = getattr(stmt, role, None)
                if child_suite:
                    self._visit_suite(
                        ctx,
                        child_suite,
                        ancestors + [(suite, index, role)],
                        findings,
                    )
            for handler in getattr(stmt, "handlers", []) or []:
                self._visit_suite(
                    ctx,
                    handler.body,
                    ancestors + [(suite, index, "handler")],
                    findings,
                )


def _protected(levels: list[tuple[list[ast.stmt], int, str]]) -> bool:
    """Walk outward from the begin call's statement: a later sibling
    that unconditionally closes (at any enclosing level) or an enclosing
    ``try`` *body* whose ``finally`` closes protects the call."""
    for suite, index, role in reversed(levels):
        if any(_statement_closes(sibling) for sibling in suite[index + 1 :]):
            return True
        owner = suite[index]
        if (
            role == "body"
            and isinstance(owner, ast.Try)
            and _closes_in_finally(owner)
        ):
            return True
    return False
