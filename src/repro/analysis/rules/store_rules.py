"""RL011 — whole-store materialization.

:mod:`repro.store` exists so datasets larger than memory can be mined
from mmap-backed segments; one careless ``list(store)`` or
``store.to_list()`` silently re-creates the full in-memory database the
format was built to avoid, and nothing fails until the first dataset
that does not fit.  The contract is that production code *scans* stores
(iteration, :meth:`~repro.store.reader.TransactionStore.view`,
:class:`~repro.cluster.machine.Cluster.from_store`) and never
materializes them whole.

Flagged:

* ``anything.to_list()`` — ``to_list`` is the store family's explicit
  materialization escape hatch (:class:`TransactionStore`,
  :class:`StoreView`, :class:`ShmView`), documented as a test helper;
* ``list(...)`` / ``tuple(...)`` over a store-named operand (``store``,
  ``my_store``, ``self.store`` …) or directly over an
  ``open_store(...)`` / ``TransactionStore(...)`` call.

Test modules are exempt — equivalence tests compare store scans against
materialized rows by design — and deliberate baselines (e.g. the
``repro-bench scale`` RSS comparison) carry a justified inline
suppression.
"""

from __future__ import annotations

import ast

from repro.analysis.context import ModuleContext, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.rules.base import Rule

#: Constructors/openers whose result is a store, whoever names it.
_STORE_PRODUCERS = frozenset(
    {"open_store", "TransactionStore", "load_transactions_store"}
)

#: Builtins that materialize their iterable argument in full.
_MATERIALIZERS = frozenset({"list", "tuple"})


def _names_a_store(node: ast.expr) -> bool:
    """Does this operand *read* as a store? (name-based heuristic)."""
    name = dotted_name(node)
    if name is not None:
        return "store" in name.rsplit(".", 1)[-1].lower()
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        return (
            callee is not None
            and callee.rsplit(".", 1)[-1] in _STORE_PRODUCERS
        )
    return False


def _is_test_module(module: str) -> bool:
    last = module.rsplit(".", 1)[-1]
    return (
        module.startswith("tests")
        or last.startswith("test_")
        or last == "conftest"
    )


class StoreMaterializeRule(Rule):
    """RL011 — never materialize a whole transaction store in memory.

    Flags ``.to_list()`` calls and ``list()``/``tuple()`` over
    store-shaped operands outside test modules.  Scan the store instead
    (iterate it, take a ``view``, or build a cluster with
    ``Cluster.from_store``).
    """

    rule_id = "RL011"
    name = "store-materialize"
    summary = (
        "transaction stores are scanned, not materialized "
        "(no .to_list()/list(store) outside tests)"
    )

    def check(self, ctx: ModuleContext) -> list[Finding]:
        if _is_test_module(ctx.module):
            return []
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            finding = self._check_call(ctx, node)
            if finding is not None:
                findings.append(finding)
        findings.sort(key=lambda finding: (finding.line, finding.column))
        return findings

    # ------------------------------------------------------------------
    def _check_call(self, ctx: ModuleContext, node: ast.Call) -> Finding | None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "to_list"
            and not node.args
            and not node.keywords
        ):
            return self.finding(
                ctx,
                node,
                ".to_list() materializes the whole store; iterate it or "
                "take a .view() instead",
            )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _MATERIALIZERS
            and len(node.args) == 1
            and not node.keywords
            and _names_a_store(node.args[0])
        ):
            return self.finding(
                ctx,
                node,
                f"{node.func.id}() over a transaction store pulls every "
                "row into memory; scan the store instead",
            )
        return None
