"""Rule interface: every rule inspects one :class:`ModuleContext`."""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding


class Rule(ABC):
    """One lint rule.

    Attributes
    ----------
    rule_id:
        Stable identifier (``RL001`` … ``RL006``) used in output,
        ``--select``/``--ignore`` and suppression comments.
    name:
        Short kebab-case name for ``--list-rules``.
    summary:
        One-line description of what the rule enforces.
    """

    rule_id: str = "RL000"
    name: str = "abstract"
    summary: str = ""

    @abstractmethod
    def check(self, ctx: ModuleContext) -> list[Finding]:
        """All violations of this rule in one file."""

    def finding(self, ctx: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=self.rule_id,
            message=message,
        )
