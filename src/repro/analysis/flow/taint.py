"""Pass B — cross-function determinism taint analysis (RA001).

The per-file rule RL001 flags unordered iteration *at the iteration
site*, but only inside the order-critical packages and only when the
hazard is visible in one file.  This pass generalizes it: values whose
**order or identity originates from an unordered source** — set/dict
iteration, ``os.listdir``, ``id()``, ``hash()``, ``vars()`` — are
tracked through assignments, container builds, returns and calls, and
reported only where they reach an **emission sink**: ``network.send``
payloads, trace/event-sink writes, digest updates, serialized bytes
and ``NodeStats`` counters.

Two kinds of taint are distinguished, because their laundering differs:

* ``order`` — the *sequence order* of a value is not canonical
  (materialized set, dict built inside an unordered loop).  Laundered
  by ``sorted``/``set``/``frozenset``/``Counter`` and the commutative
  reducers (``sum``/``min``/``max``/``len``/``any``/``all``).
* ``value`` — the value itself differs across runs (``id()``,
  ``hash()`` under ``PYTHONHASHSEED``).  Survives arithmetic and
  reducers; only ``len`` drops it.

Elements drawn from an unordered iterable carry ``elem`` taint: using
one *inside* the loop is harmless (each iteration sees a well-defined
value) but appending elements to a list, emitting them, or letting the
last one escape the loop re-creates order dependence.

Function summaries (returns-tainted, param-to-return, param-to-sink,
returns-unordered) are computed to a fixpoint over the call graph, so
a helper that returns ``list(some_set)`` taints its callers, and an
argument that a callee forwards to ``network.send`` is flagged at the
call site — across modules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.context import dotted_name
from repro.analysis.findings import Finding
from repro.analysis.flow.symbols import FunctionInfo, ModuleInfo, Project

RULE_TAINT = "RA001"

#: Marker tuple layout: ("order"|"value"|"elem", reason, line) or
#: ("param", index, param_name).
Marker = tuple
Markers = frozenset

EMPTY: Markers = frozenset()

#: Builtins that erase order/elem taint (their result does not depend
#: on the argument's iteration order).  ``value`` taint survives all of
#: them except ``len``.
ORDER_LAUNDERERS = frozenset(
    {
        "sorted",
        "set",
        "frozenset",
        "sum",
        "min",
        "max",
        "any",
        "all",
        "len",
        "Counter",
    }
)

#: Calls whose result is order-tainted by construction.
ORDER_SOURCES = {
    "os.listdir": "os.listdir() order is filesystem-dependent",
    "os.scandir": "os.scandir() order is filesystem-dependent",
    "os.walk": "os.walk() order is filesystem-dependent",
    "vars": "vars() ordering follows the instance dict",
    "globals": "globals() ordering is definition-dependent",
    "locals": "locals() ordering is binding-dependent",
}

#: Calls whose result *value* is nondeterministic across runs.
VALUE_SOURCES = {
    "id": "id() is an address, different every run",
    "hash": "hash() depends on PYTHONHASHSEED for str/bytes/object keys",
    "object": "fresh object identity",
}

#: Builtins that materialize their argument's iteration order.
ORDER_PRESERVING_BUILTINS = frozenset(
    {"list", "tuple", "iter", "enumerate", "reversed", "next", "zip", "map", "filter"}
)

#: Known-mutating sequence methods used for append-detection.
APPEND_METHODS = frozenset({"append", "extend", "insert", "appendleft"})

#: Receiver-name fragments identifying emission sinks, method → which
#: part of the receiver's dotted path must match.
SINK_METHODS = {
    "send": ("network",),
    "record": ("trace",),
    "emit": ("sink", "telemetry"),
}


def _is_real(marker: Marker) -> bool:
    return marker[0] in ("order", "value", "elem")


def _reals(markers: Markers) -> Markers:
    return frozenset(m for m in markers if _is_real(m))


def _params(markers: Markers) -> Markers:
    return frozenset(m for m in markers if m[0] == "param")


def _drop_order(markers: Markers) -> Markers:
    """Keep value taint and param markers; erase order/elem taint."""
    return frozenset(m for m in markers if m[0] in ("value", "param"))


def _to_order(markers: Markers) -> Markers:
    """Re-label elem markers as order markers (list rebuilt from loop)."""
    return frozenset(
        ("order", m[1], m[2]) if m[0] == "elem" else m for m in markers
    )


def _to_elem(markers: Markers) -> Markers:
    """Re-label order markers as elem markers (loop target binding)."""
    return frozenset(
        ("elem", m[1], m[2]) if m[0] == "order" else m for m in markers
    )


def _describe(markers: Markers) -> str:
    reals = sorted(_reals(markers), key=lambda m: (m[2], m[1]))
    if not reals:
        return "unordered-origin value"
    kind, reason, line = reals[0]
    return f"{reason} (line {line})"


@dataclass
class FunctionSummary:
    """Interprocedural facts about one function."""

    #: Markers the return value always carries.
    return_markers: Markers = EMPTY
    #: Param indices whose taint flows into the return value.
    taint_params: frozenset[int] = frozenset()
    #: Param index → sink description, for params reaching a sink inside.
    sink_params: dict[int, str] = field(default_factory=dict)
    #: The function returns a set/frozenset/dict-view — iterating the
    #: result unsorted at a call site is an unordered source.
    returns_unordered: bool = False

    def key(self) -> tuple:
        return (
            tuple(sorted(self.return_markers)),
            tuple(sorted(self.taint_params)),
            tuple(sorted(self.sink_params.items())),
            self.returns_unordered,
        )


class _FunctionAnalysis:
    """One flow-sensitive walk over one function body."""

    def __init__(
        self,
        project: Project,
        module: ModuleInfo,
        function: FunctionInfo,
        summaries: dict[str, FunctionSummary],
        collect: bool,
    ):
        self.project = project
        self.module = module
        self.function = function
        self.summaries = summaries
        self.collect = collect
        self.ctx = function.ctx
        self.env: dict[str, Markers] = {}
        self.findings: dict[tuple, Finding] = {}
        self.summary = FunctionSummary()
        self._sink_params: dict[int, str] = {}
        self._return_markers: set[Marker] = set()
        self._returns_unordered = False
        #: Stack of order-marker sets for enclosing unordered loops.
        self._loop_order: list[Markers] = []
        self._cond_depth = 0
        #: Names locally bound to syntactic sets / unordered calls.
        self._set_names: set[str] = set()
        #: Names bound from hashlib constructors (digest objects).
        self._digest_names: set[str] = set()
        #: Names initialized from numeric literals (commutative
        #: accumulators — `total = 0` then `total += x`).
        self._numeric_names: set[str] = set()
        params = function.param_names()
        for index, name in enumerate(params):
            self.env[name] = frozenset({("param", index, name)})
        self._prescan()

    # ------------------------------------------------------------------
    # Pre-scan: set-typed locals, digest objects, numeric accumulators
    # ------------------------------------------------------------------
    def _prescan(self) -> None:
        for node in ast.walk(self.function.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                target, value = node.target, node.value
            else:
                continue
            if not isinstance(target, ast.Name):
                continue
            if self.ctx.is_set_expr(value):
                self._set_names.add(target.id)
            elif isinstance(value, ast.Constant) and isinstance(
                value.value, (int, float)
            ):
                self._numeric_names.add(target.id)
            elif isinstance(value, ast.Call):
                resolved = self._resolve(value)
                if resolved is not None and resolved.startswith("hashlib."):
                    self._digest_names.add(target.id)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self) -> FunctionSummary:
        self._exec_block(self.function.node.body)
        self.summary.return_markers = _reals(frozenset(self._return_markers))
        self.summary.taint_params = frozenset(
            m[1] for m in self._return_markers if m[0] == "param"
        )
        self.summary.sink_params = dict(self._sink_params)
        self.summary.returns_unordered = self._returns_unordered
        return self.summary

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _resolve(self, call: ast.Call) -> str | None:
        return self.project.resolve_call(self.module, call, enclosing=self.function)

    def _callee_summary(self, call: ast.Call) -> FunctionSummary | None:
        resolved = self._resolve(call)
        if resolved is None:
            return None
        return self.summaries.get(resolved)

    def _is_unordered_expr(self, node: ast.AST) -> bool:
        """Does iterating ``node`` yield elements in non-canonical order?"""
        if self.ctx.is_unordered(node):
            return True
        if isinstance(node, ast.Name) and node.id in self._set_names:
            return True
        if isinstance(node, ast.Call):
            summary = self._callee_summary(node)
            if summary is not None and summary.returns_unordered:
                return True
            resolved = self._resolve(node)
            if resolved in ORDER_SOURCES:
                return True
        return False

    def _report(self, node: ast.AST, message: str) -> None:
        if not self.collect:
            return
        finding = Finding(
            path=self.ctx.display_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            rule=RULE_TAINT,
            message=message,
        )
        self.findings[(finding.line, finding.column, finding.message)] = finding

    def _sink_hit(self, node: ast.AST, markers: Markers, sink: str) -> None:
        """A value reached a sink: report real taint, record param taint."""
        reals = _reals(markers)
        if reals:
            self._report(
                node,
                f"unordered-origin value reaches {sink}: {_describe(reals)}; "
                "canonicalize with sorted(...) before emission",
            )
        for marker in _params(markers):
            self._sink_params.setdefault(marker[1], sink)

    # ------------------------------------------------------------------
    # Expression evaluation
    # ------------------------------------------------------------------
    def _eval(self, node: ast.AST | None) -> Markers:
        if node is None:
            return EMPTY
        if isinstance(node, ast.Name):
            return self.env.get(node.id, EMPTY)
        if isinstance(node, ast.Constant):
            return EMPTY
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            return self._eval(node.value)
        if isinstance(node, ast.Subscript):
            return self._eval(node.value) | self._eval(node.slice)
        if isinstance(node, (ast.BinOp,)):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.BoolOp):
            out: Markers = EMPTY
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            # Comparison results are booleans: membership and equality
            # launder both order and value taint.
            self._eval(node.left)
            for comparator in node.comparators:
                self._eval(comparator)
            return EMPTY
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, (ast.List, ast.Tuple)):
            out = EMPTY
            for elt in node.elts:
                out |= _to_order(self._eval(elt))
            return out
        if isinstance(node, ast.Set):
            out = EMPTY
            for elt in node.elts:
                out |= _drop_order(self._eval(elt))
            return out
        if isinstance(node, ast.Dict):
            out = EMPTY
            for key in node.keys:
                out |= self._eval(key)
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return self._eval_comprehension(node, launder_order=False)
        if isinstance(node, ast.SetComp):
            return self._eval_comprehension(node, launder_order=True)
        if isinstance(node, ast.DictComp):
            return self._eval_comprehension(node, launder_order=False)
        if isinstance(node, ast.JoinedStr):
            out = EMPTY
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            markers = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = markers
            return markers
        if isinstance(node, ast.Slice):
            return self._eval(node.lower) | self._eval(node.upper) | self._eval(node.step)
        if isinstance(node, ast.Lambda):
            return EMPTY
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        return EMPTY

    def _eval_comprehension(self, node: ast.AST, launder_order: bool) -> Markers:
        out: Markers = EMPTY
        unordered_reason: Marker | None = None
        for generator in node.generators:
            iter_markers = self._eval(generator.iter)
            if self._is_unordered_expr(generator.iter):
                unordered_reason = (
                    "order",
                    "comprehension over set/dict-view iteration",
                    getattr(generator.iter, "lineno", 1),
                )
            elements = _to_elem(iter_markers)
            for name_node in ast.walk(generator.target):
                if isinstance(name_node, ast.Name):
                    self.env[name_node.id] = elements
            out |= iter_markers
            for cond in generator.ifs:
                self._eval(cond)
        if isinstance(node, ast.DictComp):
            out |= self._eval(node.key) | self._eval(node.value)
        else:
            out |= self._eval(node.elt)
        out = _to_order(out)
        if unordered_reason is not None:
            out |= frozenset({unordered_reason})
        if launder_order:
            out = _drop_order(out)
        return out

    # ------------------------------------------------------------------
    # Calls: sources, launderers, summaries, sinks
    # ------------------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> Markers:
        arg_nodes = list(node.args) + [kw.value for kw in node.keywords]
        arg_markers = [self._eval(arg) for arg in arg_nodes]
        combined: Markers = EMPTY
        for markers in arg_markers:
            combined |= markers

        self._check_sink_call(node, arg_nodes, arg_markers)

        resolved = self._resolve(node)
        func_name = (
            node.func.id if isinstance(node.func, ast.Name) else None
        )

        if resolved in ORDER_SOURCES or func_name in ORDER_SOURCES:
            reason = ORDER_SOURCES.get(resolved) or ORDER_SOURCES[func_name]
            return combined | frozenset({("order", reason, node.lineno)})
        if resolved in VALUE_SOURCES or func_name in VALUE_SOURCES:
            reason = VALUE_SOURCES.get(resolved) or VALUE_SOURCES[func_name]
            return combined | frozenset({("value", reason, node.lineno)})

        if func_name in ORDER_LAUNDERERS:
            if func_name == "len":
                return EMPTY
            return _drop_order(combined)

        if func_name in ORDER_PRESERVING_BUILTINS:
            out = combined
            for arg, markers in zip(arg_nodes, arg_markers):
                if self._is_unordered_expr(arg):
                    out |= frozenset(
                        {
                            (
                                "order",
                                "set/dict-view iteration order materialized "
                                f"by {func_name}()",
                                node.lineno,
                            )
                        }
                    )
            return out

        summary = self._callee_summary(node)
        if summary is not None:
            out = frozenset(summary.return_markers)
            positions = self._positional_markers(node, arg_nodes, arg_markers, summary)
            out |= positions
            return out

        # Method call on a tainted receiver (slice/copy/pop/...): the
        # result inherits the receiver's taint.  Unresolved free calls
        # propagate their arguments' taint.
        if isinstance(node.func, ast.Attribute):
            receiver = self._eval(node.func.value)
            if (
                node.func.attr == "pop"
                and not node.args
                and self._is_unordered_expr(node.func.value)
            ):
                combined |= frozenset(
                    {("value", "set.pop() returns an arbitrary element", node.lineno)}
                )
            return combined | receiver
        return combined

    def _positional_markers(
        self,
        node: ast.Call,
        arg_nodes: list[ast.AST],
        arg_markers: list[Markers],
        summary: FunctionSummary,
    ) -> Markers:
        """Apply a callee summary at a call site (params by position)."""
        out: Markers = EMPTY
        offset = 0
        if isinstance(node.func, ast.Attribute) and isinstance(
            node.func.value, ast.Name
        ):
            if node.func.value.id in ("self", "cls"):
                offset = 1  # positional args start at parameter 1
        resolved_kw = {kw.arg: i for i, kw in enumerate(node.keywords) if kw.arg}
        for position, markers in enumerate(arg_markers):
            if position < len(node.args):
                param_index = position + offset
            else:
                param_index = None  # keyword args: matched below by name
            if param_index is not None and param_index in summary.taint_params:
                out |= markers
            if param_index is not None and param_index in summary.sink_params:
                sink = summary.sink_params[param_index]
                self._sink_hit(arg_nodes[position], markers, f"{sink} (via callee)")
        # Keyword arguments: conservative — if the callee sinks or
        # returns any param, propagate/flag matching keyword taint too.
        if resolved_kw and (summary.taint_params or summary.sink_params):
            for kw in node.keywords:
                markers = self._eval(kw.value)
                if summary.taint_params:
                    out |= markers
                if summary.sink_params and _reals(markers):
                    sink = sorted(summary.sink_params.values())[0]
                    self._sink_hit(kw.value, markers, f"{sink} (via callee)")
        return out

    def _check_sink_call(
        self,
        node: ast.Call,
        arg_nodes: list[ast.AST],
        arg_markers: list[Markers],
    ) -> None:
        sink = self._sink_name(node)
        if sink is None:
            return
        for arg, markers in zip(arg_nodes, arg_markers):
            self._sink_hit(arg, markers, sink)
        # Emitting anything *inside* a loop whose order is unordered
        # makes the emission sequence non-canonical even with clean
        # payloads — the cross-function form of RL001's send check.
        if self._loop_order:
            loop_markers = self._loop_order[-1]
            if _reals(loop_markers):
                self._report(
                    node,
                    f"{sink} emitted inside a loop over an unordered "
                    f"iterable ({_describe(loop_markers)}); emission order "
                    "must be canonical — iterate sorted(...)",
                )
            for marker in _params(loop_markers):
                self._sink_params.setdefault(marker[1], sink)

    def _sink_name(self, node: ast.Call) -> str | None:
        if not isinstance(node.func, ast.Attribute):
            resolved = self._resolve(node)
            if resolved == "json.dumps":
                return "serialized bytes (json.dumps)"
            if resolved is not None and resolved.startswith("hashlib."):
                return "digest input"
            return None
        attr = node.func.attr
        receiver = dotted_name(node.func.value)
        receiver_parts = receiver.split(".") if receiver else []
        if attr in SINK_METHODS and any(
            fragment in part
            for part in receiver_parts
            for fragment in SINK_METHODS[attr]
        ):
            target = {"send": "network.send payload", "record": "trace record",
                      "emit": "event-sink record"}[attr]
            return target
        if attr == "update" and receiver in self._digest_names:
            return "digest input"
        resolved = self._resolve(node)
        if resolved == "json.dumps":
            return "serialized bytes (json.dumps)"
        if resolved is not None and resolved.startswith("hashlib."):
            return "digest input"
        return None

    # ------------------------------------------------------------------
    # Statement execution
    # ------------------------------------------------------------------
    def _exec_block(self, body: list[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _bind_target(self, target: ast.AST, markers: Markers) -> None:
        if isinstance(target, ast.Name):
            # Heuristic launder: an `if`-guarded assignment of a loop
            # *element* is almost always a reduce (max/min/first-match);
            # the chosen value is order-independent enough not to flag.
            if self._cond_depth and markers and all(
                m[0] == "elem" for m in markers
            ):
                self.env[target.id] = EMPTY
                return
            self.env[target.id] = markers
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_target(elt, markers)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, markers)
        elif isinstance(target, ast.Subscript):
            self._store_into(target.value, markers)
        elif isinstance(target, ast.Attribute):
            self._check_stats_sink(target, markers)
            self._store_into(target.value, markers)

    def _store_into(self, base: ast.AST, markers: Markers) -> None:
        """Storing a tainted value into a container taints the container."""
        incoming = _to_order(markers)
        if self._loop_order:
            incoming |= _reals(self._loop_order[-1]) | _params(self._loop_order[-1])
        if not incoming:
            return
        if isinstance(base, ast.Name):
            self.env[base.id] = self.env.get(base.id, EMPTY) | incoming

    def _check_stats_sink(self, target: ast.Attribute, markers: Markers) -> None:
        base = dotted_name(target.value)
        if base is None:
            return
        if any("stats" in part for part in base.split(".")):
            self._sink_hit(target, markers, f"NodeStats counter `{base}.{target.attr}`")

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            markers = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind_target(target, markers)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind_target(stmt.target, self._eval(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            markers = self._eval(stmt.value)
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id in self._numeric_names
            ):
                # Commutative numeric accumulator: order taint launders,
                # value taint survives (a sum of hashes is still seeded).
                kept = _drop_order(markers)
                self.env[stmt.target.id] = (
                    self.env.get(stmt.target.id, EMPTY) | kept
                )
            elif isinstance(stmt.target, ast.Name):
                current = self.env.get(stmt.target.id, EMPTY)
                self.env[stmt.target.id] = current | _to_order(markers)
                if self._loop_order:
                    self.env[stmt.target.id] |= _reals(self._loop_order[-1])
            elif isinstance(stmt.target, ast.Attribute) and isinstance(
                stmt.op,
                (ast.Add, ast.Sub, ast.Mult, ast.BitOr, ast.BitAnd, ast.BitXor),
            ):
                # Commutative accumulation into an attribute (NodeStats
                # counters, byte tallies): the total is independent of
                # visit order, so order/elem taint launders — including
                # the enclosing loop's — while value taint (a sum of
                # id()s is still seed-dependent) survives.
                kept = _drop_order(markers)
                self._check_stats_sink(stmt.target, kept)
                if kept and isinstance(stmt.target.value, ast.Name):
                    name = stmt.target.value.id
                    self.env[name] = self.env.get(name, EMPTY) | kept
            else:
                self._bind_target(stmt.target, markers)
        elif isinstance(stmt, ast.For):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test)
            for _ in range(2):
                self._exec_block(stmt.body)
            self._exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            self._cond_depth += 1
            before = dict(self.env)
            self._exec_block(stmt.body)
            after_body = self.env
            self.env = before
            self._exec_block(stmt.orelse)
            for name in sorted(after_body):
                self.env[name] = self.env.get(name, EMPTY) | after_body[name]
            self._cond_depth -= 1
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body)
            self._cond_depth += 1
            for handler in stmt.handlers:
                self._exec_block(handler.body)
            self._cond_depth -= 1
            self._exec_block(stmt.orelse)
            self._exec_block(stmt.finalbody)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                markers = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, markers)
            self._exec_block(stmt.body)
        elif isinstance(stmt, ast.Return):
            markers = self._eval(stmt.value)
            self._return_markers.update(markers)
            if stmt.value is not None and self._is_unordered_expr(stmt.value):
                self._returns_unordered = True
            if isinstance(stmt.value, ast.Name) and stmt.value.id in self._set_names:
                self._returns_unordered = True
        elif isinstance(stmt, ast.Expr):
            self._exec_expr_stmt(stmt)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    self.env.pop(target.id, None)
        elif isinstance(stmt, (ast.Assert,)):
            self._eval(stmt.test)
        elif isinstance(stmt, ast.Raise):
            self._eval(stmt.exc)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child)
                elif isinstance(child, ast.stmt):
                    self._exec(child)

    def _exec_for(self, stmt: ast.For) -> None:
        iter_markers = self._eval(stmt.iter)
        unordered = self._is_unordered_expr(stmt.iter) or bool(
            _reals(iter_markers)
        )
        loop_markers: Markers = iter_markers
        if self._is_unordered_expr(stmt.iter):
            loop_markers |= frozenset(
                {
                    (
                        "order",
                        "iteration over set/dict-view",
                        getattr(stmt.iter, "lineno", stmt.lineno),
                    )
                }
            )
        if unordered:
            self._bind_target_elems(stmt.target, _to_elem(loop_markers))
            self._loop_order.append(loop_markers)
        else:
            self._bind_target_elems(stmt.target, _to_elem(iter_markers))
            self._loop_order.append(EMPTY)
        try:
            # Two rounds propagate loop-carried taint to a fixpoint for
            # the single-level dependencies this pass models.
            for _ in range(2):
                self._exec_block(stmt.body)
        finally:
            self._loop_order.pop()
        self._exec_block(stmt.orelse)

    def _bind_target_elems(self, target: ast.AST, markers: Markers) -> None:
        for node in ast.walk(target):
            if isinstance(node, ast.Name):
                self.env[node.id] = markers

    def _exec_expr_stmt(self, stmt: ast.Expr) -> None:
        value = stmt.value
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Attribute)
            and value.func.attr in APPEND_METHODS
            and isinstance(value.func.value, ast.Name)
        ):
            receiver = value.func.value.id
            incoming: Markers = EMPTY
            for arg in value.args:
                incoming |= _to_order(self._eval(arg))
            # Appending per-iteration data inside an unordered loop
            # rebuilds the unordered order into the list.
            if self._loop_order and self._loop_order[-1]:
                incoming |= _reals(self._loop_order[-1]) | _params(
                    self._loop_order[-1]
                )
            if incoming:
                self.env[receiver] = self.env.get(receiver, EMPTY) | incoming
            self._check_sink_call(
                value, list(value.args), [self._eval(a) for a in value.args]
            )
            return
        if isinstance(value, (ast.Yield, ast.YieldFrom)):
            markers = self._eval(value.value)
            self._return_markers.update(markers)
            return
        self._eval(value)


def _sorted_functions(project: Project) -> list[FunctionInfo]:
    return [project.functions[name] for name in sorted(project.functions)]


def analyze_taint(project: Project) -> list[Finding]:
    """Run the determinism taint pass over the whole project."""
    summaries: dict[str, FunctionSummary] = {
        name: FunctionSummary() for name in project.functions
    }
    # Fixpoint over call-graph summaries (bounded; the summary lattice
    # only grows, so this terminates well before the cap).
    for _ in range(6):
        changed = False
        for function in _sorted_functions(project):
            module = project.modules.get(function.module)
            if module is None:
                continue
            analysis = _FunctionAnalysis(
                project, module, function, summaries, collect=False
            )
            summary = analysis.run()
            if summary.key() != summaries[function.qualname].key():
                summaries[function.qualname] = summary
                changed = True
        if not changed:
            break

    findings: dict[tuple, Finding] = {}
    for function in _sorted_functions(project):
        module = project.modules.get(function.module)
        if module is None:
            continue
        analysis = _FunctionAnalysis(
            project, module, function, summaries, collect=True
        )
        analysis.run()
        findings.update(analysis.findings)
    return sorted(findings.values())
