"""Pass D — miner protocol conformance (RA004 missing spec, RA005 violation).

Every parallel miner runs the cluster through the same bulk-synchronous
skeleton: ``begin_pass`` → scan (optionally ``send``) → receive
(optionally ``drain``) → ``finish_pass``.  The runtime invariants of
:mod:`repro.cluster.invariants` catch violations on executed paths; this
pass is the static twin — it checks *every* path, at review time.

Each concrete miner declares its per-pass state machine in a
``pass_protocol`` class attribute — a tuple of event tokens over the
alphabet ``begin_pass`` / ``send`` / ``drain`` / ``finish_pass``, each
optionally quantified (``"send*"`` = zero or more, ``"drain?"`` = at
most one, bare = exactly once)::

    class HPGM(ParallelMiner):
        pass_protocol = ("begin_pass", "send*", "drain*", "finish_pass")

The analyzer resolves each miner's ``_run_pass`` through the static
MRO (the duplication variants inherit H-HPGM's), extracts the ordered
sequence of protocol calls — a call inside a loop becomes a starred
event, a call under a conditional an optional one — and verifies that
the extracted pattern's *language* is contained in the declared spec's.
The shared ``_pass_one`` is checked once against the base class's
``pass1_protocol``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.context import dotted_name
from repro.analysis.findings import Finding
from repro.analysis.flow.symbols import ClassInfo, FunctionInfo, Project

RULE_MISSING = "RA004"
RULE_VIOLATION = "RA005"

#: The miner base class; subclasses of it are the checked population.
MINER_BASE = "repro.parallel.base.ParallelMiner"

EVENTS = ("begin_pass", "send", "drain", "finish_pass")
_LETTER = {"begin_pass": "b", "send": "s", "drain": "d", "finish_pass": "f"}

#: Receiver-path fragments identifying each protocol call.
_RECEIVERS = {
    "begin_pass": ("cluster",),
    "finish_pass": ("cluster",),
    "send": ("network",),
    "drain": ("network",),
}


@dataclass(frozen=True)
class Event:
    """One extracted protocol call: the token plus its multiplicity."""

    token: str
    #: "1" exactly once on every path, "*" inside a loop, "?" under a
    #: conditional (at most once per pass).
    quantifier: str
    line: int

    def render(self) -> str:
        return self.token + ("" if self.quantifier == "1" else self.quantifier)


def parse_spec(spec: tuple[str, ...]) -> list[tuple[str, str]] | None:
    """Validate and split a declared spec into (token, quantifier) pairs."""
    parsed: list[tuple[str, str]] = []
    for entry in spec:
        quantifier = "1"
        token = entry
        if entry.endswith("*") or entry.endswith("?"):
            token, quantifier = entry[:-1], entry[-1]
        if token not in EVENTS:
            return None
        parsed.append((token, quantifier))
    return parsed


def spec_regex(parsed: list[tuple[str, str]]) -> re.Pattern:
    pieces = []
    for token, quantifier in parsed:
        letter = _LETTER[token]
        pieces.append(letter if quantifier == "1" else f"{letter}{quantifier}")
    return re.compile("^" + "".join(pieces) + "$")


def conforms(events: list[Event], parsed_spec: list[tuple[str, str]]) -> bool:
    """Language inclusion: every realizable event sequence matches the spec.

    The extracted pattern is a sequence of atoms with quantifiers from
    ``{1, ?, *}``; its language is covered by enumerating 0/1/2
    repetitions per starred atom and 0/1 per optional atom (2 suffices:
    the spec side has no counting beyond "once").
    """
    pattern = spec_regex(parsed_spec)
    choices: list[tuple[str, ...]] = []
    for event in events:
        letter = _LETTER[event.token]
        if event.quantifier == "1":
            choices.append((letter,))
        elif event.quantifier == "?":
            choices.append(("", letter))
        else:
            choices.append(("", letter, letter * 2))
    total = 1
    for options in choices:
        total *= len(options)
        if total > 8192:  # more protocol calls than any real miner has
            return False
    strings = [""]
    for options in choices:
        strings = [prefix + option for prefix in strings for option in options]
    return all(pattern.match(string) for string in strings)


class _Extractor:
    """Collect protocol calls from a function body, in source order."""

    def __init__(self) -> None:
        self.events: list[Event] = []

    def extract(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[Event]:
        self._walk(node.body, loop_depth=0, cond_depth=0)
        return self.events

    def _walk(self, body: list[ast.stmt], loop_depth: int, cond_depth: int) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.For, ast.While)):
                self._scan_expr(getattr(stmt, "iter", None), loop_depth, cond_depth)
                self._scan_expr(getattr(stmt, "test", None), loop_depth, cond_depth)
                self._walk(stmt.body, loop_depth + 1, cond_depth)
                self._walk(stmt.orelse, loop_depth, cond_depth)
            elif isinstance(stmt, ast.If):
                self._scan_expr(stmt.test, loop_depth, cond_depth)
                self._walk(stmt.body, loop_depth, cond_depth + 1)
                self._walk(stmt.orelse, loop_depth, cond_depth + 1)
            elif isinstance(stmt, ast.Try):
                self._walk(stmt.body, loop_depth, cond_depth)
                for handler in stmt.handlers:
                    self._walk(handler.body, loop_depth, cond_depth + 1)
                self._walk(stmt.orelse, loop_depth, cond_depth)
                self._walk(stmt.finalbody, loop_depth, cond_depth)
            elif isinstance(stmt, ast.With):
                for item in stmt.items:
                    self._scan_expr(item.context_expr, loop_depth, cond_depth)
                self._walk(stmt.body, loop_depth, cond_depth)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            else:
                for child in ast.walk(stmt):
                    if isinstance(child, ast.Call):
                        self._record(child, loop_depth, cond_depth)

    def _scan_expr(self, node: ast.AST | None, loop_depth: int, cond_depth: int) -> None:
        if node is None:
            return
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._record(child, loop_depth, cond_depth)

    def _record(self, call: ast.Call, loop_depth: int, cond_depth: int) -> None:
        if not isinstance(call.func, ast.Attribute):
            return
        token = call.func.attr
        if token not in _RECEIVERS:
            return
        receiver = dotted_name(call.func.value)
        if receiver is None:
            return
        parts = receiver.split(".")
        if not any(
            fragment in part for part in parts for fragment in _RECEIVERS[token]
        ):
            return
        if loop_depth > 0:
            quantifier = "*"
        elif cond_depth > 0:
            quantifier = "?"
        else:
            quantifier = "1"
        self.events.append(Event(token=token, quantifier=quantifier, line=call.lineno))


def _miner_classes(project: Project) -> list[ClassInfo]:
    miners = []
    for qualname in sorted(project.classes):
        cls = project.classes[qualname]
        if qualname == MINER_BASE:
            continue
        if MINER_BASE in project.base_chain(cls):
            miners.append(cls)
    return miners


def _literal_spec(node: ast.expr) -> tuple[str, ...] | None:
    if not isinstance(node, ast.Tuple):
        return None
    spec = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        spec.append(elt.value)
    return tuple(spec)


def _check_sequence(
    cls: ClassInfo,
    method: FunctionInfo,
    spec_source: tuple[ClassInfo, ast.expr],
    attr_name: str,
    findings: list[Finding],
) -> None:
    spec_cls, spec_node = spec_source
    spec = _literal_spec(spec_node)
    parsed = parse_spec(spec) if spec is not None else None
    if parsed is None:
        findings.append(
            Finding(
                path=spec_cls.ctx.display_path,
                line=spec_node.lineno,
                column=spec_node.col_offset + 1,
                rule=RULE_MISSING,
                message=(
                    f"`{spec_cls.name}.{attr_name}` is not a literal tuple of "
                    f"protocol tokens over {'/'.join(EVENTS)} with optional "
                    "*/? quantifiers"
                ),
            )
        )
        return
    events = _Extractor().extract(method.node)
    if not conforms(events, parsed):
        extracted = " ".join(e.render() for e in events) or "<no protocol calls>"
        declared = " ".join(t + ("" if q == "1" else q) for t, q in parsed)
        findings.append(
            Finding(
                path=method.ctx.display_path,
                line=method.node.lineno,
                column=method.node.col_offset + 1,
                rule=RULE_VIOLATION,
                message=(
                    f"`{cls.name}` pass protocol violation: extracted "
                    f"sequence [{extracted}] does not conform to declared "
                    f"[{declared}] ({attr_name})"
                ),
            )
        )


def analyze_protocol(project: Project) -> tuple[list[Finding], list[str]]:
    """Validate every miner; returns (findings, checked miner names)."""
    findings: list[Finding] = []
    checked: list[str] = []
    seen_pass_one: set[str] = set()
    for cls in _miner_classes(project):
        checked.append(cls.name)
        spec_source = project.mro_attr(cls, "pass_protocol")
        run_pass = project.mro_method(cls, "_run_pass")
        if spec_source is None:
            findings.append(
                Finding(
                    path=cls.ctx.display_path,
                    line=cls.node.lineno,
                    column=cls.node.col_offset + 1,
                    rule=RULE_MISSING,
                    message=(
                        f"miner `{cls.name}` declares no `pass_protocol` "
                        "state machine; every miner must declare its "
                        "begin_pass/send/drain/finish_pass sequence"
                    ),
                )
            )
        elif run_pass is None:
            findings.append(
                Finding(
                    path=cls.ctx.display_path,
                    line=cls.node.lineno,
                    column=cls.node.col_offset + 1,
                    rule=RULE_MISSING,
                    message=(
                        f"miner `{cls.name}` has no resolvable `_run_pass` "
                        "to check its declared protocol against"
                    ),
                )
            )
        else:
            _check_sequence(cls, run_pass, spec_source, "pass_protocol", findings)

        # The shared pass-1 skeleton: checked once per defining class.
        pass_one = project.mro_method(cls, "_pass_one")
        pass1_spec = project.mro_attr(cls, "pass1_protocol")
        if pass_one is not None and pass1_spec is not None:
            key = pass_one.qualname
            if key not in seen_pass_one:
                seen_pass_one.add(key)
                _check_sequence(cls, pass_one, pass1_spec, "pass1_protocol", findings)
    unique = {
        (f.path, f.line, f.column, f.rule, f.message): f for f in findings
    }
    return sorted(unique.values()), sorted(set(checked))
