"""Analyzer orchestration: build the project, run the passes, filter.

``analyze_paths`` is the workhorse shared by the CLI and the tests: it
expands the given roots into a sorted file list, builds the Pass A
:class:`~repro.analysis.flow.symbols.Project`, runs the three checking
passes (filtered by ``--select``/``--ignore``), and applies inline
suppressions (marker ``# repro-analyze:``, same grammar as
``repro-lint``'s — see :mod:`repro.analysis.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.engine import Suppressions, iter_python_files
from repro.analysis.findings import Finding
from repro.analysis.flow.poolsafety import analyze_pool_safety
from repro.analysis.flow.protocol import analyze_protocol
from repro.analysis.flow.symbols import Project
from repro.analysis.flow.taint import analyze_taint

SUPPRESSION_MARKER = "repro-analyze"

#: Rule catalogue of the flow analyzer (id order; consumed by the CLI,
#: SARIF serializer and the docs table).
FLOW_RULES: list[dict] = [
    {
        "id": "RA000",
        "name": "syntax-error",
        "summary": "file does not parse (reported, never crashes the run)",
    },
    {
        "id": "RA001",
        "name": "determinism-taint",
        "summary": "unordered-origin value reaches an emission sink "
        "(send payload, trace/event record, digest, serialized bytes, "
        "NodeStats), tracked across function boundaries",
    },
    {
        "id": "RA002",
        "name": "pool-unpicklable",
        "summary": "callable crossing the process-pool boundary is not a "
        "module-level function (or raw executor use outside "
        "repro.perf.executor)",
    },
    {
        "id": "RA003",
        "name": "pool-impure",
        "summary": "pool worker (or a helper it reaches) touches "
        "module-level mutable state instead of its arguments",
    },
    {
        "id": "RA004",
        "name": "protocol-spec",
        "summary": "miner lacks a declared pass_protocol state machine "
        "(or the declaration is not a literal token tuple)",
    },
    {
        "id": "RA005",
        "name": "protocol-violation",
        "summary": "extracted begin_pass/send/drain/finish_pass sequence "
        "does not conform to the miner's declared state machine",
    },
]


def flow_rule_catalog() -> dict[str, dict]:
    """Rule id → metadata dict."""
    return {rule["id"]: rule for rule in FLOW_RULES}


@dataclass
class AnalysisResult:
    """Outcome of one whole-program analysis."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0
    #: Paper-algorithm classes validated by the protocol pass.
    miners_checked: list[str] = field(default_factory=list)
    #: Executor-boundary call sites seen by the pool-safety pass.
    boundaries_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _enabled(rule_id: str, select: set[str] | None, ignore: set[str] | None) -> bool:
    if select is not None and rule_id not in select:
        return False
    if ignore is not None and rule_id in ignore:
        return False
    return True


def analyze_paths(
    paths: list[Path],
    select: set[str] | None = None,
    ignore: set[str] | None = None,
    display_root: Path | None = None,
) -> AnalysisResult:
    """Analyze files and directories; the CLI's workhorse.

    Parameters
    ----------
    paths:
        Files or directories; expanded, sorted and de-duplicated.
    select / ignore:
        Rule-id filters (already validated by the caller).
    display_root:
        When given, finding paths are rendered relative to it (the CLI
        passes the current directory so output is location-independent).
    """
    files = iter_python_files(paths)
    display_paths: dict[Path, str] = {}
    if display_root is not None:
        for file_path in files:
            try:
                display_paths[file_path] = str(
                    file_path.resolve().relative_to(display_root.resolve())
                )
            except ValueError:
                display_paths[file_path] = str(file_path)

    project = Project.build(files, display_paths=display_paths)
    result = AnalysisResult(files_checked=len(files))

    raw: list[Finding] = []
    if _enabled("RA000", select, ignore):
        for shown in sorted(project.parse_errors):
            error = project.parse_errors[shown]
            raw.append(
                Finding(
                    path=shown,
                    line=error.lineno or 1,
                    column=(error.offset or 0) + 1,
                    rule="RA000",
                    message=f"file does not parse: {error.msg}",
                )
            )

    if _enabled("RA001", select, ignore):
        raw.extend(analyze_taint(project))

    if _enabled("RA002", select, ignore) or _enabled("RA003", select, ignore):
        pool_findings, boundaries = analyze_pool_safety(project)
        raw.extend(
            f for f in pool_findings if _enabled(f.rule, select, ignore)
        )
        result.boundaries_checked = boundaries

    if _enabled("RA004", select, ignore) or _enabled("RA005", select, ignore):
        protocol_findings, miners = analyze_protocol(project)
        raw.extend(
            f for f in protocol_findings if _enabled(f.rule, select, ignore)
        )
        result.miners_checked = miners

    # Inline suppressions, per file (same grammar as repro-lint, marker
    # ``# repro-analyze:``).
    suppressions: dict[str, Suppressions] = {}
    for module_name in project.modules:
        module = project.modules[module_name]
        suppressions[module.ctx.display_path] = Suppressions.parse(
            module.ctx.lines, marker=SUPPRESSION_MARKER
        )
    kept: list[Finding] = []
    for finding in raw:
        supp = suppressions.get(finding.path)
        if supp is not None and not supp.allows(finding):
            result.suppressed += 1
        else:
            kept.append(finding)
    result.findings = sorted(set(kept))
    return result
