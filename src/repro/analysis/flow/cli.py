"""``repro-analyze`` — the whole-program flow analyzer CLI.

Usage::

    repro-analyze src/repro                       # human-readable report
    repro-analyze src/ --format json              # machine-readable (CI)
    repro-analyze src/ --format sarif             # GitHub code scanning
    repro-analyze src/ --baseline analysis-baseline.json
    repro-analyze src/ --write-baseline analysis-baseline.json
    repro-analyze --list-rules                    # rule catalogue

Exit codes: **0** clean (or all findings baselined), **1** new
findings, **2** bad invocation (unknown rule id, missing path,
malformed baseline) — distinct from "findings present" so CI can tell
a broken gate from a failing one.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.flow.baseline import (
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.flow.engine import (
    FLOW_RULES,
    AnalysisResult,
    analyze_paths,
    flow_rule_catalog,
)
from repro.analysis.sarif import render_sarif

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "whole-program dataflow analysis: determinism taint, "
            "process-pool safety, miner protocol conformance"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run exclusively (e.g. RA001,RA005)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="reviewed baseline; matching findings do not fail the run",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def _parse_rule_list(raw: str | None, known: set[str]) -> set[str] | None:
    if raw is None:
        return None
    rules = {piece.strip() for piece in raw.split(",") if piece.strip()}
    unknown = rules - known
    if unknown:
        raise SystemExit(
            f"repro-analyze: unknown rule id(s): {', '.join(sorted(unknown))} "
            f"(known: {', '.join(sorted(known))})"
        )
    return rules


def _render_text(
    result: AnalysisResult, baselined: int, stale: list[tuple[str, str, str]]
) -> str:
    lines = [finding.render() for finding in result.findings]
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"{len(result.findings)} {noun} in {result.files_checked} files "
        f"({result.suppressed} suppressed, {baselined} baselined); "
        f"{len(result.miners_checked)} miners, "
        f"{result.boundaries_checked} pool boundaries checked"
    )
    lines.append(summary)
    for path, rule, message in stale:
        lines.append(
            f"stale baseline entry: {path}: {rule} {message} (no longer occurs)"
        )
    return "\n".join(lines)


def _render_json(
    result: AnalysisResult, baselined: int, stale: list[tuple[str, str, str]]
) -> str:
    return json.dumps(
        {
            "version": 1,
            "findings": [finding.to_json() for finding in result.findings],
            "summary": {
                "baselined": baselined,
                "boundaries_checked": result.boundaries_checked,
                "files_checked": result.files_checked,
                "findings": len(result.findings),
                "miners_checked": result.miners_checked,
                "stale_baseline_entries": [
                    {"path": path, "rule": rule, "message": message}
                    for path, rule, message in stale
                ],
                "suppressed": result.suppressed,
            },
        },
        indent=2,
        sort_keys=True,
    )


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in FLOW_RULES:
            print(f"{rule['id']}  {rule['name']:<22} {rule['summary']}")
        return EXIT_CLEAN

    known = set(flow_rule_catalog())
    try:
        select = _parse_rule_list(args.select, known)
        ignore = _parse_rule_list(args.ignore, known)
    except SystemExit as error:
        print(error, file=sys.stderr)
        return EXIT_USAGE

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(
            f"repro-analyze: no such path: {', '.join(str(p) for p in missing)}",
            file=sys.stderr,
        )
        return EXIT_USAGE

    result = analyze_paths(
        paths, select=select, ignore=ignore, display_root=Path.cwd()
    )

    if args.write_baseline:
        write_baseline(Path(args.write_baseline), result.findings)
        print(
            f"repro-analyze: wrote {len(result.findings)} baseline entries "
            f"to {args.write_baseline}"
        )
        return EXIT_CLEAN

    baselined = 0
    stale: list[tuple[str, str, str]] = []
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except BaselineError as error:
            print(f"repro-analyze: {error}", file=sys.stderr)
            return EXIT_USAGE
        result.findings, baselined, stale = apply_baseline(
            result.findings, baseline
        )

    if args.format == "json":
        output = _render_json(result, baselined, stale)
    elif args.format == "sarif":
        output = render_sarif(result.findings, "repro-analyze", FLOW_RULES)
    else:
        output = _render_text(result, baselined, stale)
    print(output)
    return EXIT_CLEAN if result.clean else EXIT_FINDINGS


if __name__ == "__main__":
    sys.exit(main())
