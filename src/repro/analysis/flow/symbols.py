"""Pass A — project-wide symbol table and call graph.

A :class:`Project` is built once per ``repro-analyze`` run from every
file under the analyzed roots.  It records, per module: the import
alias table, module-level functions, classes (with their methods,
class-level assignments and base-class names resolved to dotted paths
where possible), and module-level bindings.  On top of that it exposes
the resolution queries the flow passes share:

* :meth:`Project.resolve_call` — best-effort mapping of a call site to
  the fully-qualified name of the callee (imported names, same-module
  functions, ``module.attr`` chains, ``self.method`` through the
  static MRO);
* :meth:`Project.mro_attr` / :meth:`Project.mro_method` — static
  attribute/method lookup through the declared base-class chain;
* :attr:`Project.calls` — the call graph (caller qualname → ordered
  callee qualnames), restricted to calls that resolve to functions
  defined inside the project.

Everything is deterministic: modules, functions and call edges are
stored and iterated in sorted order, so downstream passes emit
byte-identical findings regardless of ``PYTHONHASHSEED``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.context import ModuleContext, dotted_name


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    module: str
    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    ctx: ModuleContext
    class_name: str | None = None
    nesting: int = 0

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    @property
    def is_module_level(self) -> bool:
        return self.class_name is None and self.nesting == 0

    def param_names(self) -> list[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    """One class definition: methods, class attrs, declared bases."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    ctx: ModuleContext
    bases: list[str] = field(default_factory=list)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    class_attrs: dict[str, ast.expr] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One analyzed file."""

    name: str
    ctx: ModuleContext
    #: local alias → canonical dotted name, from ``import`` statements.
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level name → assignment value nodes (all assignments seen).
    bindings: dict[str, list[ast.AST]] = field(default_factory=dict)
    #: module-level names bound only by an import statement.
    import_names: set[str] = field(default_factory=set)


def module_imports(tree: ast.AST) -> dict[str, str]:
    """Local name → canonical dotted name for a module's imports."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


class Project:
    """Symbol table + call graph over a set of parsed modules."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        #: caller qualname → callee qualnames (project functions only),
        #: in call-site source order, de-duplicated.
        self.calls: dict[str, list[str]] = {}
        #: files that failed to parse: display path → SyntaxError.
        self.parse_errors: dict[str, SyntaxError] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, files: list[Path], display_paths: dict[Path, str] | None = None) -> "Project":
        project = cls()
        for path in sorted(files):
            shown = (display_paths or {}).get(path, str(path))
            source = path.read_text(encoding="utf-8")
            try:
                ctx = ModuleContext.build(path, source, display_path=shown)
            except SyntaxError as error:
                project.parse_errors[shown] = error
                continue
            project._index_module(ctx)
        project._link_calls()
        return project

    def _index_module(self, ctx: ModuleContext) -> None:
        info = ModuleInfo(name=ctx.module, ctx=ctx, imports=module_imports(ctx.tree))
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    info.import_names.add(local)
        self._index_body(info, ctx.tree.body, class_name=None, nesting=0)
        self.modules[info.name] = info

    def _index_body(
        self,
        info: ModuleInfo,
        body: list[ast.stmt],
        class_name: str | None,
        nesting: int,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = (
                    f"{info.name}.{class_name}.{stmt.name}"
                    if class_name
                    else f"{info.name}.{stmt.name}"
                )
                function = FunctionInfo(
                    qualname=qual,
                    module=info.name,
                    name=stmt.name,
                    node=stmt,
                    ctx=info.ctx,
                    class_name=class_name,
                    nesting=nesting,
                )
                if class_name is None and nesting == 0:
                    info.functions[stmt.name] = function
                if class_name is not None and nesting == 0:
                    self.classes[f"{info.name}.{class_name}"].methods[
                        stmt.name
                    ] = function
                self.functions[qual] = function
                # Nested defs are indexed too (pool safety needs to see
                # them as *unpicklable*), one nesting level deeper.
                self._index_body(
                    info, stmt.body, class_name=class_name, nesting=nesting + 1
                )
            elif isinstance(stmt, ast.ClassDef) and class_name is None and nesting == 0:
                cls_info = ClassInfo(
                    qualname=f"{info.name}.{stmt.name}",
                    module=info.name,
                    name=stmt.name,
                    node=stmt,
                    ctx=info.ctx,
                )
                for base in stmt.bases:
                    resolved = self._resolve_dotted(info, dotted_name(base))
                    if resolved is not None:
                        cls_info.bases.append(resolved)
                self.classes[cls_info.qualname] = cls_info
                info.classes[stmt.name] = cls_info
                for child in stmt.body:
                    if isinstance(child, ast.Assign) and len(child.targets) == 1:
                        target = child.targets[0]
                        if isinstance(target, ast.Name):
                            cls_info.class_attrs[target.id] = child.value
                    elif isinstance(child, ast.AnnAssign) and child.value is not None:
                        if isinstance(child.target, ast.Name):
                            cls_info.class_attrs[child.target.id] = child.value
                self._index_body(info, stmt.body, class_name=stmt.name, nesting=0)
            elif isinstance(stmt, ast.Assign):
                if class_name is None and nesting == 0:
                    for target in stmt.targets:
                        for name_node in ast.walk(target):
                            if isinstance(name_node, ast.Name):
                                info.bindings.setdefault(name_node.id, []).append(
                                    stmt.value
                                )
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    class_name is None
                    and nesting == 0
                    and isinstance(stmt.target, ast.Name)
                    and stmt.value is not None
                ):
                    info.bindings.setdefault(stmt.target.id, []).append(stmt.value)
            elif isinstance(stmt, (ast.If, ast.Try, ast.With)):
                # Conditional module-level code (try/except import guards,
                # platform branches) still defines module bindings.
                for inner in ast.iter_child_nodes(stmt):
                    if isinstance(inner, ast.stmt):
                        self._index_body(info, [inner], class_name, nesting)
                    elif isinstance(inner, (ast.ExceptHandler,)):
                        self._index_body(info, inner.body, class_name, nesting)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _resolve_dotted(self, info: ModuleInfo, dotted: str | None) -> str | None:
        """Canonicalize a dotted chain through the module's imports."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in info.imports:
            base = info.imports[head]
            return f"{base}.{rest}" if rest else base
        if head in info.functions or head in info.classes:
            resolved = f"{info.name}.{head}"
            return f"{resolved}.{rest}" if rest else resolved
        return None

    def resolve_name(self, module: ModuleInfo, name: str) -> str | None:
        """Canonical dotted name of a bare local name, if known."""
        return self._resolve_dotted(module, name)

    def resolve_call(
        self,
        module: ModuleInfo,
        call: ast.Call,
        enclosing: FunctionInfo | None = None,
    ) -> str | None:
        """Fully-qualified callee of a call site, where statically evident.

        Handles: bare names (same-module or imported), ``mod.attr``
        chains through import aliases, and ``self.method(...)`` through
        the enclosing class's static MRO.  Returns ``None`` for anything
        dynamic.
        """
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and enclosing is not None
            and enclosing.class_name is not None
        ):
            cls = self.classes.get(f"{enclosing.module}.{enclosing.class_name}")
            if cls is not None:
                method = self.mro_method(cls, func.attr)
                if method is not None:
                    return method.qualname
            return None
        return self._resolve_dotted(module, dotted_name(func))

    # ------------------------------------------------------------------
    # Class hierarchy
    # ------------------------------------------------------------------
    def mro(self, cls: ClassInfo) -> list[ClassInfo]:
        """The class plus its project-defined bases, depth-first."""
        chain: list[ClassInfo] = []
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            chain.append(current)
            for base in current.bases:
                base_cls = self.classes.get(base)
                if base_cls is not None:
                    stack.append(base_cls)
        return chain

    def mro_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        for klass in self.mro(cls):
            if name in klass.methods:
                return klass.methods[name]
        return None

    def mro_attr(self, cls: ClassInfo, name: str) -> tuple[ClassInfo, ast.expr] | None:
        """(defining class, value node) of a class attribute, through bases."""
        for klass in self.mro(cls):
            if name in klass.class_attrs:
                return klass, klass.class_attrs[name]
        return None

    def base_chain(self, cls: ClassInfo) -> set[str]:
        """All base qualnames, including ones outside the project."""
        names: set[str] = set()
        stack = [cls]
        seen: set[str] = set()
        while stack:
            current = stack.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            for base in current.bases:
                names.add(base)
                base_cls = self.classes.get(base)
                if base_cls is not None:
                    stack.append(base_cls)
        return names

    # ------------------------------------------------------------------
    # Call graph
    # ------------------------------------------------------------------
    def _link_calls(self) -> None:
        for qualname in sorted(self.functions):
            function = self.functions[qualname]
            module = self.modules.get(function.module)
            if module is None:
                continue
            callees: list[str] = []
            for node in ast.walk(function.node):
                if not isinstance(node, ast.Call):
                    continue
                resolved = self.resolve_call(module, node, enclosing=function)
                if resolved is None:
                    continue
                target = self.functions.get(resolved)
                if target is None:
                    # Constructor call: route to __init__ when defined.
                    cls = self.classes.get(resolved)
                    if cls is not None:
                        init = self.mro_method(cls, "__init__")
                        if init is not None:
                            target = init
                if target is not None and target.qualname not in callees:
                    callees.append(target.qualname)
            self.calls[qualname] = callees

    def reachable_from(self, qualname: str) -> list[str]:
        """Call-graph closure (project functions only), BFS order."""
        order: list[str] = []
        seen: set[str] = set()
        queue = [qualname]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            order.append(current)
            queue.extend(self.calls.get(current, []))
        return order
