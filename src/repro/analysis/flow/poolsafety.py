"""Pass C — process-pool safety (RA002 picklability, RA003 purity).

The ``repro.perf`` process backend ships callables across a
``ProcessPoolExecutor`` boundary through one sanctioned API,
:func:`repro.perf.executor.execute_per_node`.  The planned
shared-memory counting backend (ROADMAP) additionally requires every
worker to read only its arguments — a worker that consults or mutates
module-level state would silently diverge between the fork and spawn
start methods, and between processes sharing a memory segment.

For every call site whose callee resolves to ``execute_per_node`` (or
to ``ProcessPoolExecutor.map``/``submit`` outside the sanctioned
module), this pass verifies the worker argument:

* **RA002 (picklable)** — the worker must resolve to a *module-level*
  ``def``: lambdas, nested functions, bound methods and anything
  unresolvable fail pickling by reference on the spawn start method.
* **RA003 (pure)** — the worker, and every project function reachable
  from it through the call graph, must not use ``global``/``nonlocal``,
  must not rebind or mutate module-level bindings (``CACHE[x] = y``,
  ``STATE.append(...)``, attribute stores on module globals), and may
  read module-level names only when they are imports, functions,
  classes, ``UPPER_CASE`` constants, or single-assignment immutable
  literals (the ``try: import numpy`` guard pattern qualifies — the
  alias is bound once, by imports only).

Direct use of ``ProcessPoolExecutor``/``multiprocessing.Pool`` outside
``repro.perf.executor`` is itself an RA002 finding: all fan-out must go
through the sanctioned boundary so these guarantees stay checkable.
"""

from __future__ import annotations

import ast

from repro.analysis.context import dotted_name
from repro.analysis.findings import Finding
from repro.analysis.flow.symbols import FunctionInfo, ModuleInfo, Project

RULE_PICKLE = "RA002"
RULE_PURITY = "RA003"

#: The sanctioned boundary API; the second positional argument is the
#: worker callable.
BOUNDARY_CALLS = {
    "repro.perf.executor.execute_per_node": 1,
}

#: The one module allowed to touch the executor primitives directly.
SANCTIONED_MODULES = ("repro.perf.executor",)

#: Raw pool primitives that must not appear outside the boundary module.
RAW_POOL_TYPES = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.pool.Pool",
    }
)

#: Mutating method names on containers — a call to one of these on a
#: module-level binding is a shared-state write.
MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "add",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
        "sort",
        "reverse",
        "appendleft",
        "extendleft",
    }
)

#: Immutable literal types a single-assignment module constant may hold
#: and still be safely readable from a worker.
_IMMUTABLE_LITERALS = (int, float, str, bytes, bool, type(None), complex)


def _is_immutable_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, _IMMUTABLE_LITERALS)
    if isinstance(node, ast.Tuple):
        return all(_is_immutable_literal(elt) for elt in node.elts)
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        return callee in {"frozenset", "TypeVar"}
    if isinstance(node, ast.UnaryOp):
        return _is_immutable_literal(node.operand)
    return False


def _is_type_expression(node: ast.AST) -> bool:
    """``tuple[int, ...]``-style alias values: names, subscripts and
    unions of them, but no calls and no mutable displays."""
    allowed = (
        ast.Name,
        ast.Attribute,
        ast.Subscript,
        ast.Tuple,
        ast.BinOp,
        ast.BitOr,
        ast.Constant,
        ast.Load,
    )
    return all(isinstance(child, allowed) for child in ast.walk(node))


def _readable_module_name(module: ModuleInfo, name: str) -> bool:
    """May a pool worker read module-level ``name`` without risk?"""
    if name in module.import_names:
        return True
    if name in module.functions or name in module.classes:
        return True
    if name.isupper() or name.lstrip("_").isupper():
        return True
    values = module.bindings.get(name, [])
    if len(values) == 1 and (
        _is_immutable_literal(values[0]) or _is_type_expression(values[0])
    ):
        return True
    return False


class _WorkerChecker:
    """Purity checks over one function's body (one closure member)."""

    def __init__(self, project: Project, function: FunctionInfo):
        self.project = project
        self.function = function
        self.module = project.modules[function.module]
        self.findings: list[Finding] = []
        self._locals = self._local_names()

    @staticmethod
    def _binding_names(target: ast.AST):
        """Names a target *binds* — subscript/attribute stores mutate an
        existing object and bind nothing, so their base stays non-local."""
        if isinstance(target, ast.Name):
            yield target.id
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from _WorkerChecker._binding_names(elt)
        elif isinstance(target, ast.Starred):
            yield from _WorkerChecker._binding_names(target.value)

    def _local_names(self) -> set[str]:
        names = set(self.function.param_names())
        for node in ast.walk(self.function.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    names.update(self._binding_names(target))
            elif isinstance(node, (ast.For,)):
                names.update(self._binding_names(node.target))
            elif isinstance(node, ast.withitem) and node.optional_vars is not None:
                names.update(self._binding_names(node.optional_vars))
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    names.update(self._binding_names(generator.target))
            elif isinstance(node, ast.ExceptHandler) and node.name:
                names.add(node.name)
            elif isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                names.add(node.target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(node.name)
            elif isinstance(node, ast.Lambda):
                names.update(a.arg for a in node.args.args)
        return names

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                path=self.function.ctx.display_path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0) + 1,
                rule=rule,
                message=message,
            )
        )

    def check(self, worker_name: str) -> list[Finding]:
        where = (
            f"`{self.function.name}`"
            if self.function.qualname.endswith(worker_name)
            else f"`{self.function.name}` (reached from worker `{worker_name}`)"
        )
        for node in ast.walk(self.function.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                kind = "global" if isinstance(node, ast.Global) else "nonlocal"
                self._report(
                    node,
                    RULE_PURITY,
                    f"pool worker {where} declares `{kind} "
                    f"{', '.join(node.names)}`; workers must be pure "
                    "functions of their arguments",
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    self._check_store(target, where)
            elif isinstance(node, ast.Call):
                self._check_mutating_call(node, where)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    self._check_store(target, where)
        return self.findings

    def _module_level_base(self, node: ast.AST) -> str | None:
        """The module-level name a store/mutation ultimately targets."""
        base = node
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            base = base.value
        if not isinstance(base, ast.Name):
            return None
        name = base.id
        if name in self._locals:
            return None
        if name in self.module.bindings or name in self.module.import_names:
            return name
        return None

    def _check_store(self, target: ast.AST, where: str) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            name = self._module_level_base(target)
            if name is not None:
                self._report(
                    target,
                    RULE_PURITY,
                    f"pool worker {where} mutates module-level state "
                    f"`{name}`; per-process copies diverge silently — pass "
                    "state through the task object instead",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._check_store(elt, where)

    def _check_mutating_call(self, node: ast.Call, where: str) -> None:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATING_METHODS
        ):
            return
        name = self._module_level_base(node.func.value)
        if name is not None:
            self._report(
                node,
                RULE_PURITY,
                f"pool worker {where} calls `.{node.func.attr}()` on "
                f"module-level `{name}`; workers must not mutate shared "
                "state",
            )

    def check_reads(self, worker_name: str) -> list[Finding]:
        where = (
            f"`{self.function.name}`"
            if self.function.qualname.endswith(worker_name)
            else f"`{self.function.name}` (reached from worker `{worker_name}`)"
        )
        reported: set[str] = set()
        for node in ast.walk(self.function.node):
            if not (isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)):
                continue
            name = node.id
            if name in self._locals or name in reported:
                continue
            if name not in self.module.bindings:
                continue  # builtin or import (imports are fine)
            if name in self.module.import_names:
                continue
            if _readable_module_name(self.module, name):
                continue
            reported.add(name)
            self._report(
                node,
                RULE_PURITY,
                f"pool worker {where} reads module-level mutable binding "
                f"`{name}`; only arguments, imports and immutable "
                "constants are visible across the process boundary",
            )
        return self.findings


def _boundary_sites(
    project: Project,
) -> list[tuple[ModuleInfo, FunctionInfo | None, ast.Call, ast.AST]]:
    """All call sites handing a callable across the pool boundary."""
    sites = []
    for module_name in sorted(project.modules):
        module = project.modules[module_name]
        # Keyed by node identity (AST nodes hash by identity); the map is
        # only probed, never iterated, so ordering cannot leak out.
        enclosing_of: dict[ast.AST, FunctionInfo] = {}
        for qualname in sorted(project.functions):
            function = project.functions[qualname]
            if function.module != module_name:
                continue
            for node in ast.walk(function.node):
                enclosing_of.setdefault(node, function)
        for node in ast.walk(module.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            enclosing = enclosing_of.get(node)
            resolved = project.resolve_call(module, node, enclosing=enclosing)
            if resolved in BOUNDARY_CALLS:
                position = BOUNDARY_CALLS[resolved]
                worker_node: ast.AST | None = None
                if len(node.args) > position:
                    worker_node = node.args[position]
                else:
                    for kw in node.keywords:
                        if kw.arg == "worker":
                            worker_node = kw.value
                if worker_node is not None:
                    sites.append((module, enclosing, node, worker_node))
    return sites


def _resolve_worker(
    project: Project,
    module: ModuleInfo,
    enclosing: FunctionInfo | None,
    worker_node: ast.AST,
) -> FunctionInfo | None:
    dotted = dotted_name(worker_node)
    if dotted is None:
        return None
    resolved = project._resolve_dotted(module, dotted)
    if resolved is None and enclosing is not None:
        # A name defined in the enclosing function (nested def).
        nested = project.functions.get(f"{enclosing.module}.{dotted}")
        if nested is not None:
            return nested
    if resolved is None:
        return None
    return project.functions.get(resolved)


def _raw_pool_findings(project: Project) -> list[Finding]:
    findings = []
    for module_name in sorted(project.modules):
        module = project.modules[module_name]
        if any(
            module_name == allowed or module_name.startswith(allowed + ".")
            for allowed in SANCTIONED_MODULES
        ):
            continue
        for node in ast.walk(module.ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = project._resolve_dotted(module, dotted_name(node.func))
            if resolved in RAW_POOL_TYPES:
                findings.append(
                    Finding(
                        path=module.ctx.display_path,
                        line=node.lineno,
                        column=node.col_offset + 1,
                        rule=RULE_PICKLE,
                        message=(
                            f"direct `{resolved.rsplit('.', 1)[-1]}` use "
                            "outside repro.perf.executor; route fan-out "
                            "through execute_per_node so workers stay "
                            "statically checkable"
                        ),
                    )
                )
    return findings


def analyze_pool_safety(project: Project) -> tuple[list[Finding], int]:
    """Check every executor-boundary callable; returns (findings, sites)."""
    findings: list[Finding] = list(_raw_pool_findings(project))
    sites = _boundary_sites(project)
    checked_workers: set[str] = set()
    for module, enclosing, call, worker_node in sites:
        if isinstance(worker_node, ast.Lambda):
            findings.append(
                Finding(
                    path=module.ctx.display_path,
                    line=worker_node.lineno,
                    column=worker_node.col_offset + 1,
                    rule=RULE_PICKLE,
                    message=(
                        "lambda crosses the process-pool boundary; lambdas "
                        "cannot be pickled — use a module-level function"
                    ),
                )
            )
            continue
        worker = _resolve_worker(project, module, enclosing, worker_node)
        if worker is None:
            findings.append(
                Finding(
                    path=module.ctx.display_path,
                    line=getattr(worker_node, "lineno", call.lineno),
                    column=getattr(worker_node, "col_offset", call.col_offset) + 1,
                    rule=RULE_PICKLE,
                    message=(
                        "worker callable does not resolve to a project "
                        "function; only module-level functions pickle by "
                        "reference across the pool boundary"
                    ),
                )
            )
            continue
        if not worker.is_module_level:
            shape = (
                "method" if worker.is_method else "nested function"
            )
            findings.append(
                Finding(
                    path=module.ctx.display_path,
                    line=getattr(worker_node, "lineno", call.lineno),
                    column=getattr(worker_node, "col_offset", call.col_offset) + 1,
                    rule=RULE_PICKLE,
                    message=(
                        f"worker `{worker.name}` is a {shape}; it closes "
                        "over enclosing state and cannot be pickled — "
                        "hoist it to module level and pass state through "
                        "the task object"
                    ),
                )
            )
            continue
        if worker.qualname in checked_workers:
            continue
        checked_workers.add(worker.qualname)
        for qualname in project.reachable_from(worker.qualname):
            member = project.functions[qualname]
            if member.module not in project.modules:
                continue
            checker = _WorkerChecker(project, member)
            checker.check(worker.name)
            checker.check_reads(worker.name)
            findings.extend(checker.findings)
    # De-duplicate (several boundary sites may share helpers).
    unique = {
        (f.path, f.line, f.column, f.rule, f.message): f for f in findings
    }
    return sorted(unique.values()), len(sites)
