"""Whole-program flow analysis (``repro-analyze``).

Where :mod:`repro.analysis` lints one file at a time, this package
analyses the project as a unit:

* **Pass A** (:mod:`.symbols`) builds a project-wide symbol table and
  call graph;
* **Pass B** (:mod:`.taint`) is a flow-sensitive determinism taint
  analysis — unordered-origin values tracked across function
  boundaries to emission sinks;
* **Pass C** (:mod:`.poolsafety`) proves every callable crossing the
  ``ProcessPoolExecutor`` boundary picklable and free of shared-state
  access;
* **Pass D** (:mod:`.protocol`) checks each miner's extracted
  ``begin_pass``/``send``/``drain``/``finish_pass`` call sequence
  against its declared state machine.

Findings reuse :class:`repro.analysis.findings.Finding` and the
suppression machinery (marker ``# repro-analyze:``); output formats are
text, JSON and SARIF (:mod:`repro.analysis.sarif`).
"""

from __future__ import annotations

from repro.analysis.flow.engine import (
    FLOW_RULES,
    AnalysisResult,
    analyze_paths,
    flow_rule_catalog,
)
from repro.analysis.flow.symbols import Project

__all__ = [
    "FLOW_RULES",
    "AnalysisResult",
    "Project",
    "analyze_paths",
    "flow_rule_catalog",
]
