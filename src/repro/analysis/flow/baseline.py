"""Reviewed-baseline support for ``repro-analyze``.

A baseline is a JSON file of accepted findings.  Entries are matched by
``(path, rule, message)`` — deliberately *not* by line number, so
unrelated edits above a baselined finding do not un-baseline it.
Matching is multiset-style: one baseline entry absorbs one finding.

The CI gate runs ``repro-analyze src/ --baseline analysis-baseline.json``
and fails only on findings absent from the baseline; stale entries
(baselined findings that no longer occur) are reported so the file
shrinks over time instead of rotting.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file is unreadable or malformed."""


def _key(finding: Finding) -> tuple[str, str, str]:
    return (finding.path, finding.rule, finding.message)


def load_baseline(path: Path) -> Counter:
    """Parse a baseline file into a ``(path, rule, message) -> count`` map."""
    try:
        raw = json.loads(path.read_text(encoding="utf-8"))
    except OSError as error:
        raise BaselineError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: {error}") from error
    if not isinstance(raw, dict) or "findings" not in raw:
        raise BaselineError(f"baseline {path} lacks a 'findings' list")
    counts: Counter = Counter()
    for entry in raw["findings"]:
        try:
            counts[(entry["path"], entry["rule"], entry["message"])] += 1
        except (TypeError, KeyError) as error:
            raise BaselineError(
                f"baseline {path} entry missing path/rule/message: {entry!r}"
            ) from error
    return counts


def apply_baseline(
    findings: list[Finding], baseline: Counter
) -> tuple[list[Finding], int, list[tuple[str, str, str]]]:
    """Split findings into (new, baselined count, stale baseline keys)."""
    remaining = Counter(baseline)
    new: list[Finding] = []
    baselined = 0
    for finding in findings:
        key = _key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined += 1
        else:
            new.append(finding)
    stale = sorted(key for key, count in remaining.items() for _ in range(count))
    return new, baselined, stale


def write_baseline(path: Path, findings: list[Finding]) -> None:
    """Write the current findings as the reviewed baseline."""
    payload = {
        "version": BASELINE_VERSION,
        "tool": "repro-analyze",
        "findings": [
            {"path": f.path, "rule": f.rule, "message": f.message}
            for f in sorted(findings)
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
