"""GSP with classification hierarchy ([SA96]) — sequential counterpart
of Cumulate.

Pass structure mirrors Apriori: pass 1 finds the large items (ancestors
included); pass k generates candidate k-sequences (k = total items)
from the large (k-1)-sequences by the GSP join, prunes candidates with
an infrequent contiguous subsequence, and counts candidates against
ancestor-extended data sequences.  As in Cumulate, pass-2 candidates
whose single element pairs an item with its own ancestor are dropped
(their support equals the descendant element's).

Counting enumerates the distinct k-subsequences of each (extended,
universe-filtered) data sequence and probes the candidate table — the
same kernel the parallel HPSPM routes over the wire, so sequential and
parallel runs count identically by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.core.itemsets import minimum_count
from repro.errors import MiningError
from repro.sequences.model import (
    Element,
    Sequence,
    SequenceDatabase,
    extend_sequence,
    sequence_length,
)
from repro.taxonomy.hierarchy import Taxonomy
from repro.taxonomy.ops import AncestorIndex


@dataclass(frozen=True)
class SequencePassResult:
    """One GSP pass: k (items per sequence), candidates, large sequences."""

    k: int
    num_candidates: int
    large: dict[Sequence, int]

    @property
    def num_large(self) -> int:
        return len(self.large)


@dataclass(frozen=True)
class SequenceMiningResult:
    """Full outcome of a sequential-pattern mining run."""

    min_support: float
    num_sequences: int
    passes: list[SequencePassResult] = field(default_factory=list)

    def large_sequences(self, k: int | None = None) -> dict[Sequence, int]:
        if k is not None:
            for pass_result in self.passes:
                if pass_result.k == k:
                    return dict(pass_result.large)
            return {}
        merged: dict[Sequence, int] = {}
        for pass_result in self.passes:
            merged.update(pass_result.large)
        return merged

    @property
    def total_large(self) -> int:
        return sum(p.num_large for p in self.passes)

    @property
    def max_k(self) -> int:
        sizes = [p.k for p in self.passes if p.large]
        return max(sizes, default=0)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SequenceMiningResult):
            return NotImplemented
        return (
            self.min_support == other.min_support
            and self.num_sequences == other.num_sequences
            and self.large_sequences() == other.large_sequences()
        )

    def __repr__(self) -> str:
        per_pass = ", ".join(f"|L{p.k}|={p.num_large}" for p in self.passes)
        return (
            f"SequenceMiningResult(min_support={self.min_support}, "
            f"n={self.num_sequences}, {per_pass})"
        )


# ----------------------------------------------------------------------
# Candidate generation
# ----------------------------------------------------------------------
def _element_has_ancestor_pair(element: Element, taxonomy: Taxonomy) -> bool:
    members = set(element)
    for item in element:
        if item in taxonomy and members.intersection(taxonomy.ancestors(item)):
            return True
    return False


def candidate_2_sequences(
    large_items: list[int],
    taxonomy: Taxonomy | None = None,
) -> list[Sequence]:
    """All candidate 2-sequences from the large items ([SA96] pass 2).

    ``⟨{x}, {y}⟩`` for every ordered pair (repeats allowed — buying the
    same item twice is a pattern) and ``⟨{x, y}⟩`` for every unordered
    pair that does not pair an item with its own ancestor.
    """
    items = sorted(large_items)
    candidates: list[Sequence] = []
    for x in items:
        for y in items:
            candidates.append(((x,), (y,)))
    for x, y in combinations(items, 2):
        element = (x, y)
        if taxonomy is not None and _element_has_ancestor_pair(element, taxonomy):
            continue
        candidates.append((element,))
    return candidates


def drop_first_item(sequence: Sequence) -> Sequence:
    """The sequence minus the first item of its first element."""
    head = sequence[0][1:]
    if head:
        return (head,) + sequence[1:]
    return sequence[1:]


def drop_last_item(sequence: Sequence) -> Sequence:
    """The sequence minus the last item of its last element."""
    tail = sequence[-1][:-1]
    if tail:
        return sequence[:-1] + (tail,)
    return sequence[:-1]


def gsp_join(large_prev: set[Sequence], k: int) -> list[Sequence]:
    """The GSP join: merge sequences overlapping on k-2 items.

    ``s1`` joins ``s2`` when dropping s1's first item equals dropping
    s2's last item; the join appends s2's last item to s1 — as a new
    singleton element if it formed one in s2, otherwise into s1's last
    element.
    """
    by_head: dict[Sequence, list[Sequence]] = {}
    for sequence in large_prev:
        by_head.setdefault(drop_first_item(sequence), []).append(sequence)

    candidates: set[Sequence] = set()
    for s2 in large_prev:
        overlap = drop_last_item(s2)
        last_item = s2[-1][-1]
        last_was_singleton = len(s2[-1]) == 1
        for s1 in by_head.get(overlap, ()):
            if last_was_singleton:
                merged = s1 + ((last_item,),)
            else:
                if last_item <= s1[-1][-1]:
                    # Elements are sorted sets: the appended item must
                    # extend the last element strictly at its tail.
                    continue
                merged = s1[:-1] + (s1[-1] + (last_item,),)
            if sequence_length(merged) == k:
                candidates.add(merged)
    return sorted(candidates)


def contiguous_subsequences(sequence: Sequence) -> list[Sequence]:
    """Drop-one-item variants used by the GSP prune.

    An item may be dropped from the first element, the last element, or
    any element of size >= 2 (dropping a middle singleton would create
    a non-contiguous subsequence, whose support can legitimately be
    higher).
    """
    variants: list[Sequence] = []
    last = len(sequence) - 1
    for position, element in enumerate(sequence):
        if len(element) == 1 and position not in (0, last):
            continue
        for drop in range(len(element)):
            reduced = element[:drop] + element[drop + 1 :]
            if reduced:
                variants.append(
                    sequence[:position] + (reduced,) + sequence[position + 1 :]
                )
            else:
                variants.append(sequence[:position] + sequence[position + 1 :])
    return variants


def generate_candidate_sequences(
    large_prev: dict[Sequence, int] | set[Sequence],
    k: int,
    taxonomy: Taxonomy | None = None,
) -> list[Sequence]:
    """Join + contiguous-subsequence prune ([SA96])."""
    if k < 3:
        raise MiningError("generate_candidate_sequences handles k >= 3; use candidate_2_sequences")
    large_set = set(large_prev)
    joined = gsp_join(large_set, k)
    pruned = [
        candidate
        for candidate in joined
        if all(
            subsequence in large_set
            for subsequence in contiguous_subsequences(candidate)
        )
    ]
    return pruned


# ----------------------------------------------------------------------
# Counting
# ----------------------------------------------------------------------
def k_subsequences(data_sequence: Sequence, k: int) -> set[Sequence]:
    """All distinct k-item subsequences of a data sequence.

    Chooses a subset of items from each element (order of elements
    preserved, empty picks dropped), k items in total.  Distinct item
    placements collapsing to the same sequence are deduplicated.
    """
    found: set[Sequence] = set()

    def recurse(position: int, remaining: int, chosen: tuple[Element, ...]) -> None:
        if remaining == 0:
            found.add(chosen)
            return
        if position == len(data_sequence):
            return
        element = data_sequence[position]
        # Skip this element entirely…
        recurse(position + 1, remaining, chosen)
        # …or take 1..remaining of its items.
        for take in range(1, min(len(element), remaining) + 1):
            for subset in combinations(element, take):
                recurse(position + 1, remaining - take, chosen + (subset,))

    recurse(0, k, ())
    return found


class SequenceSupportCounter:
    """Counts candidate k-sequences via subsequence enumeration."""

    def __init__(self, candidates: list[Sequence], k: int):
        self.k = k
        self.counts: dict[Sequence, int] = {c: 0 for c in candidates}
        self.probes = 0
        self.generated = 0
        self.universe: set[int] = {
            item for c in self.counts for element in c for item in element
        }

    def add_sequence(self, extended: Sequence) -> int:
        """Count one extended, universe-filtered data sequence."""
        if not self.counts:
            return 0
        hits = 0
        counts = self.counts
        for subsequence in k_subsequences(extended, self.k):
            self.generated += 1
            self.probes += 1
            if subsequence in counts:
                counts[subsequence] += 1
                hits += 1
        return hits


# ----------------------------------------------------------------------
# The sequential miner
# ----------------------------------------------------------------------
def gsp(
    database: SequenceDatabase,
    taxonomy: Taxonomy,
    min_support: float,
    max_k: int | None = None,
) -> SequenceMiningResult:
    """Mine all large generalized sequences of ``database``.

    Parameters mirror :func:`repro.core.cumulate.cumulate`; ``k``
    counts items across a sequence's elements, per [SA96].
    """
    num_sequences = len(database)
    if num_sequences == 0:
        raise MiningError("cannot mine an empty sequence database")
    threshold = minimum_count(min_support, num_sequences)
    result = SequenceMiningResult(
        min_support=min_support, num_sequences=num_sequences
    )

    index = AncestorIndex(taxonomy)
    item_counts: dict[int, int] = {}
    for data_sequence in database:
        seen: set[int] = set()
        for element in data_sequence:
            seen.update(index.extend(element))
        for item in seen:
            item_counts[item] = item_counts.get(item, 0) + 1
    large_1 = {
        ((item,),): count
        for item, count in item_counts.items()
        if count >= threshold
    }
    result.passes.append(
        SequencePassResult(k=1, num_candidates=len(item_counts), large=large_1)
    )

    previous: dict[Sequence, int] = large_1
    k = 2
    while previous and (max_k is None or k <= max_k):
        if k == 2:
            candidates = candidate_2_sequences(
                [sequence[0][0] for sequence in previous], taxonomy
            )
        else:
            candidates = generate_candidate_sequences(previous, k, taxonomy)
        if not candidates:
            break
        counter = SequenceSupportCounter(candidates, k)
        for data_sequence in database:
            counter.add_sequence(
                extend_sequence(data_sequence, index, counter.universe)
            )
        large_k = {
            sequence: count
            for sequence, count in counter.counts.items()
            if count >= threshold
        }
        result.passes.append(
            SequencePassResult(
                k=k, num_candidates=len(candidates), large=large_k
            )
        )
        previous = large_k
        k += 1

    return result
