"""Synthetic customer-sequence generation (Quest sequential flavour).

Follows the recipe of the sequential-pattern papers: a pool of
*potentially large sequences* (short sequences of small itemsets over
the taxonomy's leaves) with exponential weights and per-pattern
corruption; each customer's data sequence is assembled by interleaving
drawn patterns until the target element count is reached.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass

from repro.datagen.generator import _poisson
from repro.errors import DataGenerationError
from repro.sequences.model import Sequence, SequenceDatabase
from repro.taxonomy.generate import generate_taxonomy
from repro.taxonomy.hierarchy import Taxonomy


@dataclass(frozen=True)
class SequenceGeneratorParams:
    """Knobs of the customer-sequence generator.

    Attributes
    ----------
    num_customers:
        Number of data sequences.
    avg_elements:
        Mean number of transactions (elements) per customer.
    avg_element_size:
        Mean items per transaction.
    num_patterns / avg_pattern_elements / avg_pattern_element_size:
        The potentially-large-sequence pool and its shape.
    num_items / num_roots / fanout:
        Classification hierarchy shape (as in the association presets).
    corruption_mean:
        Probability of dropping each pattern item during insertion.
    pattern_weight_exponent:
        Skew knob, as in :class:`repro.datagen.params.GeneratorParams`.
    seed:
        RNG seed; the dataset is a pure function of the params.
    """

    num_customers: int = 1_000
    avg_elements: float = 4.0
    avg_element_size: float = 2.5
    num_patterns: int = 100
    avg_pattern_elements: float = 3.0
    avg_pattern_element_size: float = 1.5
    num_items: int = 400
    num_roots: int = 10
    fanout: float = 4.0
    corruption_mean: float = 0.25
    pattern_weight_exponent: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_customers <= 0:
            raise DataGenerationError("num_customers must be positive")
        if self.avg_elements < 1 or self.avg_element_size < 1:
            raise DataGenerationError("sequence shape means must be >= 1")
        if self.num_patterns <= 0:
            raise DataGenerationError("num_patterns must be positive")
        if not 0 <= self.corruption_mean < 1:
            raise DataGenerationError("corruption_mean must be in [0, 1)")


@dataclass(frozen=True)
class SequencePattern:
    elements: Sequence
    weight: float


@dataclass(frozen=True)
class SyntheticSequenceDataset:
    params: SequenceGeneratorParams
    taxonomy: Taxonomy
    database: SequenceDatabase
    patterns: tuple[SequencePattern, ...]


def _draw_pattern(rng: random.Random, params: SequenceGeneratorParams, leaves) -> Sequence:
    num_elements = max(1, _poisson(rng, params.avg_pattern_elements))
    elements = []
    for _ in range(num_elements):
        size = max(1, _poisson(rng, params.avg_pattern_element_size))
        size = min(size, len(leaves))
        elements.append(tuple(sorted(rng.sample(leaves, size))))
    return tuple(elements)


def generate_sequence_dataset(
    params: SequenceGeneratorParams,
) -> SyntheticSequenceDataset:
    """Generate taxonomy, pattern pool and customer sequences."""
    rng = random.Random(params.seed)
    taxonomy = generate_taxonomy(
        num_items=params.num_items,
        num_roots=params.num_roots,
        fanout=params.fanout,
        seed=rng.randrange(2**31),
    )
    leaves = list(taxonomy.leaves)

    raw_weights = [
        rng.expovariate(1.0) ** params.pattern_weight_exponent
        for _ in range(params.num_patterns)
    ]
    total = sum(raw_weights)
    patterns = tuple(
        SequencePattern(
            elements=_draw_pattern(rng, params, leaves),
            weight=weight / total,
        )
        for weight in raw_weights
    )
    cumulative = []
    running = 0.0
    for pattern in patterns:
        running += pattern.weight
        cumulative.append(running)

    customers: list[list[list[int]]] = []
    for _ in range(params.num_customers):
        target_elements = max(1, _poisson(rng, params.avg_elements))
        elements: list[set[int]] = [set() for _ in range(target_elements)]
        filled = 0
        attempts = 0
        while filled < target_elements and attempts < 8 * target_elements:
            attempts += 1
            pattern = patterns[
                bisect_right(cumulative, rng.random() * cumulative[-1])
            ]
            offset = rng.randrange(target_elements)
            for position, pattern_element in enumerate(pattern.elements):
                slot = offset + position
                if slot >= target_elements:
                    break
                for item in pattern_element:
                    if rng.random() >= params.corruption_mean:
                        elements[slot].add(item)
            filled = sum(1 for element in elements if element)
        # Pad still-empty elements with single random leaf purchases.
        for element in elements:
            if not element:
                element.add(rng.choice(leaves))
            # Top up to the target element size on average.
            while len(element) < max(
                1, _poisson(rng, params.avg_element_size)
            ) and rng.random() < 0.5:
                element.add(rng.choice(leaves))
        customers.append([sorted(element) for element in elements])

    return SyntheticSequenceDataset(
        params=params,
        taxonomy=taxonomy,
        database=SequenceDatabase(customers),
        patterns=patterns,
    )
