"""Customer sequences and taxonomy-aware sequence containment.

A *sequence* is an ordered tuple of non-empty itemsets ("elements");
a *data sequence* is one customer's purchase history.  Following
[SA96], a sequence ``s`` is contained in a data sequence ``d`` when
the elements of ``s`` can be embedded, in order, into distinct
elements of ``d`` — with the hierarchy, an element of ``d`` is first
extended with the ancestors of its items.

Greedy earliest-match embedding is exact here: without sliding-window
or gap constraints, if ``s[0] ⊆ d[i]`` then matching it at the first
such ``i`` never forecloses an embedding of the remainder.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.errors import MiningError
from repro.taxonomy.hierarchy import Taxonomy
from repro.taxonomy.ops import AncestorIndex

Element = tuple[int, ...]
Sequence = tuple[Element, ...]


def canonical_sequence(elements: Iterable[Iterable[int]]) -> Sequence:
    """Normalise into a canonical sequence: sorted, deduplicated, non-empty elements.

    Empty elements are rejected rather than dropped — an empty element
    in caller data is a bug, not a request.
    """
    sequence = []
    for element in elements:
        canonical = tuple(sorted(set(element)))
        if not canonical:
            raise MiningError("sequence elements must be non-empty")
        sequence.append(canonical)
    return tuple(sequence)


def sequence_length(sequence: Sequence) -> int:
    """The k in "k-sequence": total number of items across elements."""
    return sum(len(element) for element in sequence)


def sequence_contains(
    data_sequence: Sequence,
    pattern: Sequence,
    taxonomy: Taxonomy | None = None,
) -> bool:
    """True when ``pattern`` is embedded in ``data_sequence`` ([SA96]).

    With a taxonomy, each data element is extended with its items'
    ancestors before the subset tests (generalized containment).
    """
    if not pattern:
        return True
    cursor = 0
    for element in data_sequence:
        extended = set(element)
        if taxonomy is not None:
            for item in element:
                if item in taxonomy:
                    extended.update(taxonomy.ancestors(item))
        if set(pattern[cursor]) <= extended:
            cursor += 1
            if cursor == len(pattern):
                return True
    return False


class SequenceDatabase:
    """Immutable ordered collection of customer data sequences."""

    __slots__ = ("_sequences",)

    def __init__(self, sequences: Iterable[Iterable[Iterable[int]]]):
        self._sequences: tuple[Sequence, ...] = tuple(
            canonical_sequence(sequence) for sequence in sequences
        )

    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self) -> Iterator[Sequence]:
        return iter(self._sequences)

    def __getitem__(self, index: int) -> Sequence:
        return self._sequences[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SequenceDatabase):
            return NotImplemented
        return self._sequences == other._sequences

    def __hash__(self) -> int:
        return hash(self._sequences)

    @property
    def sequences(self) -> tuple[Sequence, ...]:
        return self._sequences

    def item_universe(self) -> set[int]:
        """Every item occurring in any element of any sequence."""
        universe: set[int] = set()
        for sequence in self._sequences:
            for element in sequence:
                universe.update(element)
        return universe

    def total_items(self) -> int:
        """Total item volume (the disks' read size)."""
        return sum(sequence_length(sequence) for sequence in self._sequences)

    def support_count(
        self, pattern: Sequence, taxonomy: Taxonomy | None = None
    ) -> int:
        """Brute-force oracle: data sequences containing ``pattern``."""
        return sum(
            1
            for data_sequence in self._sequences
            if sequence_contains(data_sequence, pattern, taxonomy)
        )

    def split(self, num_parts: int) -> list["SequenceDatabase"]:
        """Round-robin split over ``num_parts`` (cluster loading)."""
        if num_parts <= 0:
            raise MiningError(f"num_parts must be positive, got {num_parts}")
        buckets: list[list[Sequence]] = [[] for _ in range(num_parts)]
        for index, sequence in enumerate(self._sequences):
            buckets[index % num_parts].append(sequence)
        return [SequenceDatabase(bucket) for bucket in buckets]

    def __repr__(self) -> str:
        return f"SequenceDatabase(customers={len(self._sequences)})"


def extend_sequence(
    data_sequence: Sequence,
    index: AncestorIndex,
    universe: set[int] | None = None,
) -> Sequence:
    """Element-wise ancestor extension of a data sequence.

    ``universe`` restricts the retained items (original and ancestors
    alike) to those any candidate references — the sequential analogue
    of Cumulate's pruned extension.  Elements emptied by the filter are
    dropped (they can never match a candidate element).
    """
    extended: list[Element] = []
    for element in data_sequence:
        merged = index.extend(element)
        if universe is not None:
            merged = tuple(item for item in merged if item in universe)
        if merged:
            extended.append(merged)
    return tuple(extended)
