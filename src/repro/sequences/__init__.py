"""Generalized sequential-pattern mining — the paper's stated follow-on.

The conclusion (§5) points at the next system: *"In [SA96], generalized
sequential pattern mining with classification hierarchy is discussed …
In [SK98], we present the parallelization of mining sequential
patterns.  Extension of our parallel algorithms to the mining of
generalized sequential patterns is interesting study for future work."*

This subpackage builds that extension:

* :mod:`~repro.sequences.model` — customer sequences (ordered lists of
  itemsets), taxonomy-aware containment, :class:`SequenceDatabase`.
* :mod:`~repro.sequences.generate` — synthetic customer-sequence
  generator in the Quest style.
* :mod:`~repro.sequences.gsp` — GSP [SA96] with classification
  hierarchy: candidate join/prune over sequences, ancestor-extended
  counting, the sequential analogue of Cumulate.
* :mod:`~repro.sequences.parallel` — NPSPM / SPSPM / HPSPM [SK98] on
  the same cluster simulator: replicated, simply-partitioned and
  hash-partitioned candidate sequences.

All parallel variants return exactly the sequential GSP's answer
(tested), mirroring the association-rule family's correctness spine.
"""

from repro.sequences.generate import SequenceGeneratorParams, generate_sequence_dataset
from repro.sequences.gsp import gsp
from repro.sequences.model import (
    Sequence,
    SequenceDatabase,
    canonical_sequence,
    sequence_contains,
)
from repro.sequences.parallel import (
    SEQUENCE_ALGORITHMS,
    mine_sequences_parallel,
)

__all__ = [
    "SEQUENCE_ALGORITHMS",
    "Sequence",
    "SequenceDatabase",
    "SequenceGeneratorParams",
    "canonical_sequence",
    "generate_sequence_dataset",
    "gsp",
    "mine_sequences_parallel",
    "sequence_contains",
]
