"""Parallel sequential-pattern mining: NPSPM / SPSPM / HPSPM ([SK98]).

The authors' sequential-pattern parallelization, transplanted onto the
same cluster simulator as the association-rule family:

* **NPSPM** (Non-Partitioned) — candidate sequences replicated; local
  counting; fragmenting re-scans under memory pressure (NPGM's shape).
* **SPSPM** (Simply-Partitioned) — candidates split round-robin; every
  customer sequence broadcast to every node (SPA's shape).
* **HPSPM** (Hash-Partitioned) — candidates placed by hash; each node
  enumerates its local customers' k-subsequences and ships each to the
  owner of its hash; only subsequences travel, each to one node (HPA /
  HPGM's shape).

All three return exactly :func:`repro.sequences.gsp.gsp`'s answer.

Wire format: a sequence is flattened with an element separator
(``_SEPARATOR``), so payload sizes count real shipped volume.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.cluster.stats import PassStats, RunStats
from repro.core.itemsets import minimum_count
from repro.errors import MiningError
from repro.parallel.allocation import stable_hash
from repro.sequences.gsp import (
    SequenceMiningResult,
    SequencePassResult,
    SequenceSupportCounter,
    candidate_2_sequences,
    generate_candidate_sequences,
    k_subsequences,
)
from repro.sequences.model import Sequence, SequenceDatabase, extend_sequence
from repro.taxonomy.hierarchy import Taxonomy
from repro.taxonomy.ops import AncestorIndex

#: Element separator on the wire (item ids are non-negative).
_SEPARATOR = -1


def encode_sequence(sequence: Sequence) -> tuple[int, ...]:
    """Flatten a sequence for the wire, separating elements."""
    flat: list[int] = []
    for position, element in enumerate(sequence):
        if position:
            flat.append(_SEPARATOR)
        flat.extend(element)
    return tuple(flat)


def decode_sequence(payload: tuple[int, ...]) -> Sequence:
    """Inverse of :func:`encode_sequence`."""
    elements: list[tuple[int, ...]] = []
    current: list[int] = []
    for token in payload:
        if token == _SEPARATOR:
            elements.append(tuple(current))
            current = []
        else:
            current.append(token)
    elements.append(tuple(current))
    return tuple(elements)


def sequence_owner(sequence: Sequence, num_nodes: int) -> int:
    """Deterministic placement of a candidate sequence."""
    return stable_hash(encode_sequence(sequence)) % num_nodes


@dataclass(frozen=True)
class SequenceParallelRun:
    result: SequenceMiningResult
    stats: RunStats

    @property
    def algorithm(self) -> str:
        return self.stats.algorithm


class SequenceParallelMiner(ABC):
    """Shared pass loop of the [SK98] family."""

    name = "abstract-seq"

    def __init__(self, cluster: Cluster, taxonomy: Taxonomy, partitions):
        self.cluster = cluster
        self.taxonomy = taxonomy
        self.partitions: list[SequenceDatabase] = partitions
        self._index = AncestorIndex(taxonomy)

    @property
    def num_sequences(self) -> int:
        return sum(len(p) for p in self.partitions)

    def mine(
        self, min_support: float, max_k: int | None = None
    ) -> SequenceParallelRun:
        num_sequences = self.num_sequences
        if num_sequences == 0:
            raise MiningError("cannot mine an empty cluster")
        threshold = minimum_count(min_support, num_sequences)

        result = SequenceMiningResult(
            min_support=min_support, num_sequences=num_sequences
        )
        run = RunStats(algorithm=self.name, num_nodes=self.cluster.num_nodes)

        large_1, pass1_stats = self._pass_one(threshold)
        result.passes.append(
            SequencePassResult(
                k=1, num_candidates=pass1_stats.num_candidates, large=large_1
            )
        )
        run.passes.append(pass1_stats)

        previous: dict[Sequence, int] = large_1
        k = 2
        while previous and (max_k is None or k <= max_k):
            if k == 2:
                candidates = candidate_2_sequences(
                    [sequence[0][0] for sequence in previous], self.taxonomy
                )
            else:
                candidates = generate_candidate_sequences(
                    previous, k, self.taxonomy
                )
            if not candidates:
                break
            large_k, pass_stats = self._run_pass(k, candidates, threshold)
            result.passes.append(
                SequencePassResult(
                    k=k, num_candidates=len(candidates), large=large_k
                )
            )
            run.passes.append(pass_stats)
            previous = large_k
            k += 1

        return SequenceParallelRun(result=result, stats=run)

    def _scan_partition(self, node):
        """Iterate one node's customers, charging the read volume."""
        partition = self.partitions[node.node_id]
        node.stats.io_scans += 1
        node.stats.io_items += partition.total_items()
        return iter(partition)

    def _pass_one(self, threshold: int) -> tuple[dict[Sequence, int], PassStats]:
        self.cluster.begin_pass()
        total: dict[int, int] = {}
        reduced = 0
        budget = self.cluster.config.memory_per_node
        for node in self.cluster.nodes:
            stats = node.stats
            local: dict[int, int] = {}
            for data_sequence in self._scan_partition(node):
                seen: set[int] = set()
                for element in data_sequence:
                    stats.extend_items += len(element)
                    seen.update(self._index.extend(element))
                stats.probes += len(seen)
                stats.increments += len(seen)
                for item in seen:
                    local[item] = local.get(item, 0) + 1
            node.charge_candidates(
                len(local) if budget is None else min(len(local), budget)
            )
            reduced += len(local)
            for item, count in local.items():
                total[item] = total.get(item, 0) + count

        large_1 = {
            ((item,),): count
            for item, count in total.items()
            if count >= threshold
        }
        pass_stats = self.cluster.finish_pass(
            k=1,
            num_candidates=len(total),
            num_large=len(large_1),
            reduced_counts=reduced,
        )
        return large_1, pass_stats

    @abstractmethod
    def _run_pass(
        self, k: int, candidates: list[Sequence], threshold: int
    ) -> tuple[dict[Sequence, int], PassStats]:
        """Count one pass; return the large k-sequences and pass stats."""


class NPSPM(SequenceParallelMiner):
    """Non-partitioned: replicated candidates, fragmenting re-scans."""

    name = "NPSPM"

    def _run_pass(self, k, candidates, threshold):
        cluster = self.cluster
        cluster.begin_pass()
        memory = cluster.config.memory_per_node
        fragments = (
            1 if memory is None else max(1, math.ceil(len(candidates) / memory))
        )

        total: dict[Sequence, int] = {}
        for node in cluster.nodes:
            stats = node.stats
            counter = SequenceSupportCounter(candidates, k)
            for data_sequence in self._scan_partition(node):
                stats.extend_items += sum(len(e) for e in data_sequence)
                counter.add_sequence(
                    extend_sequence(data_sequence, self._index, counter.universe)
                )
            stats.io_items *= fragments
            stats.io_scans = fragments
            stats.extend_items *= fragments
            stats.itemsets_generated = counter.generated * fragments
            stats.probes = counter.probes * fragments
            stats.increments = sum(counter.counts.values())
            node.charge_candidates(
                len(candidates) if memory is None else min(len(candidates), memory)
            )
            for sequence, count in counter.counts.items():
                if count:
                    total[sequence] = total.get(sequence, 0) + count

        large = {s: c for s, c in total.items() if c >= threshold}
        pass_stats = cluster.finish_pass(
            k=k,
            num_candidates=len(candidates),
            num_large=len(large),
            reduced_counts=len(candidates) * cluster.num_nodes,
            fragments=fragments,
        )
        return large, pass_stats


class SPSPM(SequenceParallelMiner):
    """Simply-partitioned: round-robin candidates, full broadcast."""

    name = "SPSPM"

    def _run_pass(self, k, candidates, threshold):
        cluster = self.cluster
        num_nodes = cluster.num_nodes
        network = cluster.network
        node_stats = cluster.begin_pass()

        partitions = [candidates[n::num_nodes] for n in range(num_nodes)]
        counters = [SequenceSupportCounter(p, k) for p in partitions]
        for node, partition in zip(cluster.nodes, partitions):
            node.charge_candidates(len(partition))
        universe = {i for c in candidates for e in c for i in e}

        for node in cluster.nodes:
            me = node.node_id
            stats = node.stats
            counter = counters[me]
            for data_sequence in self._scan_partition(node):
                stats.extend_items += sum(len(e) for e in data_sequence)
                extended = extend_sequence(data_sequence, self._index, universe)
                counter.add_sequence(extended)
                if not extended:
                    continue
                payload = encode_sequence(extended)
                for dest in range(num_nodes):
                    if dest != me:
                        network.send(me, dest, payload, stats, node_stats[dest])

        for node in cluster.nodes:
            counter = counters[node.node_id]
            for payload in network.drain(node.node_id):
                counter.add_sequence(decode_sequence(payload))

        return self._finish(k, candidates, threshold, counters)

    def _finish(self, k, candidates, threshold, counters):
        cluster = self.cluster
        large: dict[Sequence, int] = {}
        reduced = 0
        for node, counter in zip(cluster.nodes, counters):
            stats = node.stats
            stats.probes += counter.probes
            stats.itemsets_generated += counter.generated
            stats.increments += sum(counter.counts.values())
            local_large = {
                s: c for s, c in counter.counts.items() if c >= threshold
            }
            reduced += len(local_large)
            large.update(local_large)
        pass_stats = cluster.finish_pass(
            k=k,
            num_candidates=len(candidates),
            num_large=len(large),
            reduced_counts=reduced,
        )
        return large, pass_stats


class HPSPM(SequenceParallelMiner):
    """Hash-partitioned: subsequences routed to their hash owner."""

    name = "HPSPM"

    def _run_pass(self, k, candidates, threshold):
        cluster = self.cluster
        num_nodes = cluster.num_nodes
        network = cluster.network
        node_stats = cluster.begin_pass()

        partitions: list[list[Sequence]] = [[] for _ in range(num_nodes)]
        for candidate in candidates:
            partitions[sequence_owner(candidate, num_nodes)].append(candidate)
        counts: list[dict[Sequence, int]] = [
            dict.fromkeys(partition, 0) for partition in partitions
        ]
        for node, partition in zip(cluster.nodes, partitions):
            node.charge_candidates(len(partition))
        universe = {i for c in candidates for e in c for i in e}

        for node in cluster.nodes:
            me = node.node_id
            stats = node.stats
            my_counts = counts[me]
            for data_sequence in self._scan_partition(node):
                stats.extend_items += sum(len(e) for e in data_sequence)
                extended = extend_sequence(data_sequence, self._index, universe)
                batches: dict[int, list[int]] = {}
                # k_subsequences returns a set; iterate it sorted so the
                # batched payload bytes are identical across hash seeds.
                for subsequence in sorted(k_subsequences(extended, k)):
                    stats.itemsets_generated += 1
                    dest = sequence_owner(subsequence, num_nodes)
                    if dest == me:
                        stats.probes += 1
                        if subsequence in my_counts:
                            my_counts[subsequence] += 1
                            stats.increments += 1
                    else:
                        encoded = encode_sequence(subsequence)
                        batch = batches.setdefault(dest, [])
                        if batch:
                            batch.append(_SEPARATOR)
                            batch.append(_SEPARATOR)
                        batch.extend(encoded)
                for dest, flat in sorted(batches.items()):
                    network.send(me, dest, tuple(flat), stats, node_stats[dest])

        for node in cluster.nodes:
            me = node.node_id
            stats = node.stats
            my_counts = counts[me]
            for payload in network.drain(me):
                for subsequence in _split_batch(payload):
                    stats.probes += 1
                    if subsequence in my_counts:
                        my_counts[subsequence] += 1
                        stats.increments += 1

        large: dict[Sequence, int] = {}
        reduced = 0
        for per_node in counts:
            local_large = {
                s: c for s, c in per_node.items() if c >= threshold
            }
            reduced += len(local_large)
            large.update(local_large)
        pass_stats = cluster.finish_pass(
            k=k,
            num_candidates=len(candidates),
            num_large=len(large),
            reduced_counts=reduced,
        )
        return large, pass_stats


def _split_batch(payload: tuple[int, ...]):
    """Split a batch of encoded subsequences (double-separator framed)."""
    start = 0
    length = len(payload)
    position = 0
    while position < length:
        if (
            payload[position] == _SEPARATOR
            and position + 1 < length
            and payload[position + 1] == _SEPARATOR
        ):
            yield decode_sequence(payload[start:position])
            start = position + 2
            position += 2
        else:
            position += 1
    if start < length:
        yield decode_sequence(payload[start:length])


#: Name → class, in [SK98]'s order.
SEQUENCE_ALGORITHMS: dict[str, type[SequenceParallelMiner]] = {
    "NPSPM": NPSPM,
    "SPSPM": SPSPM,
    "HPSPM": HPSPM,
}


def mine_sequences_parallel(
    database: SequenceDatabase,
    taxonomy: Taxonomy,
    min_support: float,
    algorithm: str = "HPSPM",
    config: ClusterConfig | None = None,
    max_k: int | None = None,
) -> SequenceParallelRun:
    """One-call entry point for the sequential-pattern family.

    The cluster's disks hold the customer partitions; ``config``
    defaults to the 16-node preset.
    """
    config = config if config is not None else ClusterConfig.sp2_like()
    try:
        miner_class = SEQUENCE_ALGORITHMS[algorithm.upper()]
    except KeyError:
        known = ", ".join(SEQUENCE_ALGORITHMS)
        raise MiningError(
            f"unknown sequence algorithm {algorithm!r}; known: {known}"
        ) from None
    partitions = database.split(config.num_nodes)
    # The cluster's transaction disks are unused by the sequence miners
    # (they scan the sequence partitions), but the machine still
    # provides network, memory accounting and pass pricing.
    from repro.datagen.corpus import TransactionDatabase

    placeholder = [
        TransactionDatabase([]) for _ in range(config.num_nodes)
    ]
    cluster = Cluster(config, placeholder)
    miner = miner_class(cluster, taxonomy, partitions)
    return miner.mine(min_support, max_k=max_k)
