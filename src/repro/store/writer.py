"""Streaming writer for the columnar transaction store.

:class:`StoreWriter` consumes transactions one at a time and never holds
more than one segment's worth of rows in memory: when the buffered
segment reaches ``segment_rows`` it is packed (offsets column + item
column), hashed and flushed to disk, and the buffer resets.  This is the
out-of-core half of the datagen path — a 3.2M-transaction dataset
streams through a few tens of megabytes of writer state.

Rows are normalised exactly like
:class:`~repro.datagen.corpus.TransactionDatabase` normalises them
(sorted, deduplicated), so a store written from an iterator is
row-for-row identical to the in-memory database built from the same
iterator — the property every store/list equivalence test leans on.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import StoreFormatError
from repro.store.atomic import atomic_write_json
from repro.store.format import (
    ITEM_WIDTH,
    MANIFEST_NAME,
    MAX_ITEM,
    OFFSET_WIDTH,
    STORE_SCHEMA,
    pack_header,
    require_little_endian,
    segment_digest,
    segment_name,
)

#: Default rows per segment: ~64k rows of average size 10 pack into a
#: few megabytes — large enough for sequential-scan locality, small
#: enough that the writer's buffer stays tiny.
DEFAULT_SEGMENT_ROWS = 65_536


class StoreWriter:
    """Append transactions to a store directory, one segment at a time.

    Use as a context manager (or call :meth:`close`); the manifest is
    only written on close, so a crashed writer leaves no store behind —
    readers refuse a directory without ``store.json``.

    Parameters
    ----------
    path:
        Store directory (created if missing; must not already hold a
        manifest).
    segment_rows:
        Rows per segment — the writer's peak buffered row count.
    meta:
        Optional JSON-serialisable provenance (generator parameters,
        seed, dataset name) recorded verbatim in the manifest.
    """

    def __init__(
        self,
        path: str | Path,
        segment_rows: int = DEFAULT_SEGMENT_ROWS,
        meta: dict | None = None,
    ):
        require_little_endian()
        if segment_rows <= 0:
            raise StoreFormatError(
                f"segment_rows must be positive, got {segment_rows}"
            )
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        if (self.path / MANIFEST_NAME).exists():
            raise StoreFormatError(
                f"{self.path} already holds a store manifest; refusing to overwrite"
            )
        self.segment_rows = segment_rows
        self.meta = meta
        self._offsets = array("Q", [0])
        self._items = array("I")
        self._segments: list[dict] = []
        self._rows = 0
        self._total_items = 0
        self._closed = False

    # ------------------------------------------------------------------
    def append(self, transaction: Iterable[int]) -> None:
        """Add one transaction (normalised to a sorted, deduplicated row)."""
        if self._closed:
            raise StoreFormatError("append on a closed StoreWriter")
        row = sorted(set(transaction))
        if row and (row[0] < 0 or row[-1] > MAX_ITEM):
            raise StoreFormatError(
                f"item ids must be in [0, {MAX_ITEM}], got {row[0]}..{row[-1]}"
            )
        self._items.extend(row)
        self._offsets.append(len(self._items))
        self._rows += 1
        self._total_items += len(row)
        if len(self._offsets) - 1 >= self.segment_rows:
            self._flush_segment()

    def extend(self, transactions: Iterable[Iterable[int]]) -> None:
        """Append every transaction of an iterable (streaming)."""
        for transaction in transactions:
            self.append(transaction)

    # ------------------------------------------------------------------
    def _flush_segment(self) -> None:
        rows = len(self._offsets) - 1
        if rows == 0:
            return
        assert self._offsets.itemsize == OFFSET_WIDTH
        assert self._items.itemsize == ITEM_WIDTH
        name = segment_name(len(self._segments))
        payload = (
            pack_header(rows, len(self._items))
            + self._offsets.tobytes()
            + self._items.tobytes()
        )
        (self.path / name).write_bytes(payload)
        self._segments.append(
            {
                "file": name,
                "rows": rows,
                "items": len(self._items),
                "sha256": segment_digest(payload),
            }
        )
        self._offsets = array("Q", [0])
        self._items = array("I")

    def close(self) -> Path:
        """Flush the tail segment and write the manifest; returns its path."""
        if self._closed:
            return self.path / MANIFEST_NAME
        self._flush_segment()
        manifest = {
            "schema": STORE_SCHEMA,
            "rows": self._rows,
            "items": self._total_items,
            "segment_rows": self.segment_rows,
            "item_dtype": "uint32",
            "offset_dtype": "uint64",
            "segments": self._segments,
        }
        if self.meta is not None:
            manifest["meta"] = self.meta
        # Manifest-last commit: the segments are already durable, and the
        # atomic replace makes the directory a store in one step — a
        # reader never sees a manifest describing half-written segments.
        manifest_path = atomic_write_json(self.path / MANIFEST_NAME, manifest)
        self._closed = True
        return manifest_path

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()

    @property
    def rows_written(self) -> int:
        return self._rows


def write_store(
    transactions: Iterator[Iterable[int]] | Iterable[Iterable[int]],
    path: str | Path,
    segment_rows: int = DEFAULT_SEGMENT_ROWS,
    meta: dict | None = None,
) -> Path:
    """Stream an iterable of transactions into a new store directory.

    Returns the manifest path.  The iterable is consumed exactly once
    and never materialised.
    """
    with StoreWriter(path, segment_rows=segment_rows, meta=meta) as writer:
        writer.extend(transactions)
    return writer.close()
