"""mmap reader over a columnar transaction store.

:class:`TransactionStore` opens a store directory, validates every
segment digest, and serves rows as the same sorted integer tuples a
:class:`~repro.datagen.corpus.TransactionDatabase` yields — so every
scan loop in the miners runs unchanged over either source.  Segments
are mapped lazily and shared with the OS page cache: a scan touches the
mapped pages directly (``memoryview.cast`` over the mmap), and the only
per-row allocation is the tuple the kernel is about to consume.

:class:`StoreView` is the zero-pickle handle the cluster hands to
process-pool workers: it serialises as ``(path, start, stop, step)``
plus a cached item total — a few dozen bytes regardless of partition
size — and re-opens the mmap on first use in the worker.  A strided
view (``step = num_nodes``) reproduces the round-robin placement of
:func:`~repro.datagen.partition.partition_evenly` exactly, which is
what keeps store-backed runs byte-identical to list-backed ones.
"""

from __future__ import annotations

import json
import mmap
from bisect import bisect_right
from collections.abc import Iterator
from pathlib import Path

from repro.errors import StoreFormatError
from repro.store.format import (
    HEADER_SIZE,
    MANIFEST_NAME,
    OFFSET_WIDTH,
    STORE_SCHEMA,
    require_little_endian,
    segment_digest,
    segment_size,
    unpack_header,
)

Row = tuple[int, ...]


class _Segment:
    """One mapped segment: lazy mmap + cast column views."""

    __slots__ = ("path", "rows", "items", "sha256", "row_start", "_offsets", "_items")

    def __init__(self, path: Path, rows: int, items: int, sha256: str, row_start: int):
        self.path = path
        self.rows = rows
        self.items = items
        self.sha256 = sha256
        self.row_start = row_start
        self._offsets: memoryview | None = None
        self._items: memoryview | None = None

    def _map(self) -> None:
        try:
            with self.path.open("rb") as handle:
                buffer = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (OSError, ValueError) as exc:
            raise StoreFormatError(f"{self.path}: cannot map segment: {exc}") from exc
        view = memoryview(buffer)
        rows, items = unpack_header(view[:HEADER_SIZE], str(self.path))
        if rows != self.rows or items != self.items:
            raise StoreFormatError(
                f"{self.path}: header says {rows} rows/{items} items, "
                f"manifest says {self.rows}/{self.items}"
            )
        expected = segment_size(rows, items)
        if len(view) != expected:
            raise StoreFormatError(
                f"{self.path}: {len(view)} bytes on disk, format needs {expected}"
            )
        split = HEADER_SIZE + OFFSET_WIDTH * (rows + 1)
        self._offsets = view[HEADER_SIZE:split].cast("Q")
        self._items = view[split:].cast("I")

    @property
    def offsets(self) -> memoryview:
        if self._offsets is None:
            self._map()
        return self._offsets  # type: ignore[return-value]

    @property
    def item_column(self) -> memoryview:
        if self._items is None:
            self._map()
        return self._items  # type: ignore[return-value]

    def verify(self) -> None:
        """Hash the whole file and compare against the manifest digest."""
        try:
            data = self.path.read_bytes()
        except OSError as exc:
            raise StoreFormatError(f"{self.path}: cannot read segment: {exc}") from exc
        if len(data) != segment_size(self.rows, self.items):
            raise StoreFormatError(
                f"{self.path}: {len(data)} bytes on disk, format needs "
                f"{segment_size(self.rows, self.items)}"
            )
        digest = segment_digest(data)
        if digest != self.sha256:
            raise StoreFormatError(
                f"{self.path}: segment digest mismatch — manifest records "
                f"{self.sha256[:12]}…, bytes on disk hash to {digest[:12]}…"
            )

    def row(self, local_index: int) -> Row:
        offsets = self.offsets
        start = offsets[local_index]
        return tuple(self.item_column[start : offsets[local_index + 1]])

    def row_items(self, local_index: int) -> int:
        offsets = self.offsets
        return offsets[local_index + 1] - offsets[local_index]


class TransactionStore:
    """A read-only columnar transaction store (see :mod:`repro.store`).

    Satisfies the partition protocol the cluster's
    :class:`~repro.cluster.disk.LocalDisk` scans (``__len__``,
    ``total_items``, iteration yielding sorted tuples), so a store —
    or a :class:`StoreView` slice of one — can stand in anywhere a
    :class:`~repro.datagen.corpus.TransactionDatabase` is scanned.
    """

    def __init__(self, path: str | Path, verify: bool = True):
        require_little_endian()
        self.path = Path(path)
        manifest_path = self.path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise StoreFormatError(f"{manifest_path}: not a store: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise StoreFormatError(f"{manifest_path}: manifest is not JSON: {exc}") from exc
        if manifest.get("schema") != STORE_SCHEMA:
            raise StoreFormatError(
                f"{manifest_path}: schema {manifest.get('schema')!r} "
                f"(this reader understands {STORE_SCHEMA!r})"
            )
        self.meta: dict = manifest.get("meta", {})
        self._rows = int(manifest["rows"])
        self._total_items = int(manifest["items"])
        self._segments: list[_Segment] = []
        self._row_starts: list[int] = []
        row_start = 0
        for entry in manifest.get("segments", []):
            segment = _Segment(
                path=self.path / entry["file"],
                rows=int(entry["rows"]),
                items=int(entry["items"]),
                sha256=entry["sha256"],
                row_start=row_start,
            )
            self._segments.append(segment)
            self._row_starts.append(row_start)
            row_start += segment.rows
        if row_start != self._rows:
            raise StoreFormatError(
                f"{manifest_path}: segments hold {row_start} rows, "
                f"manifest says {self._rows}"
            )
        if sum(segment.items for segment in self._segments) != self._total_items:
            raise StoreFormatError(
                f"{manifest_path}: segment item counts disagree with the manifest"
            )
        if verify:
            self.verify()

    # ------------------------------------------------------------------
    def verify(self) -> None:
        """Re-hash every segment against its manifest digest."""
        for segment in self._segments:
            segment.verify()

    def __len__(self) -> int:
        return self._rows

    def total_items(self) -> int:
        """Sum of row lengths (the store's raw scan volume)."""
        return self._total_items

    def average_size(self) -> float:
        return self._total_items / self._rows if self._rows else 0.0

    @property
    def num_segments(self) -> int:
        return len(self._segments)

    def store_bytes(self) -> int:
        """Total on-disk size of all segment files."""
        return sum(
            segment_size(segment.rows, segment.items) for segment in self._segments
        )

    # ------------------------------------------------------------------
    def row(self, index: int) -> Row:
        if not 0 <= index < self._rows:
            raise IndexError(f"row {index} out of range [0, {self._rows})")
        segment_index = bisect_right(self._row_starts, index) - 1
        segment = self._segments[segment_index]
        return segment.row(index - segment.row_start)

    def __getitem__(self, index: int) -> Row:
        return self.row(index)

    def iter_rows(
        self, start: int = 0, stop: int | None = None, step: int = 1
    ) -> Iterator[Row]:
        """Yield rows ``start, start+step, …`` below ``stop`` (segment-local
        reads, so a stride-per-node scan still walks each segment once)."""
        if step <= 0:
            raise StoreFormatError(f"step must be positive, got {step}")
        stop = self._rows if stop is None else min(stop, self._rows)
        for segment in self._segments:
            seg_lo, seg_hi = segment.row_start, segment.row_start + segment.rows
            if seg_hi <= start or seg_lo >= stop:
                continue
            first = max(start, seg_lo)
            misaligned = (first - start) % step
            if misaligned:
                first += step - misaligned
            offsets = segment.offsets
            items = segment.item_column
            for index in range(first - seg_lo, min(stop, seg_hi) - seg_lo, step):
                begin = offsets[index]
                yield tuple(items[begin : offsets[index + 1]])

    def __iter__(self) -> Iterator[Row]:
        return self.iter_rows()

    def view_items(self, start: int, stop: int | None, step: int) -> int:
        """Total item count of the rows a view covers (offset reads only)."""
        if step <= 0:
            raise StoreFormatError(f"step must be positive, got {step}")
        stop = self._rows if stop is None else min(stop, self._rows)
        if step == 1:
            total = 0
            for segment in self._segments:
                seg_lo, seg_hi = segment.row_start, segment.row_start + segment.rows
                lo, hi = max(start, seg_lo), min(stop, seg_hi)
                if lo >= hi:
                    continue
                offsets = segment.offsets
                total += offsets[hi - seg_lo] - offsets[lo - seg_lo]
            return total
        total = 0
        for segment in self._segments:
            seg_lo, seg_hi = segment.row_start, segment.row_start + segment.rows
            if seg_hi <= start or seg_lo >= stop:
                continue
            first = max(start, seg_lo)
            misaligned = (first - start) % step
            if misaligned:
                first += step - misaligned
            offsets = segment.offsets
            for index in range(first - seg_lo, min(stop, seg_hi) - seg_lo, step):
                total += offsets[index + 1] - offsets[index]
        return total

    def item_universe(self) -> set[int]:
        """Every distinct item id (full column scan)."""
        universe: set[int] = set()
        for segment in self._segments:
            universe.update(segment.item_column)
        return universe

    def view(
        self, start: int = 0, stop: int | None = None, step: int = 1
    ) -> "StoreView":
        """A picklable handle over rows ``start, start+step, … < stop``."""
        return StoreView(self, start, stop, step)

    def to_list(self) -> list[Row]:
        """Materialise every row as a Python list — **test helper only**.

        Defeats the whole point of the store for real workloads; lint
        rule RL011 flags calls outside the test tree.
        """
        return list(self.iter_rows())

    def __repr__(self) -> str:
        return (
            f"TransactionStore(path={str(self.path)!r}, rows={self._rows}, "
            f"segments={len(self._segments)})"
        )


def open_store(path: str | Path, verify: bool = True) -> TransactionStore:
    """Open a store directory, verifying segment digests by default."""
    return TransactionStore(path, verify=verify)


def _view_from_handle(
    path: str, start: int, stop: int | None, step: int, total_items: int | None
) -> "StoreView":
    """Rebuild a view in a worker process (pickle target of StoreView).

    Digests were verified when the parent opened the store; re-opening
    per worker skips the hash pass and just maps the columns.
    """
    view = StoreView(TransactionStore(path, verify=False), start, stop, step)
    view._total_items = total_items
    return view


class StoreView:
    """A row-range slice of a store, shipped to workers by handle."""

    __slots__ = ("_store", "start", "stop", "step", "_total_items")

    def __init__(
        self, store: TransactionStore, start: int, stop: int | None, step: int
    ):
        if step <= 0:
            raise StoreFormatError(f"step must be positive, got {step}")
        if start < 0:
            raise StoreFormatError(f"start must be >= 0, got {start}")
        self._store = store
        self.start = start
        self.stop = len(store) if stop is None else min(stop, len(store))
        self.step = step
        self._total_items: int | None = None

    @property
    def store(self) -> TransactionStore:
        return self._store

    def __len__(self) -> int:
        return len(range(self.start, self.stop, self.step))

    def total_items(self) -> int:
        if self._total_items is None:
            self._total_items = self._store.view_items(
                self.start, self.stop, self.step
            )
        return self._total_items

    def __iter__(self) -> Iterator[Row]:
        return self._store.iter_rows(self.start, self.stop, self.step)

    def to_list(self) -> list[Row]:
        """Materialise the view — **test helper only** (RL011 applies)."""
        return list(self)

    def __reduce__(self):
        return (
            _view_from_handle,
            (str(self._store.path), self.start, self.stop, self.step, self._total_items),
        )

    def __repr__(self) -> str:
        return (
            f"StoreView({str(self._store.path)!r}, start={self.start}, "
            f"stop={self.stop}, step={self.step})"
        )
