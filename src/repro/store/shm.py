"""Shared-memory arena: zero-pickle partitions for in-memory runs.

When a run's dataset is already in memory (a
:class:`~repro.datagen.corpus.TransactionDatabase` or store views), the
process-pool backend used to pickle every partition into every worker
task — BENCH_pr3 measured that overhead eating the entire parallel
speedup.  :class:`SharedArena` packs all partitions once into a single
:class:`multiprocessing.shared_memory.SharedMemory` block using the same
CSR columns as the on-disk store, and hands workers a
:class:`ShmView` — a handle that pickles as ``(block name, node index)``
and re-attaches to the block on first use.  Workers scan the shared
pages directly; nothing row-shaped ever crosses the pickle boundary.

Block layout (all little-endian)::

    u64                 num_nodes
    u64[3 * num_nodes]  directory: (byte offset, rows, items) per node
    per node, 8-byte aligned:
        u64[rows + 1]   CSR offsets
        u32[items]      item ids (padded to 8 bytes)

Lifecycle: the creating process owns the block and must call
:meth:`SharedArena.destroy` (the cluster does this from ``close()`` and
a finalizer).  Two CPython sharp edges shape the worker side:

* Attached ``SharedMemory`` objects re-register with the resource
  tracker on Python ≤ 3.12.  The executor's pool context prefers
  *fork*, where parent and children share one tracker and its cache is
  a set — the child's re-registration is a no-op and the creator's
  single ``unlink`` balances the books.  Explicitly unregistering after
  attach (the usual 3.11 workaround for *spawn* pools) would erase the
  creator's registration here, so it is deliberately not done.
* ``SharedMemory.close()`` raises ``BufferError`` while any cast
  memoryview into the block is alive, and ``__del__`` runs in GC order.
  :meth:`ShmView.__iter__` therefore scopes its column casts to the
  scan and releases them in a ``finally`` — after a scan completes, no
  exported pointers remain anywhere.
"""

from __future__ import annotations

import struct
from array import array
from collections.abc import Iterable, Iterator
from multiprocessing import shared_memory

from repro.errors import StoreFormatError
from repro.store.format import ITEM_WIDTH, MAX_ITEM, OFFSET_WIDTH, require_little_endian

Row = tuple[int, ...]

_U64 = struct.Struct("<Q")


def _pad8(size: int) -> int:
    return (size + 7) & ~7


class SharedArena:
    """All of a cluster's partitions packed into one shared block."""

    def __init__(self, block: shared_memory.SharedMemory, directory: list[tuple[int, int, int]]):
        self._block = block
        self._directory = directory
        self._destroyed = False

    @classmethod
    def from_partitions(
        cls, partitions: Iterable[Iterable[Row]]
    ) -> "SharedArena":
        """Pack partitions (one per node) into a new shared block.

        Each partition is materialised into CSR columns once here — the
        one unavoidable copy — and never pickled again.
        """
        require_little_endian()
        columns: list[tuple[array, array]] = []
        for partition in partitions:
            offsets = array("Q", [0])
            items = array("I")
            for row in partition:
                if row and (row[0] < 0 or row[-1] > MAX_ITEM):
                    raise StoreFormatError(
                        f"item ids must be in [0, {MAX_ITEM}], got {row[0]}..{row[-1]}"
                    )
                items.extend(row)
                offsets.append(len(items))
            columns.append((offsets, items))
        num_nodes = len(columns)
        directory_size = 8 + 24 * num_nodes
        cursor = _pad8(directory_size)
        directory: list[tuple[int, int, int]] = []
        for offsets, items in columns:
            rows = len(offsets) - 1
            directory.append((cursor, rows, len(items)))
            cursor += _pad8(OFFSET_WIDTH * (rows + 1) + ITEM_WIDTH * len(items))
        block = shared_memory.SharedMemory(create=True, size=max(cursor, 1))
        buffer = block.buf
        _U64.pack_into(buffer, 0, num_nodes)
        position = 8
        for entry in directory:
            for value in entry:
                _U64.pack_into(buffer, position, value)
                position += 8
        for (offset, rows, _items), (offsets, items) in zip(directory, columns):
            offsets_bytes = offsets.tobytes()
            buffer[offset : offset + len(offsets_bytes)] = offsets_bytes
            items_start = offset + len(offsets_bytes)
            items_bytes = items.tobytes()
            buffer[items_start : items_start + len(items_bytes)] = items_bytes
        return cls(block, directory)

    @property
    def name(self) -> str:
        return self._block.name

    @property
    def num_nodes(self) -> int:
        return len(self._directory)

    def arena_bytes(self) -> int:
        """Size of the shared block in bytes."""
        return self._block.size

    def view(self, node_index: int) -> "ShmView":
        """The picklable per-node handle over this arena."""
        if not 0 <= node_index < len(self._directory):
            raise StoreFormatError(
                f"node index {node_index} out of range [0, {len(self._directory)})"
            )
        offset, rows, items = self._directory[node_index]
        return ShmView(self.name, node_index, offset, rows, items, block=self._block)

    def destroy(self) -> None:
        """Close and unlink the block (creator side; idempotent)."""
        if self._destroyed:
            return
        self._destroyed = True
        try:
            self._block.close()
        except BufferError:  # pragma: no cover - a scan generator leaked
            # An abandoned scan still holds casts; the unlink below is
            # what reclaims the segment either way.
            pass
        try:
            self._block.unlink()
        except FileNotFoundError:  # pragma: no cover - already reclaimed
            pass


def _shm_view_from_handle(
    name: str, node_index: int, offset: int, rows: int, items: int
) -> "ShmView":
    """Re-attach a view in a worker (pickle target of ShmView)."""
    return ShmView(name, node_index, offset, rows, items, block=None)


class ShmView:
    """One node's partition inside a :class:`SharedArena` block.

    Satisfies the same partition protocol as
    :class:`~repro.store.reader.StoreView` (``__len__``,
    ``total_items``, iteration yielding sorted tuples) and pickles as a
    five-integer handle — attachment happens lazily on first scan.
    """

    __slots__ = ("name", "node_index", "offset", "rows", "items", "_block", "_owns_block")

    def __init__(
        self,
        name: str,
        node_index: int,
        offset: int,
        rows: int,
        items: int,
        block: shared_memory.SharedMemory | None = None,
    ):
        self.name = name
        self.node_index = node_index
        self.offset = offset
        self.rows = rows
        self.items = items
        self._block = block
        self._owns_block = block is None

    def _ensure_block(self) -> shared_memory.SharedMemory:
        if self._block is None:
            try:
                self._block = shared_memory.SharedMemory(name=self.name, create=False)
            except FileNotFoundError as exc:
                raise StoreFormatError(
                    f"shared arena {self.name!r} is gone (creator exited?)"
                ) from exc
        return self._block

    def __len__(self) -> int:
        return self.rows

    def total_items(self) -> int:
        return self.items

    def __iter__(self) -> Iterator[Row]:
        buffer = self._ensure_block().buf
        split = self.offset + OFFSET_WIDTH * (self.rows + 1)
        offsets = buffer[self.offset : split].cast("Q")
        item_column = buffer[split : split + ITEM_WIDTH * self.items].cast("I")
        try:
            for index in range(self.rows):
                begin = offsets[index]
                yield tuple(item_column[begin : offsets[index + 1]])
        finally:
            # Release the casts eagerly so the block can close without
            # "exported pointers exist" at interpreter shutdown.
            offsets.release()
            item_column.release()

    def close(self) -> None:
        """Release a worker-side attachment (never unlinks)."""
        if self._block is not None and self._owns_block:
            self._block.close()
            self._block = None

    def __reduce__(self):
        return (
            _shm_view_from_handle,
            (self.name, self.node_index, self.offset, self.rows, self.items),
        )

    def __repr__(self) -> str:
        return (
            f"ShmView(name={self.name!r}, node={self.node_index}, "
            f"rows={self.rows}, items={self.items})"
        )
