"""Atomic, manifest-last file commits for every published artifact.

Anything a reader may open while a writer is mid-crash — store manifests,
rule snapshots, refresh checkpoints, ``CURRENT`` pointers — must appear
on disk either whole or not at all.  These helpers implement the one
safe recipe: write the full payload to a same-directory temporary file,
flush it to stable storage, then :func:`os.replace` it over the target
(atomic on POSIX within one filesystem).  A crash before the replace
leaves the old artifact untouched; a crash after leaves the new one
complete.  There is no window in which a reader can observe a torn file.

Lint rule RL013 (``torn-publish``) enforces that manifest/snapshot/
pointer writes in the production tree go through this module instead of
calling ``Path.write_text`` / ``write_bytes`` directly.

The temporary name is deterministic (``<name>.tmp``): concurrent
writers to the same artifact are already a protocol violation
everywhere these helpers are used (one writer owns a store directory,
one driver owns a refresh root), and a deterministic name means a
crashed writer's leftover is reclaimed by the next successful commit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Commit ``data`` to ``path`` atomically; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    staging = target.with_name(target.name + ".tmp")
    with staging.open("wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(staging, target)
    return target


def atomic_write_text(path: str | Path, text: str, encoding: str = "utf-8") -> Path:
    """Commit ``text`` to ``path`` atomically; returns the path written."""
    return atomic_write_bytes(path, text.encode(encoding))


def atomic_write_json(path: str | Path, payload: dict, indent: int | None = 2) -> Path:
    """Commit a canonical (sorted-key) JSON document atomically."""
    text = json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    return atomic_write_text(path, text)
