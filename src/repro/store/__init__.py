"""Out-of-core columnar transaction store (`repro.store/v1`).

The store is how this repo escapes list-of-tuples datasets: a directory
of struct-packed CSR segments (``docs/store.md``) written by a streaming
path that never materialises the dataset, read back through mmap with
zero per-row decoding, and shipped to process-pool workers as tiny
handles instead of pickled rows.

Public API
----------
- :class:`StoreWriter` / :func:`write_store` — streaming segment writer.
- :class:`TransactionStore` / :func:`open_store` — digest-verified mmap
  reader; :meth:`TransactionStore.view` slices it into picklable
  per-node :class:`StoreView` handles.
- :class:`SharedArena` / :class:`ShmView` — the same columns packed into
  one ``multiprocessing.shared_memory`` block for in-memory runs.
- :mod:`repro.store.format` — header/manifest constants and validators.
"""

from repro.store.format import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    STORE_SCHEMA,
    TAXONOMY_NAME,
)
from repro.store.reader import StoreView, TransactionStore, open_store
from repro.store.shm import SharedArena, ShmView
from repro.store.writer import DEFAULT_SEGMENT_ROWS, StoreWriter, write_store

__all__ = [
    "DEFAULT_SEGMENT_ROWS",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "STORE_SCHEMA",
    "TAXONOMY_NAME",
    "SharedArena",
    "ShmView",
    "StoreView",
    "StoreWriter",
    "TransactionStore",
    "open_store",
    "write_store",
]
