"""On-disk segment format of the columnar transaction store.

A store is a directory: a ``store.json`` manifest plus one or more
``seg-NNNNN.bin`` segment files.  Each segment is a CSR-style columnar
block of transactions:

========  =======================  =========================================
offset    field                    contents
========  =======================  =========================================
0         header (64 bytes)        magic ``GARSTOR1``, format version,
                                   flags, item width, row/item counts
64        offsets ``uint64[r+1]``  CSR row boundaries into the item column
64+8(r+1) items ``uint32[i]``      item ids, row-major, each row sorted
========  =======================  =========================================

All integers are little-endian with native alignment, so an mmap of the
file is directly addressable as fixed-width columns (``memoryview.cast``
or ``numpy.frombuffer``) — readers never copy or decode rows into Python
objects until a scan actually touches them.  The manifest records a
sha256 digest per segment; :func:`repro.store.reader.open_store` verifies
them before the first row is served, so a corrupt or truncated segment
fails loudly (:class:`~repro.errors.StoreFormatError`) instead of mining
garbage.

The format is versioned through ``STORE_SCHEMA`` / ``FORMAT_VERSION``:
readers reject manifests or headers from a different major version with
a clear error naming both versions.
"""

from __future__ import annotations

import hashlib
import struct
import sys

from repro.errors import StoreFormatError

#: Manifest schema tag (the store directory's ``store.json``).
STORE_SCHEMA = "repro.store/v1"

#: Segment header format version (bumped on any binary layout change).
FORMAT_VERSION = 1

#: First 8 bytes of every segment file.
MAGIC = b"GARSTOR1"

#: magic, version u16, flags u16, item width u32, rows u64, items u64,
#: then zero padding to a fixed 64-byte header.
HEADER = struct.Struct("<8sHHIQQ32x")
HEADER_SIZE = HEADER.size

#: Fixed-width dtypes of the two columns.
OFFSET_WIDTH = 8  # uint64
ITEM_WIDTH = 4  # uint32

#: Maximum representable item id (the item column is uint32).
MAX_ITEM = 2**32 - 1

MANIFEST_NAME = "store.json"
TAXONOMY_NAME = "taxonomy.txt"


def segment_name(index: int) -> str:
    """Canonical file name of segment ``index`` (``seg-00000.bin``)."""
    return f"seg-{index:05d}.bin"


def pack_header(rows: int, items: int) -> bytes:
    """The 64-byte segment header for ``rows`` transactions, ``items`` ids."""
    return HEADER.pack(MAGIC, FORMAT_VERSION, 0, ITEM_WIDTH, rows, items)


def unpack_header(data: bytes, context: str) -> tuple[int, int]:
    """Validate a segment header; returns ``(rows, items)``.

    ``context`` names the segment in error messages.
    """
    if len(data) < HEADER_SIZE:
        raise StoreFormatError(f"{context}: truncated header ({len(data)} bytes)")
    magic, version, _flags, item_width, rows, items = HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise StoreFormatError(f"{context}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise StoreFormatError(
            f"{context}: segment format version {version} "
            f"(this reader understands {FORMAT_VERSION})"
        )
    if item_width != ITEM_WIDTH:
        raise StoreFormatError(
            f"{context}: item width {item_width} (expected {ITEM_WIDTH})"
        )
    return rows, items


def segment_size(rows: int, items: int) -> int:
    """Exact file size of a segment with ``rows`` rows and ``items`` ids."""
    return HEADER_SIZE + OFFSET_WIDTH * (rows + 1) + ITEM_WIDTH * items


def segment_digest(data: bytes | memoryview) -> str:
    """sha256 hex digest over one whole segment file."""
    return hashlib.sha256(data).hexdigest()


def require_little_endian() -> None:
    """The columns are little-endian; mmap reads cast them natively."""
    if sys.byteorder != "little":  # pragma: no cover - exotic platforms
        raise StoreFormatError(
            "the transaction store requires a little-endian host "
            f"(this machine is {sys.byteorder}-endian)"
        )
