"""Canonical itemsets and the brute-force support oracle.

An *itemset* throughout the library is a sorted tuple of distinct item
ids.  Sorted tuples hash fast, compare deterministically, and make
``apriori-gen``'s prefix join trivial.

This module also implements the paper's containment definition directly
(Section 2): a transaction ``t`` *contains* itemset ``X`` when every
``x ∈ X`` is in ``t`` **or is an ancestor of some item of** ``t``.  The
resulting :func:`itemset_support` is deliberately naive — it is the
ground-truth oracle the fast algorithms are tested against.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.datagen.corpus import TransactionDatabase
from repro.errors import MiningError
from repro.taxonomy.hierarchy import Taxonomy

Itemset = tuple[int, ...]


def canonical(items: Iterable[int]) -> Itemset:
    """Normalise any iterable of item ids into a canonical itemset.

    Raises :class:`~repro.errors.MiningError` on duplicates — a set of
    items cannot contain an item twice, and silently deduplicating would
    hide caller bugs (e.g. joining an item with itself).
    """
    itemset = tuple(sorted(items))
    if len(set(itemset)) != len(itemset):
        raise MiningError(f"duplicate items in itemset {itemset}")
    return itemset


def has_ancestor_pair(itemset: Itemset, taxonomy: Taxonomy) -> bool:
    """True when the itemset contains both an item and one of its ancestors.

    Such itemsets are never counted (Cumulate's pass-2 optimization):
    support({x, ancestor(x)}) == support({x}), so they carry no
    information and their rules are redundant.
    """
    members = set(itemset)
    for item in itemset:
        if item not in taxonomy:
            continue
        for ancestor in taxonomy.ancestors(item):
            if ancestor in members:
                return True
    return False


def transaction_contains(
    transaction: Iterable[int],
    itemset: Itemset,
    taxonomy: Taxonomy,
) -> bool:
    """Paper Section 2 containment: every x ∈ itemset is in t or an ancestor of an item of t."""
    present: set[int] = set()
    for item in transaction:
        present.add(item)
        if item in taxonomy:
            present.update(taxonomy.ancestors(item))
    return all(x in present for x in itemset)


def itemset_support(
    database: TransactionDatabase,
    itemset: Itemset,
    taxonomy: Taxonomy,
) -> int:
    """Number of transactions containing ``itemset`` (brute force oracle)."""
    return sum(
        1
        for transaction in database
        if transaction_contains(transaction, itemset, taxonomy)
    )


def support_fraction(count: int, num_transactions: int) -> float:
    """Convert a raw support count into the fraction the thresholds use."""
    if num_transactions <= 0:
        raise MiningError("support fraction undefined for an empty database")
    return count / num_transactions


def minimum_count(min_support: float, num_transactions: int) -> int:
    """Smallest raw count that satisfies a fractional ``min_support``.

    A candidate is large when ``count / n >= min_support``; the integer
    threshold is ``ceil(min_support * n)`` computed without floating-
    point drift.
    """
    if not 0 < min_support <= 1:
        raise MiningError(f"min_support must be in (0, 1], got {min_support}")
    # ceil with a tolerance so 0.003 * 1000 == 3.0000000000000004 still
    # yields 3 rather than 4.
    threshold = math.ceil(min_support * num_transactions - 1e-9)
    return max(threshold, 1)
