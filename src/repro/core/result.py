"""Result containers shared by the sequential and parallel miners.

The containers carry raw counts rather than fractions: counts are exact
integers, and every consumer (rule generation, the experiment harness,
the equality tests between algorithms) derives fractions on demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.itemsets import Itemset
from repro.errors import MiningError


@dataclass(frozen=True)
class PassResult:
    """Outcome of one mining pass.

    Attributes
    ----------
    k:
        Itemset size of the pass.
    num_candidates:
        ``|Ck|`` after all generation-time filters.
    large:
        The large k-itemsets with their raw support counts.
    """

    k: int
    num_candidates: int
    large: dict[Itemset, int]

    @property
    def num_large(self) -> int:
        return len(self.large)


@dataclass(frozen=True)
class MiningResult:
    """Full outcome of a frequent-itemset mining run.

    Algorithm-independent: Cumulate and all six parallel algorithms
    produce structurally identical results (and the test suite asserts
    they are *equal*).
    """

    min_support: float
    num_transactions: int
    passes: list[PassResult] = field(default_factory=list)

    def large_itemsets(self, k: int | None = None) -> dict[Itemset, int]:
        """Large itemsets with counts; all sizes merged when ``k`` is None."""
        if k is not None:
            for pass_result in self.passes:
                if pass_result.k == k:
                    return dict(pass_result.large)
            return {}
        merged: dict[Itemset, int] = {}
        for pass_result in self.passes:
            merged.update(pass_result.large)
        return merged

    def support_count(self, itemset: Itemset) -> int:
        """Raw count of a large itemset; raises if it is not large."""
        for pass_result in self.passes:
            if pass_result.k == len(itemset):
                try:
                    return pass_result.large[itemset]
                except KeyError:
                    break
        raise MiningError(f"{itemset} is not a large itemset of this result")

    def support(self, itemset: Itemset) -> float:
        """Support fraction of a large itemset."""
        return self.support_count(itemset) / self.num_transactions

    @property
    def max_k(self) -> int:
        """Largest itemset size with at least one large itemset."""
        sizes = [p.k for p in self.passes if p.large]
        return max(sizes, default=0)

    @property
    def total_large(self) -> int:
        return sum(p.num_large for p in self.passes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MiningResult):
            return NotImplemented
        return (
            self.min_support == other.min_support
            and self.num_transactions == other.num_transactions
            and self.large_itemsets() == other.large_itemsets()
        )

    def __repr__(self) -> str:
        per_pass = ", ".join(f"|L{p.k}|={p.num_large}" for p in self.passes)
        return (
            f"MiningResult(min_support={self.min_support}, "
            f"n={self.num_transactions}, {per_pass})"
        )


@dataclass(frozen=True)
class Rule:
    """One association rule ``antecedent ⇒ consequent``.

    ``support`` and ``confidence`` are fractions in [0, 1].
    """

    antecedent: Itemset
    consequent: Itemset
    support: float
    confidence: float

    def __str__(self) -> str:
        lhs = ", ".join(map(str, self.antecedent))
        rhs = ", ".join(map(str, self.consequent))
        return (
            f"{{{lhs}}} => {{{rhs}}} "
            f"(sup={self.support:.4f}, conf={self.confidence:.4f})"
        )
