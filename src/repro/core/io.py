"""Mining-result serialization (JSON).

Round-trips :class:`~repro.core.result.MiningResult` through a stable
JSON document, so long runs can be archived and rule generation or
reporting re-run without re-mining.  Itemsets are encoded as lists
(JSON has no tuples); decoding restores canonical tuples.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.result import MiningResult, PassResult
from repro.errors import TransactionFormatError

_FORMAT = "repro-mining-result-v1"


def result_to_dict(result: MiningResult) -> dict:
    """JSON-ready dictionary form of a mining result."""
    return {
        "format": _FORMAT,
        "min_support": result.min_support,
        "num_transactions": result.num_transactions,
        "passes": [
            {
                "k": pass_result.k,
                "num_candidates": pass_result.num_candidates,
                "large": [
                    {"itemset": list(itemset), "count": count}
                    for itemset, count in sorted(pass_result.large.items())
                ],
            }
            for pass_result in result.passes
        ],
    }


def result_from_dict(document: dict) -> MiningResult:
    """Inverse of :func:`result_to_dict` (validated)."""
    if document.get("format") != _FORMAT:
        raise TransactionFormatError(
            f"not a {_FORMAT} document (format={document.get('format')!r})"
        )
    try:
        result = MiningResult(
            min_support=float(document["min_support"]),
            num_transactions=int(document["num_transactions"]),
        )
        for pass_document in document["passes"]:
            large = {
                tuple(entry["itemset"]): int(entry["count"])
                for entry in pass_document["large"]
            }
            result.passes.append(
                PassResult(
                    k=int(pass_document["k"]),
                    num_candidates=int(pass_document["num_candidates"]),
                    large=large,
                )
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise TransactionFormatError(f"malformed result document: {exc}") from exc
    return result


def save_result(result: MiningResult, path: str | Path) -> None:
    """Write a mining result as JSON."""
    Path(path).write_text(
        json.dumps(result_to_dict(result), indent=1), encoding="utf-8"
    )


def load_result(path: str | Path) -> MiningResult:
    """Read a mining result written by :func:`save_result`."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TransactionFormatError(f"{path}: invalid JSON") from exc
    return result_from_dict(document)
