"""Cumulate [SA95]: sequential mining of generalized association rules.

This is the algorithm every parallel method in the paper parallelizes,
with all three of its optimizations:

1. pass-2 candidates pairing an item with its ancestor are deleted;
2. ancestors not referenced by any candidate are pruned from the
   hierarchy before transactions are extended;
3. each transaction is extended with (the surviving) ancestors exactly
   once per pass.

The implementation is the reference for correctness: the test suite
checks it against the brute-force oracle, and checks every parallel
algorithm against it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.candidates import candidate_item_universe, generate_candidates
from repro.core.counting import SupportCounter, count_items
from repro.core.itemsets import Itemset, minimum_count
from repro.core.result import MiningResult, PassResult
from repro.errors import MiningError
from repro.datagen.corpus import TransactionDatabase
from repro.taxonomy.hierarchy import Taxonomy
from repro.taxonomy.ops import AncestorIndex

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.perf.config import CountingConfig


def cumulate(
    database: "TransactionDatabase | None",
    taxonomy: Taxonomy,
    min_support: float,
    strategy: str = "auto",
    max_k: int | None = None,
    counting: "CountingConfig | None" = None,
) -> MiningResult:
    """Find all large generalized itemsets of ``database``.

    Parameters
    ----------
    database:
        The transaction source: an in-memory
        :class:`~repro.datagen.corpus.TransactionDatabase` or an opened
        :class:`~repro.store.reader.TransactionStore` (both are scanned
        identically).  May be ``None`` when ``counting.store`` names a
        store directory, which is then opened (digest-verified) and
        mined out-of-core.
    taxonomy:
        Classification hierarchy over the items.
    min_support:
        Fractional minimum support in (0, 1].
    strategy:
        Counting strategy passed to
        :class:`~repro.core.counting.SupportCounter` (ignored when
        ``counting`` is given).
    max_k:
        Optional cap on the itemset size (useful for pass-2-only
        experiments, which is what the paper's evaluation measures).
    counting:
        Optional :class:`~repro.perf.config.CountingConfig`: route
        counting through the fast trie kernels with distinct-transaction
        deduplication, and/or point the run at an on-disk store via
        ``counting.store``.  Results are identical either way.

    Returns
    -------
    MiningResult
        Per-pass large itemsets with raw support counts.
    """
    if database is None:
        if counting is None or counting.store is None:
            raise MiningError(
                "cumulate needs a database or a counting config with store="
            )
        from repro.store import open_store

        database = open_store(counting.store)
    num_transactions = len(database)
    if num_transactions == 0:
        raise MiningError("cannot mine an empty database")
    threshold = minimum_count(min_support, num_transactions)
    result = MiningResult(min_support=min_support, num_transactions=num_transactions)

    # Pass 1: count every item together with all of its ancestors.
    full_index = AncestorIndex(taxonomy)
    item_counts = count_items(database, full_index)
    large_1 = {
        (item,): count for item, count in sorted(item_counts.items()) if count >= threshold
    }
    result.passes.append(
        PassResult(k=1, num_candidates=len(item_counts), large=large_1)
    )

    # Dedup once for the whole run: the distinct-transaction weights are
    # pass-independent (dedup precedes extension and filtering).
    weighted = None
    if counting is not None and counting.fast and counting.dedup:
        from repro.perf.preprocess import dedup_with_weights

        weighted = dedup_with_weights(database)

    previous: dict[Itemset, int] = large_1
    k = 2
    while previous and (max_k is None or k <= max_k):
        candidates = generate_candidates(sorted(previous), k, taxonomy)
        if not candidates:
            break
        # Optimization 2: extend transactions only with ancestors that
        # some candidate still references.
        universe = candidate_item_universe(candidates)
        index = AncestorIndex(taxonomy, keep=universe)
        if counting is not None:
            counter = counting.support_counter(candidates, k)
        else:
            counter = SupportCounter(candidates, k, strategy=strategy)
        if weighted is not None:
            for transaction, weight in weighted:
                counter.add_transaction(index.extend(transaction), weight=weight)
        else:
            for transaction in database:
                counter.add_transaction(index.extend(transaction))
        large_k = {
            itemset: count
            for itemset, count in sorted(counter.counts.items())
            if count >= threshold
        }
        result.passes.append(
            PassResult(k=k, num_candidates=len(candidates), large=large_k)
        )
        previous = large_k
        k += 1

    return result
