"""Flat (non-hierarchical) Apriori [RR94].

Included both as the classic substrate Cumulate extends and as an
independently useful miner: on a taxonomy-free workload, Cumulate with
an empty hierarchy and Apriori must agree (a test asserts this).
"""

from __future__ import annotations

from repro.core.candidates import apriori_gen
from repro.core.counting import SupportCounter
from repro.core.itemsets import Itemset, minimum_count
from repro.core.result import MiningResult, PassResult
from repro.datagen.corpus import TransactionDatabase
from repro.errors import MiningError


def apriori(
    database: TransactionDatabase,
    min_support: float,
    strategy: str = "auto",
    max_k: int | None = None,
) -> MiningResult:
    """Find all large itemsets of a flat transaction database.

    Parameters mirror :func:`~repro.core.cumulate.cumulate`, minus the
    taxonomy.
    """
    num_transactions = len(database)
    if num_transactions == 0:
        raise MiningError("cannot mine an empty database")
    threshold = minimum_count(min_support, num_transactions)
    result = MiningResult(min_support=min_support, num_transactions=num_transactions)

    item_counts: dict[int, int] = {}
    for transaction in database:
        for item in transaction:
            item_counts[item] = item_counts.get(item, 0) + 1
    large_1 = {
        (item,): count for item, count in sorted(item_counts.items()) if count >= threshold
    }
    result.passes.append(
        PassResult(k=1, num_candidates=len(item_counts), large=large_1)
    )

    previous: dict[Itemset, int] = large_1
    k = 2
    while previous and (max_k is None or k <= max_k):
        candidates = apriori_gen(sorted(previous), k)
        if not candidates:
            break
        counter = SupportCounter(candidates, k, strategy=strategy)
        for transaction in database:
            counter.add_transaction(transaction)
        large_k = {
            itemset: count
            for itemset, count in sorted(counter.counts.items())
            if count >= threshold
        }
        result.passes.append(
            PassResult(k=k, num_candidates=len(candidates), large=large_k)
        )
        previous = large_k
        k += 1

    return result
