"""Rule generation — subproblem 2 of Section 2, plus [SA95] extras.

From every large itemset ``X`` (k >= 2) and every non-empty proper
subset ``A``, the rule ``A ⇒ X − A`` is emitted when its confidence
``sup(X) / sup(A)`` reaches the threshold, subject to the paper's
redundancy constraint: *no item of the consequent may be an ancestor of
any item of the antecedent* (such rules hold with confidence 100% by
construction and carry no information).

As an extension, :func:`interesting_rules` implements the
*R-interesting* filter of Srikant & Agrawal [SA95]: a rule is pruned
when a close-ancestor rule (one item replaced by its parent) already
predicts its support and confidence to within a factor ``R``.
"""

from __future__ import annotations

from itertools import chain, combinations

from repro.core.itemsets import Itemset
from repro.core.result import MiningResult, Rule
from repro.errors import MiningError
from repro.taxonomy.hierarchy import Taxonomy


def _proper_subsets(itemset: Itemset) -> chain[tuple[int, ...]]:
    """All non-empty proper subsets, smallest first."""
    return chain.from_iterable(
        combinations(itemset, size) for size in range(1, len(itemset))
    )


def _consequent_has_antecedent_ancestor(
    antecedent: Itemset,
    consequent: Itemset,
    taxonomy: Taxonomy,
) -> bool:
    """True when some consequent item is an ancestor of an antecedent item."""
    consequent_set = set(consequent)
    for item in antecedent:
        if item not in taxonomy:
            continue
        if consequent_set.intersection(taxonomy.ancestors(item)):
            return True
    return False


def generate_rules(
    result: MiningResult,
    min_confidence: float,
    taxonomy: Taxonomy | None = None,
) -> list[Rule]:
    """Derive all rules meeting ``min_confidence`` from a mining result.

    Parameters
    ----------
    result:
        Output of any miner in this library (sequential or parallel).
    min_confidence:
        Fractional confidence threshold in (0, 1].
    taxonomy:
        When given, rules whose consequent contains an ancestor of an
        antecedent item are suppressed (the paper's redundancy rule).

    Returns
    -------
    Rules sorted by descending confidence then descending support.
    """
    if not 0 < min_confidence <= 1:
        raise MiningError(
            f"min_confidence must be in (0, 1], got {min_confidence}"
        )
    supports = result.large_itemsets()
    n = result.num_transactions
    rules: list[Rule] = []
    for itemset, count in sorted(supports.items()):
        if len(itemset) < 2:
            continue
        for antecedent in _proper_subsets(itemset):
            antecedent_count = supports.get(antecedent)
            if antecedent_count is None:
                # Cannot happen for a complete Apriori-style result
                # (support is monotone), but be robust to truncated runs.
                continue
            confidence = count / antecedent_count
            if confidence < min_confidence:
                continue
            consequent = tuple(i for i in itemset if i not in set(antecedent))
            if taxonomy is not None and _consequent_has_antecedent_ancestor(
                antecedent, consequent, taxonomy
            ):
                continue
            rules.append(
                Rule(
                    antecedent=antecedent,
                    consequent=consequent,
                    support=count / n,
                    confidence=confidence,
                )
            )
    rules.sort(key=lambda r: (-r.confidence, -r.support, r.antecedent, r.consequent))
    return rules


def rule_interest(
    rule: Rule,
    by_key: dict[tuple[Itemset, Itemset], Rule],
    supports: dict[Itemset, int],
    taxonomy: Taxonomy,
) -> float | None:
    """The R-interest ratio of one rule against its close ancestors.

    For every *close ancestor* rule (the same rule with exactly one item
    replaced by its parent, when that rule exists in ``by_key``) the
    ancestor predicts this rule's support and confidence (see
    :func:`interesting_rules`).  The interest ratio is the worst-case
    headroom over those predictions::

        min over ancestors of max(sup / expected_sup, conf / expected_conf)

    ``None`` means no close-ancestor rule exists — nothing predicts the
    rule, so it is unconditionally interesting.  A rule is R-interesting
    exactly when its ratio is ``None`` or ``>= R``; the serving layer
    (:mod:`repro.serve`) also uses the ratio directly as a ranking score.
    """
    ratio_floor: float | None = None
    full = tuple(sorted(rule.antecedent + rule.consequent))
    for item in full:
        if item not in taxonomy:
            continue
        parent = taxonomy.parent(item)
        if parent is None or parent in full:
            continue
        child_sup = supports.get((item,))
        parent_sup = supports.get((parent,))
        if not child_sup or not parent_sup:
            continue
        replace = {item: parent}
        ancestor_antecedent = tuple(
            sorted(replace.get(i, i) for i in rule.antecedent)
        )
        ancestor_consequent = tuple(
            sorted(replace.get(i, i) for i in rule.consequent)
        )
        ancestor_rule = by_key.get((ancestor_antecedent, ancestor_consequent))
        if ancestor_rule is None:
            continue
        ratio = child_sup / parent_sup
        expected_support = ancestor_rule.support * ratio
        expected_confidence = ancestor_rule.confidence * (
            ratio if item in rule.consequent else 1.0
        )
        headroom = max(
            rule.support / expected_support,
            rule.confidence / expected_confidence,
        )
        if ratio_floor is None or headroom < ratio_floor:
            ratio_floor = headroom
    return ratio_floor


def interesting_rules(
    rules: list[Rule],
    result: MiningResult,
    taxonomy: Taxonomy,
    min_interest: float = 1.1,
) -> list[Rule]:
    """Keep only the R-interesting rules [SA95, Section 2.2].

    A rule ``A ⇒ C`` is pruned when some *close ancestor* rule — the
    same rule with exactly one item replaced by its parent — exists
    among ``rules`` and predicts both this rule's support and confidence
    to within a factor ``min_interest``.  The expected support of the
    specialised rule is the ancestor rule's support scaled by
    ``sup(item) / sup(parent)`` of the replaced item; the expected
    confidence scales by that ratio only when the replaced item sits in
    the consequent (an antecedent replacement rescales numerator and
    denominator alike, so the expected confidence is unchanged).

    Parameters
    ----------
    rules:
        Candidate rules (typically the output of :func:`generate_rules`).
    result:
        The mining result the rules came from (for item supports).
    taxonomy:
        The classification hierarchy.
    min_interest:
        The factor ``R``; [SA95] uses 1.1.
    """
    if min_interest <= 0:
        raise MiningError(f"min_interest must be positive, got {min_interest}")
    supports = result.large_itemsets()
    by_key = {(rule.antecedent, rule.consequent): rule for rule in rules}
    kept: list[Rule] = []
    for rule in rules:
        ratio = rule_interest(rule, by_key, supports, taxonomy)
        if ratio is None or ratio >= min_interest:
            kept.append(rule)
    return kept
