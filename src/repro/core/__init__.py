"""Sequential mining substrate: Apriori, Cumulate, and rule generation.

This subpackage is the paper's sequential baseline — everything a single
node runs.  The parallel algorithms in :mod:`repro.parallel` reuse the
candidate generation and counting kernels defined here, which is also
what makes the "every parallel algorithm computes exactly Cumulate's
answer" tests meaningful.

Modules
-------
itemsets
    Canonical itemset representation and the brute-force support oracle.
hash_tree
    The classic Apriori hash-tree candidate index.
candidates
    ``apriori-gen`` join + prune, and the hierarchy-aware pass-2 filter.
counting
    Per-transaction support-counting kernels (subset enumeration and
    hash-tree traversal).
apriori
    Flat (non-hierarchical) Apriori.
cumulate
    Cumulate [SA95] — generalized association mining, the reference the
    parallel algorithms must agree with.
rules
    Rule derivation (subproblem 2), ancestor-redundancy pruning, and the
    R-interesting filter of [SA95].
result
    Result containers shared by sequential and parallel miners.
"""

from repro.core.apriori import apriori
from repro.core.candidates import apriori_gen, generate_candidates
from repro.core.cumulate import cumulate
from repro.core.hash_tree import HashTree
from repro.core.itemsets import (
    canonical,
    itemset_support,
    transaction_contains,
)
from repro.core.result import MiningResult, PassResult, Rule
from repro.core.rules import generate_rules, interesting_rules, rule_interest
from repro.core.stratify import stratify

__all__ = [
    "HashTree",
    "MiningResult",
    "PassResult",
    "Rule",
    "apriori",
    "apriori_gen",
    "canonical",
    "cumulate",
    "generate_candidates",
    "generate_rules",
    "interesting_rules",
    "itemset_support",
    "rule_interest",
    "stratify",
    "transaction_contains",
]
