"""Candidate generation: ``apriori-gen`` plus the hierarchy-aware filters.

``apriori-gen`` [RR94] builds candidate k-itemsets from the large
(k-1)-itemsets in two steps:

* **Join** — pairs of large (k-1)-itemsets sharing their first k-2 items
  are merged.
* **Prune** — any candidate with a (k-1)-subset that is not large is
  discarded.

Cumulate [SA95] adds two hierarchy-specific steps used by every
algorithm in the paper:

* at pass 2, drop candidates pairing an item with its own ancestor
  (their support equals the descendant's — pure redundancy);
* each pass, compute the set of ancestors still referenced by any
  candidate, so transaction extension can skip the rest ("delete any
  ancestors in T that are not present in the candidates").
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from itertools import combinations

from repro.core.itemsets import Itemset, has_ancestor_pair
from repro.errors import MiningError
from repro.taxonomy.hierarchy import Taxonomy


def apriori_gen(large_prev: Collection[Itemset], k: int) -> list[Itemset]:
    """Generate candidate k-itemsets from the large (k-1)-itemsets.

    Parameters
    ----------
    large_prev:
        The large (k-1)-itemsets (canonical sorted tuples).
    k:
        Target itemset size (>= 2).

    Returns
    -------
    Sorted list of candidate k-itemsets after the join and subset-prune
    steps.
    """
    if k < 2:
        raise MiningError(f"apriori_gen needs k >= 2, got {k}")
    large_set = set(large_prev)
    ordered = sorted(large_set)
    for itemset in ordered:
        if len(itemset) != k - 1:
            raise MiningError(
                f"expected ({k - 1})-itemsets, got {itemset!r}"
            )

    # Join: group by (k-2)-prefix; merge every ordered pair within a group.
    by_prefix: dict[Itemset, list[int]] = {}
    for itemset in ordered:
        by_prefix.setdefault(itemset[:-1], []).append(itemset[-1])

    candidates: list[Itemset] = []
    for prefix, tails in sorted(by_prefix.items()):
        for a, b in combinations(tails, 2):
            candidate = prefix + (a, b)
            if _all_subsets_large(candidate, large_set, k):
                candidates.append(candidate)
    candidates.sort()
    return candidates


def _all_subsets_large(candidate: Itemset, large_set: set[Itemset], k: int) -> bool:
    """Prune step: every (k-1)-subset of the candidate must be large.

    The two subsets obtained by dropping one of the last two items are
    the join operands themselves, so only the remaining k-2 subsets are
    checked.
    """
    for drop in range(k - 2):
        subset = candidate[:drop] + candidate[drop + 1 :]
        if subset not in large_set:
            return False
    return True


def filter_ancestor_pairs(
    candidates: Iterable[Itemset],
    taxonomy: Taxonomy,
) -> list[Itemset]:
    """Drop candidates containing both an item and one of its ancestors.

    Cumulate applies this at pass 2 only: for k > 2 the prune step
    already removes such candidates because their 2-subsets were never
    large candidates.
    """
    return [c for c in candidates if not has_ancestor_pair(c, taxonomy)]


def generate_candidates(
    large_prev: Collection[Itemset],
    k: int,
    taxonomy: Taxonomy | None = None,
) -> list[Itemset]:
    """Full per-pass candidate generation as every algorithm runs it.

    ``apriori-gen`` join + prune, then (pass 2, with a taxonomy) the
    ancestor-pair filter.
    """
    candidates = apriori_gen(large_prev, k)
    if k == 2 and taxonomy is not None:
        candidates = filter_ancestor_pairs(candidates, taxonomy)
    return candidates


def candidate_item_universe(candidates: Iterable[Itemset]) -> set[int]:
    """Every item referenced by at least one candidate."""
    universe: set[int] = set()
    for candidate in candidates:
        universe.update(candidate)
    return universe


def referenced_ancestors(
    candidates: Iterable[Itemset],
    taxonomy: Taxonomy,
) -> set[int]:
    """Interior items that transaction extension must still add.

    Implements "delete any ancestors in T that are not present in any of
    the candidates": only candidate-referenced items can ever complete a
    candidate, so they are the only ancestors worth adding to a
    transaction.
    """
    return {
        item
        for item in candidate_item_universe(candidates)
        if item in taxonomy and not taxonomy.is_leaf(item)
    }
