"""Support-counting kernels shared by the sequential and parallel miners.

Three kernels:

* :func:`count_items` — pass 1: count every item and every ancestor,
  once per transaction.
* :class:`SupportCounter` — pass k >= 2 for Cumulate/Apriori/NPGM/HPGM
  styles: given an (already extended) transaction, find which candidates
  it contains.  Strategy ``"dict"`` enumerates k-subsets and probes a
  hash map; ``"hashtree"`` traverses a classic Apriori hash tree;
  ``"auto"`` picks by candidate density.
* :class:`AncestorClosureCounter` — the H-HPGM-family kernel: the
  transaction holds only *lowest large* items, and every generated
  k-itemset is counted together with all of its **ancestor candidates**
  (Figure 5, lines 12/16).  Because valid candidates never pair an item
  with its own ancestor, this closure reproduces Cumulate's containment
  exactly (see DESIGN.md §5).

Every kernel exposes a ``probes`` counter — the number of candidate
lookups performed — which is the workload metric the paper plots in
Figure 15.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Collection, Iterable, Mapping
from itertools import combinations, product
from math import comb

from repro.core.hash_tree import HashTree
from repro.core.itemsets import Itemset
from repro.errors import MiningError
from repro.taxonomy.ops import AncestorIndex

#: ``strategy="auto"`` crossover: when the candidates fill at least this
#: fraction of the k-subset space over their own item universe, blind
#: subset enumeration ("dict") probes mostly hits and wins; below it the
#: hash tree's shared-prefix pruning skips most of the misses.
AUTO_DENSITY_CROSSOVER = 1.0 / 64.0


def choose_strategy(num_candidates: int, k: int, universe_size: int) -> str:
    """Pick ``"dict"`` or ``"hashtree"`` from candidate density.

    The dict strategy enumerates every k-subset of the (filtered)
    transaction and probes a hash map — work independent of how many
    candidates exist.  The hash tree only descends branches shared with
    the transaction, so its work shrinks with candidate sparsity.  The
    candidate *density* — ``|C| / C(|universe|, k)`` — is therefore the
    deciding ratio: at least :data:`AUTO_DENSITY_CROSSOVER` picks
    ``"dict"``, below it ``"hashtree"``.
    """
    if num_candidates == 0 or universe_size < k:
        return "dict"
    subset_space = comb(universe_size, k)
    if num_candidates >= subset_space * AUTO_DENSITY_CROSSOVER:
        return "dict"
    return "hashtree"


def count_items(
    transactions: Iterable[tuple[int, ...]],
    index: AncestorIndex,
) -> dict[int, int]:
    """Pass-1 counting: each item and each of its ancestors, per transaction.

    Ancestors are deduplicated within a transaction (two siblings only
    count their shared parent once), matching the Section 2 containment
    definition for 1-itemsets.  The per-item ancestor tuples are already
    cached in the :class:`~repro.taxonomy.ops.AncestorIndex`; on top of
    that the (dedup-preserving) extension of each *distinct* transaction
    is computed once and bulk-added via :meth:`collections.Counter.update`
    — synthetic corpora repeat transactions heavily, so pass 1 stops
    re-deriving the same extension thousands of times.
    """
    counts: Counter[int] = Counter()
    extension_cache: dict[tuple[int, ...], tuple[int, ...]] = {}
    for transaction in transactions:
        extended = extension_cache.get(transaction)
        if extended is None:
            extended = index.extend(transaction)
            extension_cache[transaction] = extended
        counts.update(extended)
    return dict(counts)


class SupportCounter:
    """Counts contained candidates for fully extended transactions.

    Parameters
    ----------
    candidates:
        The candidate k-itemsets.  Order is irrelevant.
    k:
        Itemset size.
    strategy:
        ``"dict"`` — enumerate the transaction's k-subsets and probe a
        hash map (good when transactions are short after filtering).
        ``"hashtree"`` — classic Apriori hash tree traversal (good when
        candidates are sparse relative to the subset space).
        ``"auto"`` — picked by :func:`choose_strategy` from the
        candidate density over the candidates' own item universe.
    """

    def __init__(
        self,
        candidates: Collection[Itemset],
        k: int,
        strategy: str = "auto",
    ):
        if k <= 0:
            raise MiningError(f"k must be positive, got {k}")
        if strategy not in ("auto", "dict", "hashtree"):
            raise MiningError(f"unknown counting strategy {strategy!r}")
        self.k = k
        self.counts: dict[Itemset, int] = {c: 0 for c in candidates}
        self.probes = 0
        self.generated = 0
        self._universe = {item for c in self.counts for item in c}
        if strategy == "auto":
            strategy = choose_strategy(len(self.counts), k, len(self._universe))
        self._strategy = strategy
        self._tree: HashTree | None = None
        if self._strategy == "hashtree":
            self._tree = HashTree(k)
            for candidate in self.counts:
                self._tree.insert(candidate)

    @property
    def strategy(self) -> str:
        """The resolved counting strategy (``"auto"`` never survives)."""
        return self._strategy

    def add_transaction(self, transaction: tuple[int, ...]) -> int:
        """Count one extended, sorted transaction; returns hits."""
        if self._tree is not None:
            return self._add_hashtree(transaction)
        return self._add_dict(transaction)

    def _add_dict(self, transaction: tuple[int, ...]) -> int:
        relevant = [item for item in transaction if item in self._universe]
        if len(relevant) < self.k:
            return 0
        hits = 0
        counts = self.counts
        for subset in combinations(relevant, self.k):
            self.generated += 1
            self.probes += 1
            if subset in counts:
                counts[subset] += 1
                hits += 1
        return hits

    def _add_hashtree(self, transaction: tuple[int, ...]) -> int:
        assert self._tree is not None
        before = self._tree.probes
        contained = self._tree.contained_in(transaction)
        self.probes += self._tree.probes - before
        for candidate in contained:
            self.counts[candidate] += 1
        return len(contained)


class AncestorClosureCounter:
    """H-HPGM-family kernel: count itemsets plus their ancestor candidates.

    The transaction (or the routed fragment t″ of it) contains only
    lowest-large items.  Conceptually, the algorithm generates every
    k-itemset of the fragment and increments it *and all of its ancestor
    candidates* (Figure 5, lines 12/16), at most once per transaction.

    Because no valid candidate pairs an item with its own ancestor, that
    closure is exactly the set of candidates *contained in the
    ancestor-extension of the fragment* (DESIGN.md §5), which is how the
    kernel computes it: extend the fragment with its (candidate-
    referenced) ancestors once, then enumerate the k-subsets of the
    extension.  This avoids the ``depth**k`` per-subset product of the
    naive closure enumeration, needs no per-transaction dedup set, and
    probes each relevant combination exactly once.

    Parameters
    ----------
    candidates:
        The candidate k-itemsets owned by this counter.
    k:
        Itemset size.
    ancestor_table:
        Item → ancestors-or-self tuples (nearest first), pre-filtered to
        the items that occur in *any* candidate of the pass so useless
        levels are never enumerated.  Typically built via
        :func:`build_closure_table`.
    """

    def __init__(
        self,
        candidates: Collection[Itemset],
        k: int,
        ancestor_table: Mapping[int, tuple[int, ...]],
    ):
        if k <= 0:
            raise MiningError(f"k must be positive, got {k}")
        self.k = k
        self.counts: dict[Itemset, int] = {c: 0 for c in candidates}
        self.probes = 0
        self.generated = 0
        self._table = ancestor_table
        self._universe = {item for c in self.counts for item in c}

    def add_transaction(self, transaction: tuple[int, ...]) -> int:
        """Count one lowest-large, sorted transaction fragment."""
        if not self.counts or len(transaction) < self.k:
            return 0
        table = self._table
        universe = self._universe
        extended: set[int] = set()
        for item in transaction:
            chain = table.get(item)
            if chain is None:
                if item in universe:
                    extended.add(item)
                continue
            # chain[0] is the item itself; the rest are its ancestors.
            # Everything is filtered to THIS counter's universe: items no
            # candidate of this table references can never complete a
            # probe, so the enumeration work stays proportional to the
            # table — the property that makes small duplicated sets
            # cheap to count everywhere (§3.4).
            if chain[0] in universe:
                extended.add(chain[0])
            extended.update(a for a in chain[1:] if a in universe)
        if len(extended) < self.k:
            return 0
        hits = 0
        counts = self.counts
        for subset in combinations(sorted(extended), self.k):
            self.generated += 1
            self.probes += 1
            if subset in counts:
                counts[subset] += 1
                hits += 1
        return hits


class RootKeyedClosureCounter:
    """H-HPGM partition kernel: per-root-key subset enumeration.

    The naive receiver enumerates every k-subset of its whole routed
    fragment, which re-enumerates cross-tree combinations owned by
    *other* nodes (pure probe misses) — cluster-wide, an order of
    magnitude more probes than one pass over the data needs.  This
    kernel instead groups the (ancestor-extended) fragment by root and
    generates combinations per *owned root key*: for key ``(r1, r2)``
    only mixed pairs across trees r1/r2, for ``(r, r)`` only pairs
    within tree r, and so on.  Every candidate combination is generated
    exactly once cluster-wide — at the node owning its root key — so
    the aggregate probe work matches a single sequential pass, and the
    per-node distribution is exactly the key-ownership workload the
    paper's Figure 15 measures.

    Parameters
    ----------
    candidates:
        The candidate k-itemsets of this node's partition.
    k:
        Itemset size.
    ancestor_table:
        Item → ancestors-or-self tuples, pass-wide universe filtered
        (see :func:`build_closure_table`).
    root_of:
        Item → root lookup (ancestors share their item's root, so one
        lookup per fragment item suffices).
    """

    def __init__(
        self,
        candidates: Collection[Itemset],
        k: int,
        ancestor_table: Mapping[int, tuple[int, ...]],
        root_of: Mapping[int, int],
    ):
        if k <= 0:
            raise MiningError(f"k must be positive, got {k}")
        self.k = k
        self.counts: dict[Itemset, int] = {c: 0 for c in candidates}
        self.probes = 0
        self.generated = 0
        self._table = ancestor_table
        self._root_of = root_of
        self._universe = {item for c in self.counts for item in c}
        # Per-key item universes: a probe can only hit when every chosen
        # item occurs in some candidate OF THAT KEY, so enumeration pools
        # are filtered per key — this is what keeps counting a small
        # duplicated set cheap even when its items are ubiquitous.
        self._key_items: dict[tuple[int, ...], set[int]] = {}
        for candidate in self.counts:
            key = tuple(sorted(root_of[item] for item in candidate))
            self._key_items.setdefault(key, set()).update(candidate)

    def add_transaction(self, fragment: tuple[int, ...]) -> int:
        """Count one routed, sorted, lowest-large fragment."""
        if not self.counts or len(fragment) < self.k:
            return 0
        table = self._table
        universe = self._universe
        root_of = self._root_of
        by_root: dict[int, set[int]] = {}
        for item in fragment:
            chain = table.get(item, (item,))
            kept = [link for link in chain if link in universe]
            if kept:
                group = by_root.setdefault(root_of[item], set())
                group.update(kept)
        if not by_root:
            return 0

        hits = 0
        counts = self.counts
        key_items = self._key_items
        root_counts = Counter({root: len(items) for root, items in by_root.items()})
        sorted_groups = {
            root: sorted(items) for root, items in sorted(by_root.items())
        }
        for key in feasible_sorted_multisets(root_counts, self.k):
            members = key_items.get(key)
            if members is None:
                continue
            multiplicity = Counter(key)
            pools = [
                combinations(
                    [i for i in sorted_groups[root] if i in members], count
                )
                for root, count in sorted(multiplicity.items())
            ]
            for chosen in product(*pools):
                subset = tuple(sorted(item for part in chosen for item in part))
                self.generated += 1
                self.probes += 1
                if subset in counts:
                    counts[subset] += 1
                    hits += 1
        return hits


def feasible_sorted_multisets(
    available: Counter,
    k: int,
) -> list[tuple[int, ...]]:
    """Sorted multisets of size ``k`` drawable from ``available`` counts.

    Shared by the sender's routing (which root combinations can this
    transaction realise?) and the receiver's keyed enumeration.  The
    per-value usage is maintained incrementally alongside the prefix —
    an O(1) check instead of the O(k) ``prefix.count(value)`` rescan on
    every extension attempt (this runs once per transaction in every
    H-HPGM-family sender *and* receiver).
    """
    values = sorted(available)
    found: list[tuple[int, ...]] = []
    used = dict.fromkeys(values, 0)

    def extend(prefix: list[int], start: int) -> None:
        if len(prefix) == k:
            found.append(tuple(prefix))
            return
        for index in range(start, len(values)):
            value = values[index]
            if used[value] < available[value]:
                used[value] += 1
                prefix.append(value)
                extend(prefix, index)
                prefix.pop()
                used[value] -= 1

    extend([], 0)
    return found


def build_closure_table(
    index: AncestorIndex,
    items: Iterable[int],
    universe: Collection[int],
) -> dict[int, tuple[int, ...]]:
    """Item → (ancestors-or-self ∩ candidate universe) for closure counting.

    Parameters
    ----------
    index:
        Full-taxonomy ancestor index.
    items:
        The items that can occur in rewritten transactions (the large
        items of the previous pass).
    universe:
        Items referenced by at least one candidate this pass; chain
        entries outside it can never complete a candidate and are
        dropped.  The item itself is always kept so subset generation
        stays anchored.
    """
    members = set(universe)
    table: dict[int, tuple[int, ...]] = {}
    for item in items:
        chain = (item,) + tuple(a for a in index.ancestors(item) if a in members)
        table[item] = chain
    return table
