"""Stratify [SA95] — top-down counting over the candidate lattice.

Cumulate counts every candidate in one scan per pass.  Stratify
exploits support monotonicity across the hierarchy instead: if the
*ancestor itemset* X̂ (some items replaced by their parents) is small,
then X is small too and need not be counted.  Candidates are therefore
stratified by depth in the ancestor lattice and counted top-down in
waves; after each wave, every descendant of a just-found-small
candidate is pruned uncounted.

The trade-off (measured by ``benchmarks/bench_ablation_stratify.py``):
fewer candidate probes, but one database scan per wave instead of one
per pass.  The answer is always exactly Cumulate's (tested).

This module is part of the [SA95] substrate the paper builds on, not
of the paper's own contribution — DESIGN.md §6 lists it as an
extension.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.candidates import candidate_item_universe, generate_candidates
from repro.core.counting import SupportCounter, count_items
from repro.core.itemsets import Itemset, minimum_count
from repro.core.result import MiningResult, PassResult
from repro.datagen.corpus import TransactionDatabase
from repro.errors import MiningError
from repro.taxonomy.hierarchy import Taxonomy
from repro.taxonomy.ops import AncestorIndex


@dataclass
class StratifyTelemetry:
    """Work counters for the Cumulate-vs-Stratify trade-off study."""

    scans_per_pass: list[int] = field(default_factory=list)
    probes: int = 0
    pruned_uncounted: int = 0


def _parent_itemsets(itemset: Itemset, taxonomy: Taxonomy) -> list[Itemset]:
    """Itemsets obtained by replacing exactly one item with its parent."""
    parents: list[Itemset] = []
    members = set(itemset)
    for position, item in enumerate(itemset):
        if item not in taxonomy:
            continue
        parent = taxonomy.parent(item)
        if parent is None or parent in members:
            continue
        replaced = tuple(
            sorted(itemset[:position] + (parent,) + itemset[position + 1 :])
        )
        parents.append(replaced)
    return parents


def _stratify_candidates(
    candidates: list[Itemset],
    taxonomy: Taxonomy,
) -> tuple[dict[Itemset, int], dict[Itemset, list[Itemset]]]:
    """Depth of each candidate in the ancestor lattice, plus child lists.

    Depth 0 = candidates with no parent candidate; otherwise
    1 + max(parent depths).  The lattice is acyclic (parents are
    strictly closer to the roots), so memoised recursion terminates.
    """
    candidate_set = set(candidates)
    children: dict[Itemset, list[Itemset]] = {}
    depth: dict[Itemset, int] = {}

    def resolve(itemset: Itemset) -> int:
        cached = depth.get(itemset)
        if cached is not None:
            return cached
        best = -1
        for parent in _parent_itemsets(itemset, taxonomy):
            if parent in candidate_set:
                children.setdefault(parent, []).append(itemset)
                best = max(best, resolve(parent))
        depth[itemset] = best + 1
        return best + 1

    for candidate in candidates:
        resolve(candidate)
    return depth, children


def stratify(
    database: TransactionDatabase,
    taxonomy: Taxonomy,
    min_support: float,
    max_k: int | None = None,
    wave_depths: int = 2,
    telemetry: StratifyTelemetry | None = None,
) -> MiningResult:
    """Find all large generalized itemsets, counting top-down in waves.

    Parameters
    ----------
    database, taxonomy, min_support, max_k:
        As in :func:`repro.core.cumulate.cumulate`.
    wave_depths:
        How many lattice depths to count per database scan.  [SA95]
        counts the top two levels in the first scan; 1 maximises
        pruning, larger values trade probes for scans.
    telemetry:
        Optional sink for scan/probe/prune counters.
    """
    if wave_depths < 1:
        raise MiningError(f"wave_depths must be >= 1, got {wave_depths}")
    num_transactions = len(database)
    if num_transactions == 0:
        raise MiningError("cannot mine an empty database")
    threshold = minimum_count(min_support, num_transactions)
    result = MiningResult(min_support=min_support, num_transactions=num_transactions)

    full_index = AncestorIndex(taxonomy)
    item_counts = count_items(database, full_index)
    large_1 = {
        (item,): count for item, count in sorted(item_counts.items()) if count >= threshold
    }
    result.passes.append(
        PassResult(k=1, num_candidates=len(item_counts), large=large_1)
    )

    previous: dict[Itemset, int] = large_1
    k = 2
    while previous and (max_k is None or k <= max_k):
        candidates = generate_candidates(sorted(previous), k, taxonomy)
        if not candidates:
            break
        universe = candidate_item_universe(candidates)
        index = AncestorIndex(taxonomy, keep=universe)
        depth, children = _stratify_candidates(candidates, taxonomy)

        alive = set(candidates)
        large_k: dict[Itemset, int] = {}
        scans = 0
        next_depth = 0
        max_depth = max(depth.values(), default=0)
        while next_depth <= max_depth:
            wave = [
                c
                for c in sorted(alive)
                if next_depth <= depth[c] < next_depth + wave_depths
            ]
            next_depth += wave_depths
            if not wave:
                continue
            # Hash-tree counting: per-scan probe work is proportional to
            # the wave's candidates, which is the whole economics of
            # Stratify (dict counting would pay near-full subset
            # enumeration per scan and erase the pruning win).
            counter = SupportCounter(wave, k, strategy="hashtree")
            for transaction in database:
                counter.add_transaction(index.extend(transaction))
            scans += 1
            if telemetry is not None:
                telemetry.probes += counter.probes
            small_frontier: list[Itemset] = []
            for itemset, count in sorted(counter.counts.items()):
                alive.discard(itemset)
                if count >= threshold:
                    large_k[itemset] = count
                else:
                    small_frontier.append(itemset)
            # Prune every still-alive descendant of the small wave
            # members — support monotonicity says they cannot be large.
            stack = small_frontier
            while stack:
                node = stack.pop()
                for child in children.get(node, ()):
                    if child in alive:
                        alive.discard(child)
                        if telemetry is not None:
                            telemetry.pruned_uncounted += 1
                        stack.append(child)

        if telemetry is not None:
            telemetry.scans_per_pass.append(scans)
        result.passes.append(
            PassResult(k=k, num_candidates=len(candidates), large=large_k)
        )
        previous = large_k
        k += 1

    return result
