"""The classic Apriori hash tree for candidate itemsets.

Apriori [RR94] stores candidate k-itemsets in a hash tree: interior
nodes hash the next item of the itemset into a fixed number of branches;
leaves hold small buckets of candidates.  Given a (sorted) transaction,
a single recursive traversal enumerates exactly the candidates contained
in it, without materialising all :math:`\\binom{|t|}{k}` subsets.

The paper's per-node candidate store ("insert it into the hash table")
is this structure; its probe counter is what Figure 15 plots.  The
simulator counts probes through the :attr:`HashTree.probes` attribute.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator

from repro.core.itemsets import Itemset
from repro.errors import MiningError


class _Node:
    """One hash-tree node; a leaf until its bucket overflows."""

    __slots__ = ("bucket", "branches", "depth")

    def __init__(self, depth: int):
        self.bucket: list[Itemset] | None = []
        self.branches: dict[int, _Node] | None = None
        self.depth = depth


class HashTree:
    """Hash tree over candidate k-itemsets.

    Parameters
    ----------
    k:
        Itemset size; every inserted itemset must have exactly this many
        items.
    leaf_capacity:
        A leaf splits into an interior node once it holds more than this
        many itemsets (and depth < k).
    num_branches:
        Branching factor of the interior hash (item id modulo this).

    Attributes
    ----------
    probes:
        Number of candidate itemsets touched during containment
        enumeration — the workload metric of the paper's Figure 15.
    """

    def __init__(self, k: int, leaf_capacity: int = 16, num_branches: int = 32):
        if k <= 0:
            raise MiningError(f"k must be positive, got {k}")
        if leaf_capacity <= 0:
            raise MiningError(f"leaf_capacity must be positive, got {leaf_capacity}")
        if num_branches <= 1:
            raise MiningError(f"num_branches must exceed 1, got {num_branches}")
        self.k = k
        self.leaf_capacity = leaf_capacity
        self.num_branches = num_branches
        self.probes = 0
        self._size = 0
        self._root = _Node(depth=0)

    def __len__(self) -> int:
        return self._size

    def _hash(self, item: int) -> int:
        return item % self.num_branches

    def insert(self, itemset: Itemset) -> None:
        """Insert one candidate (must be sorted and of size ``k``)."""
        if len(itemset) != self.k:
            raise MiningError(
                f"expected a {self.k}-itemset, got {itemset!r}"
            )
        node = self._root
        while node.bucket is None:
            assert node.branches is not None
            key = self._hash(itemset[node.depth])
            child = node.branches.get(key)
            if child is None:
                child = _Node(depth=node.depth + 1)
                node.branches[key] = child
            node = child
        node.bucket.append(itemset)
        self._size += 1
        if len(node.bucket) > self.leaf_capacity and node.depth < self.k:
            self._split(node)

    def _split(self, node: _Node) -> None:
        """Convert an overflowing leaf into an interior node."""
        assert node.bucket is not None
        pending = node.bucket
        node.bucket = None
        node.branches = {}
        for itemset in pending:
            key = self._hash(itemset[node.depth])
            child = node.branches.get(key)
            if child is None:
                child = _Node(depth=node.depth + 1)
                node.branches[key] = child
            assert child.bucket is not None
            child.bucket.append(itemset)
        # A pathological split can leave a child still over capacity
        # (all items hash alike); recurse while depth allows.
        for _, child in sorted(node.branches.items()):
            assert child.bucket is not None
            if len(child.bucket) > self.leaf_capacity and child.depth < self.k:
                self._split(child)

    def __iter__(self) -> Iterator[Itemset]:
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.bucket is not None:
                yield from node.bucket
            else:
                assert node.branches is not None
                stack.extend(child for _, child in sorted(node.branches.items()))

    def contained_in(self, transaction: Iterable[int]) -> list[Itemset]:
        """All stored candidates contained in a sorted transaction."""
        found: list[Itemset] = []
        self.for_each_contained(transaction, found.append)
        return found

    def for_each_contained(
        self,
        transaction: Iterable[int],
        callback: Callable[[Itemset], None],
    ) -> None:
        """Invoke ``callback`` for every candidate contained in the transaction.

        ``transaction`` must be sorted ascending and duplicate-free (the
        canonical transaction form everywhere in the library).
        """
        items = tuple(transaction)
        if len(items) < self.k:
            return
        members = set(items)
        self._walk(self._root, items, 0, members, callback)

    def _walk(
        self,
        node: _Node,
        items: tuple[int, ...],
        start: int,
        members: set[int],
        callback: Callable[[Itemset], None],
    ) -> None:
        if node.bucket is not None:
            for candidate in node.bucket:
                self.probes += 1
                if all(item in members for item in candidate):
                    callback(candidate)
            return
        assert node.branches is not None
        # Descend once per distinct hash bucket among remaining items;
        # itemsets are sorted so the (depth)-th item must come from
        # items[start:].
        seen: set[int] = set()
        for position in range(start, len(items) - (self.k - node.depth) + 1):
            key = self._hash(items[position])
            if key in seen:
                continue
            seen.add(key)
            child = node.branches.get(key)
            if child is not None:
                self._walk(child, items, position + 1, members, callback)
