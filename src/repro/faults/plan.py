"""Declarative, seeded fault schedules for the cluster simulator.

A :class:`FaultPlan` describes *what can go wrong* in one run:

* :class:`CrashSpec` — a node dies at a pass boundary and is replaced
  by a cold standby that must recover (checkpoint restore + disk
  replay, see :mod:`repro.faults.recovery`);
* :class:`StallSpec` — a node is slowed for one pass (charged as
  ``fault_stall_units`` through the cost model);
* ``drop_rate`` / ``duplicate_rate`` / ``transient_rate`` — per-send
  probabilities of message loss, duplication and transient send
  failure, drawn from the plan's own seeded :class:`FaultClock`.

Everything is deterministic: the same plan against the same run
produces the same faults, the same recovery work and the same
transcript under any ``PYTHONHASHSEED`` — the chaos equivalence suite
(`tests/test_faults_chaos.py`) pins exactly that.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import FaultPlanError


@dataclass(frozen=True)
class CrashSpec:
    """One node crash at the *beginning* of pass ``pass_index``.

    ``pass_index`` counts passes from 1 (the item-counting pass);
    crashes are only meaningful from pass 2 on — recovery restores the
    checkpoint the crashed node took at the previous pass boundary, and
    before pass 2 there is nothing to lose.
    """

    pass_index: int
    node: int


@dataclass(frozen=True)
class StallSpec:
    """Slow node ``node`` by ``units`` stall units during one pass."""

    pass_index: int
    node: int
    units: int


@dataclass(frozen=True)
class FaultPlan:
    """A complete seeded fault schedule (``ClusterConfig.faults``).

    Attributes
    ----------
    seed:
        Seed of the plan's :class:`FaultClock`; the only source of
        randomness in the whole fault layer.
    crashes / stalls:
        Deterministic pass-boundary events.
    drop_rate:
        Probability a sent message is lost in flight and must be
        retransmitted (charged to the sender's ``fault_retries`` /
        ``fault_retry_bytes``; the logical message still arrives once).
    duplicate_rate:
        Probability a message arrives twice; the duplicate is discarded
        at drain time and charged to the receiver's ``fault_dup_*``.
    transient_rate:
        Probability one transmission attempt fails transiently; failed
        attempts retry with exponential backoff up to ``retry_budget``
        times, after which :class:`~repro.errors.SendRetryExhaustedError`
        aborts the run.
    retry_budget:
        Maximum retransmissions per send for transient failures.
    degrade_memory_overflow:
        When True, a ``strict_memory`` overflow on a node degrades to
        the paper's multi-fragment re-scan (charged as
        ``fault_overflow_fragments`` / ``fault_rescan_items``) instead
        of raising :class:`~repro.errors.MemoryBudgetError`.
    """

    seed: int = 0
    crashes: tuple[CrashSpec, ...] = ()
    stalls: tuple[StallSpec, ...] = ()
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    transient_rate: float = 0.0
    retry_budget: int = 4
    degrade_memory_overflow: bool = True

    def __post_init__(self) -> None:
        for name in ("drop_rate", "duplicate_rate", "transient_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise FaultPlanError(f"{name} must be in [0, 1), got {rate}")
        if self.retry_budget < 1:
            raise FaultPlanError(
                f"retry_budget must be at least 1, got {self.retry_budget}"
            )
        seen: set[tuple[int, int]] = set()
        for crash in self.crashes:
            if crash.pass_index < 2:
                raise FaultPlanError(
                    f"crash at pass {crash.pass_index}: crashes are only "
                    "recoverable from pass 2 on (a checkpoint must exist)"
                )
            if crash.node < 0:
                raise FaultPlanError(f"crash node {crash.node} is negative")
            key = (crash.pass_index, crash.node)
            if key in seen:
                raise FaultPlanError(
                    f"node {crash.node} crashes twice at pass {crash.pass_index}"
                )
            seen.add(key)
        for stall in self.stalls:
            if stall.pass_index < 1:
                raise FaultPlanError(
                    f"stall at pass {stall.pass_index}: passes count from 1"
                )
            if stall.node < 0:
                raise FaultPlanError(f"stall node {stall.node} is negative")
            if stall.units < 0:
                raise FaultPlanError(f"stall units must be >= 0, got {stall.units}")

    @property
    def injects_sends(self) -> bool:
        """True when any per-send fault can fire (hot-path gate)."""
        return (
            self.drop_rate > 0.0
            or self.duplicate_rate > 0.0
            or self.transient_rate > 0.0
        )

    def max_node(self) -> int:
        """Largest node id referenced by the schedule (-1 when none)."""
        ids = [crash.node for crash in self.crashes]
        ids.extend(stall.node for stall in self.stalls)
        return max(ids) if ids else -1

    @classmethod
    def preset(cls, name: str, seed: int = 0, num_nodes: int = 4) -> "FaultPlan":
        """The chaos suite's named plans: ``crash``, ``loss``, ``combined``."""
        if num_nodes < 2:
            raise FaultPlanError("presets need at least 2 nodes")
        if name == "crash":
            return cls(
                seed=seed,
                crashes=(
                    CrashSpec(pass_index=2, node=1 % num_nodes),
                    CrashSpec(pass_index=3, node=(num_nodes - 1)),
                ),
                stalls=(StallSpec(pass_index=2, node=0, units=3),),
            )
        if name == "loss":
            return cls(
                seed=seed,
                drop_rate=0.08,
                duplicate_rate=0.06,
                transient_rate=0.04,
                retry_budget=6,
            )
        if name == "combined":
            return cls(
                seed=seed,
                crashes=(CrashSpec(pass_index=2, node=1 % num_nodes),),
                stalls=(StallSpec(pass_index=3, node=0, units=2),),
                drop_rate=0.05,
                duplicate_rate=0.04,
                transient_rate=0.03,
                retry_budget=6,
            )
        raise FaultPlanError(
            f"unknown fault preset {name!r}; known: crash, loss, combined"
        )


#: Names accepted by :meth:`FaultPlan.preset`, in documentation order.
PRESETS: tuple[str, ...] = ("crash", "loss", "combined")


@dataclass
class FaultClock:
    """The fault layer's only randomness: one seeded stream per run.

    Draws are consumed in simulator order (sends are replayed in node
    order, pass events in schedule order), so the stream — and with it
    every injected fault — is a pure function of ``plan.seed`` and the
    run itself, independent of ``PYTHONHASHSEED``.
    """

    plan: FaultPlan
    rng: random.Random = field(init=False)
    pass_index: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        self.rng = random.Random(self.plan.seed)

    def next_pass(self) -> int:
        """Advance to (and return) the next pass index, counting from 1."""
        self.pass_index += 1
        return self.pass_index

    def chance(self, rate: float) -> bool:
        """One Bernoulli draw; never consumes entropy when ``rate == 0``."""
        if rate <= 0.0:
            return False
        return self.rng.random() < rate
