"""``repro.faults`` — deterministic fault injection and recovery.

Three pieces (see ``docs/fault_tolerance.md``):

* :mod:`repro.faults.plan` — declarative seeded fault schedules
  (:class:`FaultPlan`) and the seeded :class:`FaultClock`;
* :mod:`repro.faults.checkpoint` — pass-level checkpoints and the
  pass-1 replay oracle;
* :mod:`repro.faults.recovery` — the :class:`FaultController` wired
  into ``Network.send``/``drain`` and the pass boundaries, plus the
  per-algorithm :class:`RecoveryProfile`.

The ``repro-chaos`` CLI (:mod:`repro.faults.cli`) runs the chaos
equivalence harness: every algorithm under every fault plan must
produce large itemsets byte-identical to its fault-free run.  Its
``serve`` subcommand does the same for the sharded serving tier using
:mod:`repro.faults.serve` (:class:`ServeFaultPlan` schedules shard
kill/stall/drop faults at admitted-query boundaries).

This package keeps its module-level imports light (errors + stdlib
only) so ``repro.cluster.config`` can reference :class:`FaultPlan`
without an import cycle; the serve-tier names are re-exported lazily
for the same reason (importing them pulls in ``repro.serve``).
"""

from repro.faults.checkpoint import CheckpointStore, PassCheckpoint
from repro.faults.plan import PRESETS, CrashSpec, FaultClock, FaultPlan, StallSpec
from repro.faults.recovery import DEFAULT_PROFILE, FaultController, RecoveryProfile

#: Serve-tier names resolved lazily from :mod:`repro.faults.serve` —
#: importing them at module level would pull the whole serving stack
#: into every ``repro.cluster`` import.
_SERVE_EXPORTS = (
    "SERVE_PRESETS",
    "ServeFaultPlan",
    "ShardFaultInjector",
    "ShardKillSpec",
    "ShardStallSpec",
    "lockstep_replay",
    "run_serve_chaos",
)

__all__ = [
    "CheckpointStore",
    "CrashSpec",
    "DEFAULT_PROFILE",
    "FaultClock",
    "FaultController",
    "FaultPlan",
    "PassCheckpoint",
    "PRESETS",
    "RecoveryProfile",
    "StallSpec",
    *_SERVE_EXPORTS,
]


def __getattr__(name: str):
    if name in _SERVE_EXPORTS:
        from repro.faults import serve

        return getattr(serve, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
