"""``repro.faults`` — deterministic fault injection and recovery.

Three pieces (see ``docs/fault_tolerance.md``):

* :mod:`repro.faults.plan` — declarative seeded fault schedules
  (:class:`FaultPlan`) and the seeded :class:`FaultClock`;
* :mod:`repro.faults.checkpoint` — pass-level checkpoints and the
  pass-1 replay oracle;
* :mod:`repro.faults.recovery` — the :class:`FaultController` wired
  into ``Network.send``/``drain`` and the pass boundaries, plus the
  per-algorithm :class:`RecoveryProfile`.

The ``repro-chaos`` CLI (:mod:`repro.faults.cli`) runs the chaos
equivalence harness: every algorithm under every fault plan must
produce large itemsets byte-identical to its fault-free run.

This package keeps its module-level imports light (errors + stdlib
only) so ``repro.cluster.config`` can reference :class:`FaultPlan`
without an import cycle.
"""

from repro.faults.checkpoint import CheckpointStore, PassCheckpoint
from repro.faults.plan import PRESETS, CrashSpec, FaultClock, FaultPlan, StallSpec
from repro.faults.recovery import DEFAULT_PROFILE, FaultController, RecoveryProfile

__all__ = [
    "CheckpointStore",
    "CrashSpec",
    "DEFAULT_PROFILE",
    "FaultClock",
    "FaultController",
    "FaultPlan",
    "PassCheckpoint",
    "PRESETS",
    "RecoveryProfile",
    "StallSpec",
]
