"""Seeded fault schedules + chaos harness for the sharded serve tier.

The cluster simulator's :class:`~repro.faults.plan.FaultPlan` schedules
faults at pass boundaries; the serving tier's :class:`ServeFaultPlan`
schedules them at **admitted-query sequence numbers** — the router
assigns every admitted request a monotone ``seq`` and asks the
:class:`ShardFaultInjector` what breaks at that point:

* :class:`ShardKillSpec` — a shard replica dies at ``at_query`` (every
  dispatch raises :class:`~repro.errors.ShardDownError`) and, when
  ``restart_after`` is set, comes back ``restart_after`` admitted
  queries later — the router emits the ``shard-recovery`` marker event
  the chaos proofs assert on;
* :class:`ShardStallSpec` — dispatches to one replica sleep for
  ``seconds`` during a window of admitted queries (the hedge budget
  must recover);
* ``drop_response_rate`` — a primary's computed answer is lost with
  this probability (the future never resolves; only replica 0 drops,
  so a hedge to a live replica always recovers).

Determinism: per-dispatch draws come from a stream seeded by
``(plan.seed, seq, partition, replica)`` — the async analogue of the
simulator's :class:`~repro.faults.plan.FaultClock`.  A shared
sequential stream would make the schedule depend on how concurrent
dispatches interleave on the event loop; keying each draw by its
coordinates makes the whole fault schedule a pure function of the plan
and the admission order, independent of ``PYTHONHASHSEED`` and loop
scheduling.

The harness (:func:`run_serve_chaos`) replays one seeded workload
through a clean tier and a faulted tier in lockstep and proves the
faulted tier **converges to byte-identical answers**: same transcript
sha256, with the recovery markers and shed/degraded/hedge/failover
tallies recorded in a timing-free summary (``repro-chaos serve``
asserts equality across ≥3 fault seeds).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import FaultPlanError, ReproError, error_label
from repro.obs.registry import MetricsRegistry
from repro.obs.requests import RequestTracer
from repro.obs.sink import EventSink
from repro.serve.loadgen import generate_workload
from repro.serve.shard.partition import build_shard_map
from repro.serve.shard.pool import ShardPool
from repro.serve.shard.router import ShardRouter
from repro.serve.snapshot import RuleSnapshot

#: Names accepted by :meth:`ServeFaultPlan.preset`.
SERVE_PRESETS: tuple[str, ...] = ("kill", "stall", "drop", "combined")

#: Injected dispatch-stall length (seconds).  Must exceed the chaos
#: harness's hedge budget by a wide margin so the hedge *always* fires
#: for a stalled dispatch — that margin is what keeps the hedge tally
#: deterministic on a real clock.
STALL_SECONDS = 0.8

#: Hedge budget the chaos harness runs with (see :data:`STALL_SECONDS`).
CHAOS_HEDGE_AFTER = 0.2


@dataclass(frozen=True)
class ShardKillSpec:
    """Kill ``(partition, replica)`` at admitted query ``at_query``;
    restart it ``restart_after`` admitted queries later (0 = never)."""

    at_query: int
    partition: int
    replica: int = 0
    restart_after: int = 0


@dataclass(frozen=True)
class ShardStallSpec:
    """Stall dispatches to ``(partition, replica)`` for ``seconds``
    during admitted queries ``[at_query, at_query + queries)``."""

    at_query: int
    partition: int
    replica: int = 0
    queries: int = 1
    seconds: float = STALL_SECONDS


@dataclass(frozen=True)
class ServeFaultPlan:
    """A complete seeded fault schedule for the sharded serve tier."""

    seed: int = 0
    kills: tuple[ShardKillSpec, ...] = ()
    stalls: tuple[ShardStallSpec, ...] = ()
    drop_response_rate: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_response_rate < 1.0:
            raise FaultPlanError(
                f"drop_response_rate must be in [0, 1), "
                f"got {self.drop_response_rate}"
            )
        seen: set[tuple[int, int, int]] = set()
        for kill in self.kills:
            if kill.at_query < 0:
                raise FaultPlanError(
                    f"kill at query {kill.at_query}: queries count from 0"
                )
            if kill.partition < 0 or kill.replica < 0:
                raise FaultPlanError(
                    f"kill target ({kill.partition}, {kill.replica}) is negative"
                )
            if kill.restart_after < 0:
                raise FaultPlanError(
                    f"restart_after must be >= 0, got {kill.restart_after}"
                )
            key = (kill.at_query, kill.partition, kill.replica)
            if key in seen:
                raise FaultPlanError(
                    f"shard ({kill.partition}, {kill.replica}) killed twice "
                    f"at query {kill.at_query}"
                )
            seen.add(key)
        for stall in self.stalls:
            if stall.at_query < 0:
                raise FaultPlanError(
                    f"stall at query {stall.at_query}: queries count from 0"
                )
            if stall.partition < 0 or stall.replica < 0:
                raise FaultPlanError(
                    f"stall target ({stall.partition}, {stall.replica}) "
                    "is negative"
                )
            if stall.queries < 1:
                raise FaultPlanError(
                    f"stall window must be >= 1 query, got {stall.queries}"
                )
            if stall.seconds <= 0:
                raise FaultPlanError(
                    f"stall seconds must be > 0, got {stall.seconds}"
                )

    @classmethod
    def preset(
        cls,
        name: str,
        seed: int = 0,
        num_shards: int = 4,
        queries: int = 120,
    ) -> "ServeFaultPlan":
        """The serve chaos suite's named plans.

        Every preset targets **replica 0 only**, so with replication ≥ 2
        each partition always keeps a live replica — the tier must then
        converge to byte-identical answers (what ``repro-chaos serve``
        asserts); losing *all* replicas of a partition (degraded mode)
        is covered by the robustness unit suite instead.
        """
        if num_shards < 1:
            raise FaultPlanError("serve presets need at least 1 shard")
        if queries < 8:
            raise FaultPlanError("serve presets need at least 8 queries")
        quarter = queries // 4
        if name == "kill":
            return cls(
                seed=seed,
                kills=(
                    ShardKillSpec(
                        at_query=quarter,
                        partition=0,
                        replica=0,
                        restart_after=2 * quarter,
                    ),
                ),
            )
        if name == "stall":
            return cls(
                seed=seed,
                stalls=(
                    ShardStallSpec(
                        at_query=quarter,
                        partition=0,
                        replica=0,
                        queries=max(1, queries // 8),
                        seconds=STALL_SECONDS,
                    ),
                ),
            )
        if name == "drop":
            return cls(seed=seed, drop_response_rate=0.08)
        if name == "combined":
            return cls(
                seed=seed,
                kills=(
                    ShardKillSpec(
                        at_query=quarter,
                        partition=0,
                        replica=0,
                        restart_after=quarter,
                    ),
                ),
                stalls=(
                    ShardStallSpec(
                        at_query=2 * quarter,
                        partition=1 % num_shards,
                        replica=0,
                        queries=max(1, queries // 10),
                        seconds=STALL_SECONDS,
                    ),
                ),
                drop_response_rate=0.05,
            )
        raise FaultPlanError(
            f"unknown serve fault preset {name!r}; known: "
            + ", ".join(SERVE_PRESETS)
        )


class ShardFaultInjector:
    """Answers the router's two questions: *what breaks at this
    admission?* and *what happens to this dispatch?*  (See the module
    docstring for the determinism contract.)"""

    __slots__ = ("plan",)

    def __init__(self, plan: ServeFaultPlan):
        self.plan = plan

    def admitted(self, seq: int) -> list[tuple[str, int, int]]:
        """Kill/restart transitions scheduled at admitted query ``seq``
        (kills before restarts, schedule order within each)."""
        events: list[tuple[str, int, int]] = []
        for kill in self.plan.kills:
            if seq == kill.at_query:
                events.append(("kill", kill.partition, kill.replica))
        for kill in self.plan.kills:
            if kill.restart_after and seq == kill.at_query + kill.restart_after:
                events.append(("restart", kill.partition, kill.replica))
        return events

    def directives(
        self, seq: int, partition: int, replica: int
    ) -> tuple[float, bool]:
        """(stall_seconds, drop) for one dispatch of admitted query
        ``seq`` to ``(partition, replica)``."""
        stall = 0.0
        for spec in self.plan.stalls:
            if (
                spec.partition == partition
                and spec.replica == replica
                and spec.at_query <= seq < spec.at_query + spec.queries
            ):
                stall = max(stall, spec.seconds)
        drop = False
        if self.plan.drop_response_rate > 0.0 and replica == 0:
            # Per-dispatch seeding (a pure function of the coordinates,
            # not a shared stream) keeps draws order-independent: the
            # event loop may interleave concurrent dispatches in any
            # order without changing which responses drop.  String seeds
            # hash via sha512 inside random.seed — stable across
            # processes and PYTHONHASHSEED.
            rng = random.Random(
                f"{self.plan.seed}:{seq}:{partition}:{replica}"
            )
            drop = rng.random() < self.plan.drop_response_rate
        return stall, drop


# ----------------------------------------------------------------------
# Chaos harness
# ----------------------------------------------------------------------

def lockstep_replay(
    snapshot: RuleSnapshot,
    workload: list[tuple[int, ...]],
    shards: int = 4,
    replication: int = 2,
    injector: ShardFaultInjector | None = None,
    sink: EventSink | None = None,
    clock=time.perf_counter,
) -> tuple[list[str], list[dict], MetricsRegistry]:
    """Serve a workload one query at a time through a sharded tier.

    Lockstep (closed-loop, depth 1) pins the admission order, which is
    the fault schedule's only clock — so every kill, restart, stall and
    drop lands on the same query in every run.  Returns the timing-free
    answer transcript (compact JSON lines), any per-query errors, and
    the tier's metrics registry.
    """
    registry = MetricsRegistry()
    tracer = RequestTracer(
        sink=sink, registry=registry, clock=clock, namespace="chaos"
    )
    shard_map = build_shard_map(snapshot, shards)
    transcript: list[str] = []
    errors: list[dict] = []

    async def drive() -> None:
        pool = ShardPool(
            snapshot,
            shard_map,
            replication=replication,
            queue_depth=max(64, len(workload)),
            registry=registry,
            clock_ns=tracer.now_ns,
            failure_threshold=3,
            # The breaker must never half-open on its own mid-run: a
            # real-clock probe would make the failover tally depend on
            # wall time.  Recovery is the injector's restart (which
            # force-closes the breaker), not the cooldown.
            cooldown_seconds=3600.0,
        )
        pool.start()
        router = ShardRouter(
            pool,
            tracer,
            max_inflight=max(16, len(workload)),
            deadline_seconds=60.0,
            hedge_after=CHAOS_HEDGE_AFTER,
            subquery_timeout=30.0,
            closure_cache_size=0,
            result_cache_size=0,
            registry=registry,
            sink=sink,
            injector=injector,
        )
        for position, basket in enumerate(workload):
            try:
                result = await asyncio.wait_for(
                    router.query(basket, request_id=position), timeout=90.0
                )
            except ReproError as error:
                errors.append({"id": position, "error": error_label(error)})
            else:
                transcript.append(
                    json.dumps(
                        result.to_dict(), sort_keys=True, separators=(",", ":")
                    )
                )
        await pool.close()

    asyncio.run(drive())
    return transcript, errors, registry


def _transcript_sha256(transcript: list[str]) -> str:
    return hashlib.sha256("\n".join(transcript).encode("utf-8")).hexdigest()


def run_serve_chaos(
    snapshot: RuleSnapshot,
    queries: int = 120,
    workload_seed: int = 7,
    presets: tuple[str, ...] = SERVE_PRESETS,
    fault_seeds: tuple[int, ...] = (11, 12, 13),
    shards: int = 4,
    replication: int = 2,
    out_dir: str | Path | None = None,
) -> dict:
    """Prove fault recovery is invisible in sharded answers.

    One clean lockstep replay is the baseline; every ``preset × seed``
    combination replays the same workload under injected faults and
    must produce a **byte-identical transcript**.  The returned summary
    is timing-free (counts and digests only), so it is itself
    byte-identical across ``PYTHONHASHSEED`` values — the subprocess
    determinism test pins exactly that.
    """
    workload = generate_workload(snapshot, queries, workload_seed)
    out_path = Path(out_dir) if out_dir is not None else None
    if out_path is not None:
        out_path.mkdir(parents=True, exist_ok=True)
    clean_transcript, clean_errors, _clean_registry = lockstep_replay(
        snapshot, workload, shards=shards, replication=replication
    )
    clean_digest = _transcript_sha256(clean_transcript)
    runs: list[dict] = []
    failures = 0
    for preset in presets:
        for fault_seed in fault_seeds:
            plan = ServeFaultPlan.preset(
                preset, seed=fault_seed, num_shards=shards, queries=queries
            )
            injector = ShardFaultInjector(plan)
            sink = None
            if out_path is not None:
                sink = EventSink(
                    path=out_path / f"events-serve-{preset}-s{fault_seed}.jsonl"
                )
            chaos_transcript, chaos_errors, registry = lockstep_replay(
                snapshot,
                workload,
                shards=shards,
                replication=replication,
                injector=injector,
                sink=sink,
            )
            if sink is not None:
                sink.close()
            chaos_digest = _transcript_sha256(chaos_transcript)
            recoveries = int(registry.value("shard.recoveries"))
            expected_recoveries = sum(
                1 for kill in plan.kills if kill.restart_after
            )
            equal = (
                chaos_digest == clean_digest
                and len(chaos_transcript) == len(clean_transcript)
                and not chaos_errors
                and recoveries == expected_recoveries
            )
            if not equal:
                failures += 1
            runs.append(
                {
                    "preset": preset,
                    "fault_seed": fault_seed,
                    "equal": equal,
                    "clean_sha256": clean_digest,
                    "chaos_sha256": chaos_digest,
                    "answered": len(chaos_transcript),
                    "errors": len(chaos_errors),
                    "kills": int(registry.value("shard.kills")),
                    "recoveries": recoveries,
                    "hedges": int(registry.value("shard.hedges")),
                    "failovers": int(registry.value("shard.failovers")),
                    "degraded": int(registry.value("shard.degraded")),
                    "sheds": int(registry.total("shard.sheds")),
                    "drops": int(registry.value("shard.dropped_responses")),
                }
            )
    summary = {
        "queries": queries,
        "workload_seed": workload_seed,
        "shards": shards,
        "replication": replication,
        "snapshot": snapshot.version,
        "clean_errors": len(clean_errors),
        "clean_sha256": clean_digest,
        "runs": runs,
        "failures": failures,
    }
    if out_path is not None:
        (out_path / "summary.json").write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return summary
