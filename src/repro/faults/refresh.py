"""Crash-equivalence harness for the refresh tier.

``repro-chaos refresh`` applies the repo's chaos discipline to the
publish pipeline of :mod:`repro.refresh`: one delta sequence is
ingested cleanly, then re-run with a crash injected at every stage of
the ingest protocol (after the log append, after the in-memory apply,
after the checkpoint, and between the snapshot write and the pointer
flip).  Each faulted run must satisfy two properties:

* **no torn serving state at crash time** — the ``CURRENT`` pointer
  must still load a digest-valid snapshot, and it must be the
  *pre-crash* snapshot (a crashed ingest is invisible until recovery);
* **recovery converges to the clean bytes** — reopening the root
  replays the interrupted delta and republishes, and the recovered
  snapshot must be byte-identical to the clean run's.

The driver's crash stages are cooperative injection points
(:data:`repro.refresh.driver.STAGES`): the injector raises
:class:`CrashInjected`, which unwinds exactly like a process death at
that point — everything already fsynced stays, nothing after the stage
runs.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import FaultError
from repro.obs.sink import EventSink
from repro.refresh.driver import STAGES, RefreshDriver, current_snapshot
from repro.taxonomy.hierarchy import Taxonomy


class CrashInjected(FaultError):
    """The cooperative crash raised by the refresh chaos injector."""


def _ingest_all(driver: RefreshDriver, batches: list[list[tuple[int, ...]]]):
    for batch in batches:
        driver.ingest(batch)


def run_refresh_chaos(
    taxonomy: Taxonomy,
    batches: list[list[tuple[int, ...]]],
    min_support: float,
    min_confidence: float,
    window_deltas: int,
    work_dir: str | Path,
    max_k: int | None = None,
    stages: tuple[str, ...] = STAGES,
) -> dict:
    """Crash at every stage of the final ingest; assert recovery (see
    module doc).  Returns a JSON-ready summary with per-stage verdicts.
    """
    if len(batches) < 2:
        raise FaultError("refresh chaos needs at least a base and one delta")
    work = Path(work_dir)
    work.mkdir(parents=True, exist_ok=True)

    clean_root = work / "clean"
    clean = RefreshDriver.create(
        clean_root,
        taxonomy,
        min_support=min_support,
        min_confidence=min_confidence,
        max_k=max_k,
        window_deltas=window_deltas,
    )
    _ingest_all(clean, batches)
    clean_snapshot = clean.current()
    clean_bytes = None if clean_snapshot is None else clean_snapshot.to_jsonl()

    runs: list[dict] = []
    failures = 0
    for stage in stages:
        root = work / f"crash-{stage}"
        sink = EventSink(work / f"events-{stage}.jsonl")
        driver = RefreshDriver.create(
            root,
            taxonomy,
            min_support=min_support,
            min_confidence=min_confidence,
            max_k=max_k,
            window_deltas=window_deltas,
            sink=sink,
        )
        _ingest_all(driver, batches[:-1])
        before = driver.current()
        before_version = None if before is None else before.version

        def injector(point: str, stage: str = stage) -> None:
            if point == stage:
                raise CrashInjected(f"injected crash at {point}")

        driver._injector = injector
        crashed = False
        try:
            driver.ingest(batches[-1])
        except CrashInjected:
            crashed = True

        # Property 1: the crash left no torn serving state.
        mid = current_snapshot(root)
        mid_version = None if mid is None else mid.version
        mid_ok = mid_version == before_version

        # Property 2: recovery converges to the clean run's bytes.
        recovered = RefreshDriver.open(root, sink=sink)
        after = recovered.current()
        after_bytes = None if after is None else after.to_jsonl()
        recovered_equal = after_bytes == clean_bytes
        sink.close()

        ok = crashed and mid_ok and recovered_equal
        if not ok:
            failures += 1
        runs.append(
            {
                "stage": stage,
                "crashed": crashed,
                "mid_ok": mid_ok,
                "recovered_equal": recovered_equal,
                "before_version": before_version,
                "recovered_version": None if after is None else after.version,
                "ok": ok,
            }
        )

    summary = {
        "deltas": len(batches),
        "window_deltas": window_deltas,
        "min_support": min_support,
        "min_confidence": min_confidence,
        "clean_version": None if clean_snapshot is None else clean_snapshot.version,
        "runs": runs,
        "failures": failures,
    }
    summary_path = work / "summary.json"
    summary_path.write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return summary
