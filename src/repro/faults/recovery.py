"""The recovery protocol: detection, replay, and fault pricing.

The :class:`FaultController` is the coordinator-side brain of the fault
layer.  It is attached to a :class:`~repro.cluster.machine.Cluster`
when ``ClusterConfig.faults`` is set and hooks four places:

* ``Network.send`` — transient failures (bounded retry with
  exponential backoff), message drops (detected and retransmitted) and
  duplications (extra mailbox copy, deduplicated at drain);
* ``Network.drain`` — charges discarded duplicates to the receiver;
* ``Cluster.begin_pass`` — injects scheduled stalls and drives crash
  recovery (checkpoint restore, disk replay, partition reassignment);
* ``Cluster.finish_pass`` — snapshots per-node residency for the next
  checkpoint.

Every recovered fault is *priced, never semantic*: the canonical
counters (``bytes_sent``, ``io_items``…) record exactly the fault-free
protocol, so large itemsets, Table-6 volumes and the runtime invariants
are untouched, while the recovery tax lands in the dedicated
``fault_*`` counters of :class:`~repro.cluster.stats.NodeStats` and is
priced by the cost model (``CostModel.node_time``'s fault terms).

Per-algorithm recovery cost is captured by :class:`RecoveryProfile`:
NPGM replicates candidates, so a standby loses nothing but its scan;
the partitioned algorithms must reassign the dead node's candidate (or
root) partition; the duplication variants recover the duplicated set
from any survivor instead of regenerating it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import (
    CheckpointError,
    FaultPlanError,
    SendRetryExhaustedError,
    UnrecoverableFaultError,
)
from repro.faults.checkpoint import CheckpointStore, PassCheckpoint
from repro.faults.plan import FaultClock, FaultPlan


@dataclass(frozen=True)
class RecoveryProfile:
    """What one algorithm's placement scheme loses with a node.

    Attributes
    ----------
    placement:
        Human tag of the placement scheme (``replicated``,
        ``itemset-hash``, ``root-hash``…), used in telemetry events.
    replicated_candidates:
        True when every node holds every candidate (NPGM): a standby
        regenerates them from the broadcast ``L_{k-1}`` for free and no
        reassignment is charged.
    replicates_duplicates:
        True for the duplication variants: the duplicated set lives on
        every node, so a standby restores it from any survivor (wire
        cost) instead of re-deriving the partition it lost.
    description:
        One line for the docs' recovery cost table.
    """

    placement: str
    replicated_candidates: bool = False
    replicates_duplicates: bool = False
    description: str = ""


#: Fallback profile when no miner is bound (raw cluster driving).
DEFAULT_PROFILE = RecoveryProfile(
    placement="unknown",
    description="no miner bound; full partition reassignment is charged",
)


def _mark_recovery(telemetry, **attrs) -> None:
    """Emit a zero-length ``recovery`` marker span (the priced recovery
    seconds appear in the enclosing region's derived ``faults`` span)."""
    span = telemetry.open_span("recovery", **attrs)
    telemetry.close_span(span)


class FaultController:
    """Seeded fault injection + recovery for one cluster.

    Built by :class:`~repro.cluster.machine.Cluster` when the config
    carries a :class:`~repro.faults.plan.FaultPlan`; reachable as
    ``cluster.faults`` and ``network.faults``.
    """

    def __init__(self, plan: FaultPlan, cluster):
        if plan.max_node() >= cluster.num_nodes:
            raise FaultPlanError(
                f"fault plan references node {plan.max_node()} but the "
                f"cluster has {cluster.num_nodes} nodes"
            )
        self.plan = plan
        self.cluster = cluster
        self.clock = FaultClock(plan)
        self.checkpoints = CheckpointStore()
        self.profile = DEFAULT_PROFILE
        self._miner = None
        self._last_candidates: tuple[int, ...] = ()
        self._last_duplicated = 0

    # ------------------------------------------------------------------
    # Run wiring
    # ------------------------------------------------------------------
    def bind_miner(self, miner) -> None:
        """Adopt a miner's recovery profile and restart the schedule.

        Called by ``ParallelMiner.mine`` so one cluster can host
        several identically-faulted runs (the chaos harness relies on
        rebinding producing the same fault stream)."""
        self._miner = miner
        self.profile = miner.fault_profile()
        self.clock = FaultClock(self.plan)
        self.checkpoints = CheckpointStore()
        self._last_candidates = ()
        self._last_duplicated = 0

    # ------------------------------------------------------------------
    # Network hooks
    # ------------------------------------------------------------------
    def on_send(self, network, src: int, dst: int, size: int, src_stats) -> int:
        """Decide one send's fate; returns mailbox copies (1 or 2).

        Draw order is fixed (transient, drop, duplicate) and sends are
        replayed in node order, so the fault stream is deterministic.
        """
        plan = self.plan
        clock = self.clock
        if plan.transient_rate > 0.0 and clock.chance(plan.transient_rate):
            self._retry_transient(network, src, dst, size, src_stats)
        if plan.drop_rate > 0.0 and clock.chance(plan.drop_rate):
            # The first copy is lost in flight; the coordinator detects
            # the gap and the sender retransmits.  What the mailbox
            # receives is the retransmission — one logical delivery.
            if src_stats is not None:
                src_stats.fault_dropped_messages += 1
                src_stats.fault_retries += 1
                src_stats.fault_retry_bytes += size
            self._record("fault", fault="drop", src=src, dst=dst, bytes=size)
        if plan.duplicate_rate > 0.0 and clock.chance(plan.duplicate_rate):
            self._record("fault", fault="duplicate", src=src, dst=dst, bytes=size)
            return 2
        return 1

    def _retry_transient(self, network, src, dst, size, src_stats) -> None:
        plan = self.plan
        for attempt in range(plan.retry_budget):
            if src_stats is not None:
                src_stats.fault_retries += 1
                src_stats.fault_retry_bytes += size
                src_stats.fault_backoff_units += 2**attempt
            if not self.clock.chance(plan.transient_rate):
                self._record(
                    "fault",
                    fault="transient",
                    src=src,
                    dst=dst,
                    bytes=size,
                    retries=attempt + 1,
                )
                return
        raise SendRetryExhaustedError(
            f"transient send failure from node {src} to node {dst} persisted "
            f"past the {plan.retry_budget}-retry budget "
            f"(pass {network.pass_index}, {network.pending(dst)} messages "
            f"pending for the receiver)"
        )

    def on_duplicate(self, node: int, size: int) -> None:
        """Charge one discarded duplicate to the receiving node."""
        stats = self.cluster.nodes[node].stats
        stats.fault_dup_messages += 1
        stats.fault_dup_bytes += size

    # ------------------------------------------------------------------
    # Pass-boundary hooks (driven by Cluster)
    # ------------------------------------------------------------------
    def on_begin_pass(self) -> None:
        """Inject this pass's scheduled stalls and crash recoveries."""
        pass_index = self.clock.next_pass()
        for stall in sorted(self.plan.stalls, key=lambda s: (s.pass_index, s.node)):
            if stall.pass_index != pass_index or stall.units == 0:
                continue
            node = self.cluster.nodes[stall.node]
            node.stats.fault_stall_units += stall.units
            self._record(
                "fault", fault="stall", node=stall.node, k=pass_index,
                units=stall.units,
            )
        for crash in sorted(self.plan.crashes, key=lambda c: (c.pass_index, c.node)):
            if crash.pass_index == pass_index:
                self._recover_crash(crash.node, pass_index)

    def _recover_crash(self, node_id: int, pass_index: int) -> None:
        """Replace a crashed node with a recovered cold standby.

        The standby (1) restores the latest pass checkpoint from stable
        storage, (2) replays its disk partition and proves the replay
        against the checkpointed pass-1 counts, and (3) pays for
        whatever candidate state the placement scheme lost.  All work
        is charged to the node's ``fault_*`` counters — the pass then
        proceeds exactly as the fault-free protocol would.
        """
        node = self.cluster.nodes[node_id]
        stats = node.stats
        stats.fault_crashes += 1

        checkpoint = self.checkpoints.latest()
        stats.fault_restored_bytes += checkpoint.size_bytes

        # Genuine replay: re-scan the standby's disk partition and
        # compare against the pass-1 oracle.  A mismatch means the
        # "recovered" node would count differently than the node it
        # replaces — unrecoverable, never papered over.
        stats.fault_rescan_items += node.disk.stored_items
        if self._miner is not None and self.checkpoints.has_pass1:
            from repro.perf.workers import Pass1Task, pass1_scan

            replayed = pass1_scan(
                Pass1Task(
                    disk=node.disk,
                    index=self._miner._full_index,
                    counting=self._miner.counting,
                )
            )
            expected = self.checkpoints.pass1_counts(node_id)
            if replayed.counts != expected:
                raise UnrecoverableFaultError(
                    f"node {node_id} replay diverged from its checkpoint at "
                    f"pass {pass_index}: {len(replayed.counts)} items "
                    f"counted, {len(expected)} expected"
                )
        elif self._miner is not None:
            raise CheckpointError(
                f"node {node_id} crashed at pass {pass_index} before the "
                "pass-1 oracle was recorded"
            )

        reassigned, dup_restored = self._reassignment_cost(checkpoint, node_id)
        stats.fault_reassigned_candidates += reassigned
        stats.fault_restored_bytes += dup_restored

        self._record(
            "fault",
            fault="crash",
            node=node_id,
            k=pass_index,
            restored_bytes=checkpoint.size_bytes + dup_restored,
            rescan_items=node.disk.stored_items,
            reassigned=reassigned,
            placement=self.profile.placement,
        )
        telemetry = self.cluster.telemetry
        if telemetry is not None:
            _mark_recovery(
                telemetry,
                node=node_id,
                k=pass_index,
                placement=self.profile.placement,
                reassigned=reassigned,
            )

    def _reassignment_cost(
        self, checkpoint: PassCheckpoint, node_id: int
    ) -> tuple[int, int]:
        """(candidates to reassign, bytes restored from replicas).

        Replicated placement loses nothing; partitioned placement must
        re-place the dead node's resident candidates; duplication
        variants fetch the duplicated set from any survivor (wire
        bytes) and reassign only the non-duplicated partition.
        """
        if self.profile.replicated_candidates:
            return 0, 0
        per_node = (
            checkpoint.per_node_candidates[node_id]
            if node_id < len(checkpoint.per_node_candidates)
            else 0
        )
        if self.profile.replicates_duplicates and checkpoint.duplicated_candidates:
            duplicated = min(per_node, checkpoint.duplicated_candidates)
            restored = duplicated * self.cluster.config.candidate_bytes
            return per_node - duplicated, restored
        return per_node, 0

    def on_finish_pass(self, pass_stats) -> None:
        """Snapshot per-node residency for the next checkpoint."""
        self._last_candidates = tuple(
            stats.candidates_stored for stats in pass_stats.nodes
        )
        self._last_duplicated = pass_stats.duplicated_candidates

    # ------------------------------------------------------------------
    # Checkpointing (driven by ParallelMiner.mine)
    # ------------------------------------------------------------------
    def checkpoint_pass(self, k: int, large: dict) -> None:
        """Record the pass-``k`` checkpoint (large itemsets + residency)."""
        self.checkpoints.record(
            PassCheckpoint(
                k=k,
                large=tuple(sorted(large.items())),
                per_node_candidates=self._last_candidates,
                duplicated_candidates=self._last_duplicated,
            )
        )

    def record_pass1(self, counts_per_node) -> None:
        """Record the pass-1 replay oracle (per-node item counts)."""
        self.checkpoints.record_pass1(counts_per_node)

    # ------------------------------------------------------------------
    def _record(self, event: str, **detail) -> None:
        trace = self.cluster.trace
        if trace is not None:
            trace.record(event, **detail)

    def __repr__(self) -> str:
        return (
            f"FaultController(plan_seed={self.plan.seed}, "
            f"profile={self.profile.placement}, "
            f"checkpoints={len(self.checkpoints.checkpoints)})"
        )
