"""``repro-chaos`` — the chaos equivalence harness.

For every requested algorithm × fault-plan preset this runs a
fault-free baseline and a faulted run on identical inputs, then checks
the recovered large itemsets are **byte-identical** to the baseline's
(``MiningResult`` equality plus a sha256 over the canonical rendering).
The faulted run's event sink is written next to ``--out`` so CI can
archive the exact fault stream that was recovered from.

Exit status is 0 only when every combination matched; any divergence
(or a ``ReproError`` escaping a run) exits 1 with the failing
combination named.

Example::

    repro-chaos --algorithms NPGM H-HPGM-FGD --plans crash combined \
        --transactions 400 --out /tmp/chaos

``repro-chaos serve`` runs the same equivalence discipline against the
**sharded serving tier** (:mod:`repro.faults.serve`): one seeded
workload is replayed clean and under every requested preset × fault
seed (shard kills with restart, dispatch stalls, dropped responses),
and every faulted answer transcript must be sha256-identical to the
clean one::

    repro-chaos serve --transactions 300 --queries 120 --shards 4 \
        --fault-seeds 11 12 13 --out /tmp/serve-chaos

``repro-chaos refresh`` applies the same discipline to the incremental
refresh pipeline (:mod:`repro.faults.refresh`): a clean base + deltas
sequence is replayed with a crash injected at every stage of the
ingest/publish protocol, and both the mid-crash serving state and the
recovered snapshot must match the clean run byte-for-byte::

    repro-chaos refresh --base-rows 1000 --deltas 3 --delta-rows 150 \
        --window-deltas 3 --out /tmp/refresh-chaos
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from pathlib import Path

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.core.cumulate import cumulate
from repro.core.rules import generate_rules
from repro.errors import ReproError, error_label, exit_code_for
from repro.experiments import common
from repro.faults.plan import PRESETS, FaultPlan
from repro.faults.serve import SERVE_PRESETS, run_serve_chaos
from repro.obs import EventSink, Telemetry
from repro.parallel.registry import ALGORITHMS, make_miner
from repro.serve.snapshot import compile_snapshot


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos",
        description="Assert fault recovery is invisible in mining results",
    )
    parser.add_argument("--dataset", default="R30F5", help="R30F5 | R30F3 | R30F10")
    parser.add_argument("--transactions", type=int, default=400)
    parser.add_argument(
        "--algorithms", nargs="+", default=list(ALGORITHMS), metavar="ALGO"
    )
    parser.add_argument(
        "--plans",
        nargs="+",
        default=list(PRESETS),
        metavar="PLAN",
        help="fault-plan presets: " + ", ".join(PRESETS),
    )
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument(
        "--memory", type=int, default=common.DEFAULT_MEMORY_PER_NODE
    )
    parser.add_argument("--min-support", type=float, default=0.05)
    parser.add_argument("--max-k", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7, help="dataset seed")
    parser.add_argument("--fault-seed", type=int, default=11)
    parser.add_argument(
        "--out",
        default=None,
        help="directory for summary.json and per-run fault-event sinks",
    )
    return parser


def _result_digest(result) -> str:
    payload = {
        "min_support": result.min_support,
        "num_transactions": result.num_transactions,
        "large": sorted(
            (sorted(itemset), count)
            for itemset, count in result.large_itemsets().items()
        ),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _run(dataset, algorithm, args, plan=None, sink_path=None):
    config = ClusterConfig(
        num_nodes=args.nodes,
        memory_per_node=args.memory,
        check_invariants=True,
        faults=plan,
    )
    cluster = Cluster.from_database(config, dataset.database)
    telemetry = None
    if sink_path is not None:
        telemetry = Telemetry(sink=EventSink(path=sink_path))
        cluster.attach_telemetry(telemetry)
    miner = make_miner(algorithm, cluster, dataset.taxonomy)
    run = miner.mine(args.min_support, max_k=args.max_k)
    if telemetry is not None and telemetry.sink is not None:
        telemetry.sink.close()
    return run


def _build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos serve",
        description="Assert shard-fault recovery is invisible in served answers",
    )
    parser.add_argument("--dataset", default="R30F5", help="R30F5 | R30F3 | R30F10")
    parser.add_argument("--transactions", type=int, default=300)
    parser.add_argument(
        "--seed", type=int, default=7, help="dataset + workload seed"
    )
    parser.add_argument("--min-support", type=float, default=0.05)
    parser.add_argument("--min-confidence", type=float, default=0.6)
    parser.add_argument("--max-k", type=int, default=3)
    parser.add_argument("--queries", type=int, default=120)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--replication", type=int, default=2)
    parser.add_argument(
        "--presets",
        nargs="+",
        default=list(SERVE_PRESETS),
        metavar="PLAN",
        help="serve fault presets: " + ", ".join(SERVE_PRESETS),
    )
    parser.add_argument(
        "--fault-seeds",
        nargs="+",
        type=int,
        default=[11, 12, 13],
        metavar="SEED",
        help="fault-plan seeds (equality must hold for every one)",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory for summary.json and per-run fault-event sinks",
    )
    return parser


def _serve_main(argv: list[str]) -> int:
    args = _build_serve_parser().parse_args(argv)
    try:
        dataset = common.experiment_dataset(
            args.dataset, args.transactions, args.seed
        )
        result = cumulate(
            dataset.database, dataset.taxonomy, args.min_support, max_k=args.max_k
        )
        rules = generate_rules(result, args.min_confidence, dataset.taxonomy)
        snapshot = compile_snapshot(
            rules,
            dataset.taxonomy,
            result=result,
            source={"dataset": args.dataset, "seed": args.seed},
        )
        summary = run_serve_chaos(
            snapshot,
            queries=args.queries,
            workload_seed=args.seed,
            presets=tuple(args.presets),
            fault_seeds=tuple(args.fault_seeds),
            shards=args.shards,
            replication=args.replication,
            out_dir=args.out,
        )
    except ReproError as error:
        print(
            f"repro-chaos serve: {error_label(error)}: {error}", file=sys.stderr
        )
        return exit_code_for(error)
    for run in summary["runs"]:
        status = "ok" if run["equal"] else "DIVERGED"
        print(
            f"serve {run['preset']:9s} seed={run['fault_seed']:<4d} "
            f"{status:8s} kills={run['kills']} recoveries={run['recoveries']} "
            f"hedges={run['hedges']} failovers={run['failovers']} "
            f"drops={run['drops']} sha={run['chaos_sha256'][:12]}"
        )
    if args.out:
        print(f"summary written to {Path(args.out) / 'summary.json'}")
    if summary["failures"]:
        print(
            f"repro-chaos serve: {summary['failures']} diverging run(s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"all {len(summary['runs'])} faulted runs byte-identical to clean "
        f"(sha {summary['clean_sha256'][:12]})"
    )
    return 0


def _build_refresh_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-chaos refresh",
        description="Assert refresh-crash recovery never serves a torn snapshot",
    )
    parser.add_argument("--dataset", default="R30F5", help="R30F5 | R30F3 | R30F10")
    parser.add_argument("--scale", type=float, default=0.005)
    parser.add_argument("--seed", type=int, default=1998)
    parser.add_argument("--base-rows", type=int, default=1000)
    parser.add_argument("--deltas", type=int, default=3)
    parser.add_argument("--delta-rows", type=int, default=150)
    parser.add_argument("--window-deltas", type=int, default=3)
    parser.add_argument("--min-support", type=float, default=0.15)
    parser.add_argument("--min-confidence", type=float, default=0.6)
    parser.add_argument("--max-k", type=int, default=None)
    parser.add_argument(
        "--out",
        required=True,
        help="work directory (refresh roots, per-stage event sinks, summary.json)",
    )
    return parser


def _refresh_main(argv: list[str]) -> int:
    from repro.datagen import generate_dataset, preset as dataset_preset
    from repro.faults.refresh import run_refresh_chaos

    args = _build_refresh_parser().parse_args(argv)
    try:
        dataset = generate_dataset(
            dataset_preset(args.dataset, scale=args.scale, seed=args.seed)
        )
        rows = list(dataset.database)
        need = args.base_rows + args.deltas * args.delta_rows
        if len(rows) < need:
            print(
                f"repro-chaos refresh: dataset yields {len(rows)} rows, "
                f"need {need}; raise --scale",
                file=sys.stderr,
            )
            return 2
        batches = [rows[: args.base_rows]]
        offset = args.base_rows
        for _ in range(args.deltas):
            batches.append(rows[offset : offset + args.delta_rows])
            offset += args.delta_rows
        summary = run_refresh_chaos(
            dataset.taxonomy,
            batches,
            min_support=args.min_support,
            min_confidence=args.min_confidence,
            window_deltas=args.window_deltas,
            work_dir=args.out,
            max_k=args.max_k,
        )
    except ReproError as error:
        print(
            f"repro-chaos refresh: {error_label(error)}: {error}", file=sys.stderr
        )
        return exit_code_for(error)
    for run in summary["runs"]:
        status = "ok" if run["ok"] else "FAILED"
        print(
            f"refresh {run['stage']:17s} {status:8s} "
            f"crashed={run['crashed']} mid_ok={run['mid_ok']} "
            f"recovered={run['recovered_equal']}"
        )
    print(f"summary written to {Path(args.out) / 'summary.json'}")
    if summary["failures"]:
        print(
            f"repro-chaos refresh: {summary['failures']} failing stage(s)",
            file=sys.stderr,
        )
        return 1
    clean = summary["clean_version"] or "(no publish)"
    print(
        f"all {len(summary['runs'])} crash stages recovered to the clean "
        f"snapshot ({clean[:12]})"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # `serve` / `refresh` route to their harnesses; everything else
    # keeps the original flat argument surface (CI invokes it
    # positionless).
    if argv and argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv and argv[0] == "refresh":
        return _refresh_main(argv[1:])
    args = _build_parser().parse_args(argv)
    dataset = common.experiment_dataset(args.dataset, args.transactions, args.seed)
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)

    rows = []
    failures = 0
    for algorithm in args.algorithms:
        try:
            baseline = _run(dataset, algorithm, args)
        except ReproError as error:
            print(
                f"repro-chaos: {algorithm} baseline: "
                f"{error_label(error)}: {error}",
                file=sys.stderr,
            )
            return exit_code_for(error)
        base_digest = _result_digest(baseline.result)
        for preset in args.plans:
            plan = FaultPlan.preset(preset, seed=args.fault_seed, num_nodes=args.nodes)
            sink_path = None
            if out_dir is not None:
                slug = algorithm.lower().replace("-", "")
                sink_path = out_dir / f"events-{slug}-{preset}.jsonl"
            try:
                chaos = _run(dataset, algorithm, args, plan=plan, sink_path=sink_path)
            except ReproError as error:
                print(
                    f"repro-chaos: {algorithm}/{preset}: "
                    f"{error_label(error)}: {error}",
                    file=sys.stderr,
                )
                failures += 1
                rows.append(
                    {
                        "algorithm": algorithm,
                        "plan": preset,
                        "equal": False,
                        "error": str(error),
                    }
                )
                continue
            chaos_digest = _result_digest(chaos.result)
            equal = chaos.result == baseline.result and chaos_digest == base_digest
            fault_events = sum(
                getattr(stats, name)
                for pass_stats in chaos.stats.passes
                for stats in pass_stats.nodes
                for name in (
                    "fault_crashes",
                    "fault_retries",
                    "fault_dropped_messages",
                    "fault_dup_messages",
                    "fault_stall_units",
                )
            )
            rows.append(
                {
                    "algorithm": algorithm,
                    "plan": preset,
                    "equal": equal,
                    "baseline_sha256": base_digest,
                    "chaos_sha256": chaos_digest,
                    "fault_events": fault_events,
                    "baseline_elapsed": baseline.stats.total_elapsed,
                    "chaos_elapsed": chaos.stats.total_elapsed,
                }
            )
            status = "ok" if equal else "DIVERGED"
            print(
                f"{algorithm:11s} {preset:9s} {status:8s} "
                f"faults={fault_events} sha={chaos_digest[:12]}"
            )
            if not equal:
                failures += 1

    if out_dir is not None:
        summary = {
            "dataset": args.dataset,
            "transactions": args.transactions,
            "nodes": args.nodes,
            "fault_seed": args.fault_seed,
            "runs": rows,
            "failures": failures,
        }
        summary_path = out_dir / "summary.json"
        summary_path.write_text(
            json.dumps(summary, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"summary written to {summary_path}")

    if failures:
        print(f"repro-chaos: {failures} diverging run(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
