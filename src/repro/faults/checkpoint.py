"""Pass-level checkpoints for crash recovery.

At every pass boundary the coordinator snapshots what a cold standby
would need to rejoin the computation:

* the pass number and the large itemsets accumulated so far (the only
  cross-pass mining state — candidate generation is a pure function of
  the broadcast ``L_{k-1}``);
* each node's resident candidate count and the duplicated-set size
  (what a placement scheme loses with a node, priced during recovery);
* the per-node pass-1 item counts (the replay oracle: a recovering
  node re-scans its disk partition and the result must match what it
  counted before the crash).

Checkpoints are value objects: the payload is canonical sorted-key
JSON, so its size — the bytes a standby pulls from stable storage — is
deterministic and the chaos transcripts are hash-seed independent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import CheckpointError


@dataclass(frozen=True)
class PassCheckpoint:
    """One pass boundary's recovery state.

    Parameters
    ----------
    k:
        The pass that just finished.
    large:
        ``(itemset, count)`` pairs of the large k-itemsets, sorted.
    per_node_candidates:
        Candidate residency per node during the pass.
    duplicated_candidates:
        Size of the duplicated set (replicated on every node).
    """

    k: int
    large: tuple[tuple[tuple[int, ...], int], ...]
    per_node_candidates: tuple[int, ...]
    duplicated_candidates: int = 0

    def payload(self) -> bytes:
        """Canonical serialized form (what stable storage holds)."""
        record = {
            "k": self.k,
            "large": [[list(itemset), count] for itemset, count in self.large],
            "per_node_candidates": list(self.per_node_candidates),
            "duplicated_candidates": self.duplicated_candidates,
        }
        return json.dumps(record, sort_keys=True, separators=(",", ":")).encode()

    @property
    def size_bytes(self) -> int:
        """Bytes a recovering standby reads back from stable storage."""
        return len(self.payload())


@dataclass
class CheckpointStore:
    """The coordinator's checkpoint log plus the pass-1 replay oracle."""

    checkpoints: list[PassCheckpoint] = field(default_factory=list)
    _pass1_counts: list[dict[int, int]] = field(default_factory=list)

    def record(self, checkpoint: PassCheckpoint) -> None:
        self.checkpoints.append(checkpoint)

    def latest(self) -> PassCheckpoint:
        """The newest checkpoint; recovery always restores from here."""
        if not self.checkpoints:
            raise CheckpointError(
                "no pass checkpoint recorded; a crash before the first "
                "checkpoint is unrecoverable"
            )
        return self.checkpoints[-1]

    def record_pass1(self, counts_per_node: list[dict[int, int]]) -> None:
        """Remember each node's pass-1 item counts (the replay oracle)."""
        self._pass1_counts = [dict(counts) for counts in counts_per_node]

    def pass1_counts(self, node: int) -> dict[int, int]:
        """The counts node ``node`` reported in pass 1."""
        if node >= len(self._pass1_counts):
            raise CheckpointError(
                f"no pass-1 counts recorded for node {node}; "
                "crash recovery needs the replay oracle"
            )
        return self._pass1_counts[node]

    @property
    def has_pass1(self) -> bool:
        return bool(self._pass1_counts)

    def total_bytes(self) -> int:
        """Cumulative checkpoint volume written so far."""
        return sum(checkpoint.size_bytes for checkpoint in self.checkpoints)
