"""Per-node execution backend: serial or multi-process.

The simulated cluster's scan phases are embarrassingly parallel across
nodes: each node's work is a pure function of its partition and the
broadcast pass inputs.  ``execute_per_node`` maps a picklable worker
over the per-node tasks either inline (``executor="serial"``) or on a
``ProcessPoolExecutor`` (``executor="process"``), returning results in
**node order** regardless of completion order — the deterministic merge
that keeps multi-core runs byte-identical to serial ones.

Workers never touch shared simulator state: they return per-node
statistics, counts and outgoing messages, and the miner *replays* those
against the real ``NodeStats`` / ``Network`` objects in node order, so
traces, telemetry spans and invariant checks observe exactly the
sequence a serial run produces.

Task payload size is what makes or breaks the process backend: a task's
``disk`` wraps either a pickled in-memory partition (the legacy path,
whose serialisation cost BENCH_pr3 measured eating the speedup) or a
zero-copy handle — a :class:`~repro.store.reader.StoreView` (path +
row range, re-opened via mmap in the worker) or a
:class:`~repro.store.shm.ShmView` (shared-memory block name + node
index).  With handles, nothing row-shaped crosses the pickle boundary
in either direction; see :mod:`repro.store`.
"""

from __future__ import annotations

import multiprocessing
import os
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import TypeVar

from repro.errors import ClusterError

Task = TypeVar("Task")
Result = TypeVar("Result")

EXECUTORS = ("serial", "process")


def effective_workers(workers: int | None) -> int:
    """The worker-process count a ``process`` backend will use."""
    if workers is not None:
        return max(1, workers)
    return os.cpu_count() or 1


def _pool_context():
    """Prefer fork (cheap, inherits ``sys.path``); fall back to default."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def execute_per_node(
    config,
    worker: Callable[[Task], Result],
    tasks: Sequence[Task],
) -> list[Result]:
    """Run ``worker`` over per-node ``tasks``; results in task order.

    Parameters
    ----------
    config:
        A :class:`~repro.cluster.config.ClusterConfig` (read for
        ``executor`` and ``workers``).
    worker:
        Module-level function (picklable for the process backend).
    tasks:
        One picklable task per node, node order.
    """
    executor = getattr(config, "executor", "serial")
    if executor not in EXECUTORS:
        raise ClusterError(
            f"unknown executor {executor!r}; known: {', '.join(EXECUTORS)}"
        )
    workers = effective_workers(getattr(config, "workers", None))
    if executor == "process" and workers > 1 and len(tasks) > 1:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)),
            mp_context=_pool_context(),
        ) as pool:
            return list(pool.map(worker, tasks))
    return [worker(task) for task in tasks]
