"""Performance layer: metric-preserving fast kernels and multi-core execution.

The paper's contribution is *speed*; this package makes the
reproduction fast without changing anything the reproduction measures:

* :mod:`repro.perf.config` — :class:`CountingConfig`, the switch
  between the naive reference kernels and the fast ones (plus
  transaction deduplication), threaded through Cumulate and all six
  parallel miners.
* :mod:`repro.perf.kernels` — prefix-indexed candidate-trie counters
  that report **exactly** the probe/generated/count metrics of the
  naive kernels (the probe-preservation contract: probes are semantic —
  they feed Figure 15 and the cost model — so the fast kernels compute
  them in closed form while doing candidate-driven work).
* :mod:`repro.perf.preprocess` — distinct-transaction deduplication
  with multiplicity weights and memoized ancestor extension.
* :mod:`repro.perf.executor` — per-node execution backend: serial or a
  ``ProcessPoolExecutor`` over the simulated nodes with deterministic
  node-order merge (selected by ``ClusterConfig.executor``).
* :mod:`repro.perf.bench` — the ``repro-bench`` wall-clock trajectory
  harness emitting schema-versioned ``BENCH_<label>.json`` files.

See ``docs/performance.md`` for the designs and the contract.
"""

from repro.perf.config import CountingConfig, default_counting
from repro.perf.executor import execute_per_node
from repro.perf.kernels import (
    CandidateTrie,
    FastAncestorClosureCounter,
    FastRootKeyedClosureCounter,
    FastSupportCounter,
)
from repro.perf.preprocess import ExtensionCache, dedup_with_weights

__all__ = [
    "CandidateTrie",
    "CountingConfig",
    "ExtensionCache",
    "FastAncestorClosureCounter",
    "FastRootKeyedClosureCounter",
    "FastSupportCounter",
    "default_counting",
    "dedup_with_weights",
    "execute_per_node",
]
