"""Counting configuration: which kernels count, and how.

One frozen :class:`CountingConfig` is threaded from the public entry
points (``cumulate``, ``make_miner``, ``mine_parallel``, the CLI) down
to every counter construction.  It never changes *what* is counted —
the fast kernels are bound by the probe-preservation contract (see
:mod:`repro.perf.kernels`) — only how much wall-clock time counting
takes.

``REPRO_KERNEL=naive|fast`` and ``REPRO_DEDUP=0|1`` override the
defaults process-wide, which is how the benchmark harness and CI pit
the two implementations against each other without code changes.
"""

from __future__ import annotations

import os
from collections.abc import Collection, Mapping
from dataclasses import dataclass

from repro.core.counting import (
    AncestorClosureCounter,
    RootKeyedClosureCounter,
    SupportCounter,
)
from repro.core.itemsets import Itemset
from repro.errors import MiningError

KERNELS = ("fast", "naive")


@dataclass(frozen=True)
class CountingConfig:
    """How support counting is executed (never what it reports).

    Attributes
    ----------
    kernel:
        ``"fast"`` — prefix-indexed candidate-trie kernels from
        :mod:`repro.perf.kernels`; ``"naive"`` — the reference
        enumeration kernels from :mod:`repro.core.counting`.  Both
        report identical ``counts`` / ``probes`` / ``generated``.
    dedup:
        Count each distinct (filtered) transaction once and scale its
        hits by multiplicity.  Also enables the routing/extension memos
        in the miners' scan loops.  Metrics are weight-scaled so they
        stay identical to per-transaction counting.
    strategy:
        Engine for the *naive* :class:`SupportCounter` (``"dict"``,
        ``"hashtree"`` or ``"auto"``).  Defaults to ``"dict"`` — the
        semantics the probe counters are defined against; the fast
        kernel always reports dict-strategy metrics.
    store:
        Optional path of a columnar transaction store directory (see
        :mod:`repro.store`).  Entry points that accept a counting
        config (``cumulate``, ``mine_parallel``, the CLIs) resolve it
        with :func:`repro.store.open_store` when no in-memory database
        is supplied, so any run can point at an on-disk dataset.
        Results and digests are identical to the in-memory path.
    """

    kernel: str = "fast"
    dedup: bool = True
    strategy: str = "dict"
    store: str | None = None

    def __post_init__(self) -> None:
        if self.kernel not in KERNELS:
            raise MiningError(
                f"unknown counting kernel {self.kernel!r}; known: {', '.join(KERNELS)}"
            )
        if self.strategy not in ("auto", "dict", "hashtree"):
            raise MiningError(f"unknown counting strategy {self.strategy!r}")

    @property
    def fast(self) -> bool:
        return self.kernel == "fast"

    @classmethod
    def naive(cls) -> "CountingConfig":
        """The reference configuration: naive kernels, no dedup."""
        return cls(kernel="naive", dedup=False)

    # ------------------------------------------------------------------
    # Counter factories (the only places kernels are chosen)
    # ------------------------------------------------------------------
    def support_counter(self, candidates: Collection[Itemset], k: int):
        """A pass-k counter for Cumulate/NPGM-style extended transactions."""
        if self.fast:
            from repro.perf.kernels import FastSupportCounter

            return FastSupportCounter(candidates, k, memoize=self.dedup)
        return SupportCounter(candidates, k, strategy=self.strategy)

    def closure_counter(
        self,
        candidates: Collection[Itemset],
        k: int,
        ancestor_table: Mapping[int, tuple[int, ...]],
    ):
        """An H-HPGM-family ancestor-closure counter."""
        if self.fast:
            from repro.perf.kernels import FastAncestorClosureCounter

            return FastAncestorClosureCounter(
                candidates, k, ancestor_table, memoize=self.dedup
            )
        return AncestorClosureCounter(candidates, k, ancestor_table)

    def root_keyed_counter(
        self,
        candidates: Collection[Itemset],
        k: int,
        ancestor_table: Mapping[int, tuple[int, ...]],
        root_of: Mapping[int, int],
    ):
        """An H-HPGM partition kernel (per-root-key enumeration)."""
        if self.fast:
            from repro.perf.kernels import FastRootKeyedClosureCounter

            return FastRootKeyedClosureCounter(
                candidates, k, ancestor_table, root_of, memoize=self.dedup
            )
        return RootKeyedClosureCounter(candidates, k, ancestor_table, root_of)


def default_counting() -> CountingConfig:
    """The process-wide default, honouring ``REPRO_KERNEL`` /
    ``REPRO_DEDUP`` / ``REPRO_STORE``."""
    kernel = os.environ.get("REPRO_KERNEL", "fast")
    dedup_raw = os.environ.get("REPRO_DEDUP")
    dedup = kernel == "fast" if dedup_raw is None else dedup_raw not in ("0", "false")
    return CountingConfig(
        kernel=kernel, dedup=dedup, store=os.environ.get("REPRO_STORE") or None
    )
