"""Pure per-node scan workers shared by the serial and process backends.

Each worker is a module-level function (picklable) of one task
dataclass.  It receives the node's local disk plus the broadcast pass
inputs, builds a **fresh** :class:`~repro.cluster.stats.NodeStats`, and
returns everything the miner needs to replay the node's side effects in
the main process: the statistics delta, the local count hits, and the
outgoing messages *in send order*.  Workers never see the ``Network``,
the telemetry or the other nodes — replay in node order therefore
reproduces a serial run's trace, span and invariant behaviour exactly,
whichever backend ran the workers.

The counting semantics (including every ``probes`` / ``generated`` /
``increments`` movement) mirror the serial scan loops of the miners
line by line; the equivalence suite pins serial-naive, serial-fast and
process-fast runs to byte-identical statistics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields
from itertools import combinations

from repro.cluster.disk import LocalDisk
from repro.cluster.stats import NodeStats
from repro.core.itemsets import Itemset
from repro.parallel.allocation import feasible_root_keys, itemset_owner
from repro.perf.config import CountingConfig
from repro.perf.kernels import FastSupportCounter
from repro.perf.preprocess import ExtensionCache, RewriteCache
from repro.taxonomy.ops import AncestorIndex

try:  # optional accelerator for the HPGM pair-routing fast path
    import numpy as _np
except ImportError:  # pragma: no cover - depends on the environment
    _np = None

Payload = tuple[int, ...]
Send = tuple[int, Payload]


def apply_stats(target: NodeStats, delta: NodeStats) -> None:
    """Fold a worker's statistics delta into the node's live counters.

    Counter-wise addition: the worker starts from a zeroed
    :class:`NodeStats`, and the live object may already carry receive
    charges from earlier nodes' replayed sends.
    """
    for spec in fields(NodeStats):
        setattr(
            target, spec.name, getattr(target, spec.name) + getattr(delta, spec.name)
        )


# ----------------------------------------------------------------------
# Pass 1 — items plus ancestors, identical for every algorithm
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Pass1Task:
    disk: LocalDisk
    index: AncestorIndex
    counting: CountingConfig


@dataclass
class Pass1Result:
    stats: NodeStats
    counts: dict[int, int]


def pass1_scan(task: Pass1Task) -> Pass1Result:
    """Count items + ancestors over one partition (Cumulate containment)."""
    stats = NodeStats()
    local: dict[int, int] = {}
    index = task.index
    if task.counting.dedup:
        weights = Counter(task.disk.scan(stats))
        for transaction, weight in weights.items():
            stats.extend_items += len(transaction) * weight
            extended = index.extend(transaction)
            stats.probes += len(extended) * weight
            stats.increments += len(extended) * weight
            for item in extended:
                local[item] = local.get(item, 0) + weight
    else:
        for transaction in task.disk.scan(stats):
            stats.extend_items += len(transaction)
            extended = index.extend(transaction)
            stats.probes += len(extended)
            stats.increments += len(extended)
            for item in extended:
                local[item] = local.get(item, 0) + 1
    return Pass1Result(stats=stats, counts=local)


# ----------------------------------------------------------------------
# NPGM — replicated candidates, no communication
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class NPGMScanTask:
    disk: LocalDisk
    index: AncestorIndex
    candidates: tuple[Itemset, ...]
    k: int
    fragments: int
    counting: CountingConfig


@dataclass
class NPGMScanResult:
    stats: NodeStats
    counts: dict[Itemset, int]


def npgm_scan(task: NPGMScanTask) -> NPGMScanResult:
    """One NPGM node scan, fragment multipliers applied (Figure 2)."""
    stats = NodeStats()
    counting = task.counting
    counter = counting.support_counter(task.candidates, task.k)
    extender = ExtensionCache(task.index) if counting.dedup else task.index
    if counting.dedup and counting.fast:
        weights = Counter(task.disk.scan(stats))
        for transaction, weight in weights.items():
            stats.extend_items += len(transaction) * weight
            counter.add_transaction(extender.extend(transaction), weight=weight)
    else:
        for transaction in task.disk.scan(stats):
            stats.extend_items += len(transaction)
            counter.add_transaction(extender.extend(transaction))
    fragments = task.fragments
    stats.io_items *= fragments
    stats.io_scans = fragments
    stats.extend_items *= fragments
    stats.itemsets_generated = counter.generated * fragments
    stats.probes = counter.probes * fragments
    stats.increments = sum(counter.counts.values())
    nonzero = {
        itemset: count for itemset, count in sorted(counter.counts.items()) if count
    }
    return NPGMScanResult(stats=stats, counts=nonzero)


# ----------------------------------------------------------------------
# HPGM — per-itemset hash routing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HPGMScanTask:
    disk: LocalDisk
    index: AncestorIndex
    universe: frozenset[int]
    owned: frozenset[Itemset]
    k: int
    me: int
    num_nodes: int
    counting: CountingConfig
    #: Optional ``(index_of, owner_matrix)`` from
    #: :func:`~repro.parallel.allocation.pair_owner_matrix`; enables the
    #: vectorized k == 2 routing path.
    pair_owners: tuple | None = None


@dataclass
class HPGMScanResult:
    stats: NodeStats
    hits: dict[Itemset, int]
    sends: list[Send] = field(default_factory=list)


def _route_pairs(
    relevant: tuple[int, ...],
    index_of: dict[int, int],
    owner_matrix,
    me: int,
    triu_cache: dict[int, tuple],
):
    """Vectorized k == 2 routing of one distinct relevant set.

    Metric- and payload-identical to the naive pair loop: pairs come
    from ``triu_indices`` in ``combinations`` order, so each
    destination's flattened payload preserves the enumeration order,
    and destinations appear in ascending id order (the bincount scan)
    exactly like the naive path's ``sorted(batches.items())``.  Local
    hits are not computed here — the caller counts them through a
    :class:`~repro.perf.kernels.FastSupportCounter` over its owned
    candidates, which matches the naive membership test because every
    owned candidate hashes to ``me``.
    """
    n = len(relevant)
    cached = triu_cache.get(n)
    if cached is None:
        cached = _np.triu_indices(n, 1)
        triu_cache[n] = cached
    ai, aj = cached
    positions = _np.fromiter(
        (index_of[item] for item in relevant), dtype=_np.intp, count=n
    )
    dests = owner_matrix[positions[ai], positions[aj]]
    per_dest = _np.bincount(dests)
    local_probes = int(per_dest[me]) if me < len(per_dest) else 0
    items = _np.asarray(relevant, dtype=_np.int64)
    first_items = items[ai]
    second_items = items[aj]
    batches = []
    for dest, dest_count in enumerate(per_dest.tolist()):
        if not dest_count or dest == me:
            continue
        chosen = dests == dest
        flat = _np.empty(2 * dest_count, dtype=_np.int64)
        flat[0::2] = first_items[chosen]
        flat[1::2] = second_items[chosen]
        batches.append((dest, tuple(flat.tolist())))
    return (n * (n - 1) // 2, local_probes, None, tuple(batches))


def hpgm_scan(task: HPGMScanTask) -> HPGMScanResult:
    """One HPGM node scan: extend, enumerate k-subsets, route by hash.

    With dedup enabled the enumeration + hashing of each distinct
    relevant set runs once; repeats replay the stored local hits and
    batches (sends still appear once per occurrence — message volume is
    Table 6's semantic quantity).  With the fast kernels and k == 2 the
    per-set work itself is vectorized (see :func:`_route_pairs`).
    """
    k = task.k
    me = task.me
    num_nodes = task.num_nodes
    universe = task.universe
    owned = task.owned
    stats = NodeStats()
    hits: dict[Itemset, int] = {}
    sends: list[Send] = []
    extender = ExtensionCache(task.index) if task.counting.dedup else task.index
    memo: dict | None = {} if task.counting.dedup else None
    fast_pairs = (
        task.pair_owners
        if (
            task.counting.fast
            and k == 2
            and task.pair_owners is not None
            and _np is not None
        )
        else None
    )
    if fast_pairs is not None:
        index_of, owner_matrix = fast_pairs
        # Local hits through the deferred-fold counter: each call
        # returns the hit count (for ``increments``) without ever
        # materialising the hit tuples; the per-subset occurrence
        # counts are folded once at the end.
        hit_counter = FastSupportCounter(owned, 2) if owned else None
        triu_cache: dict[int, tuple] = {}
    # Placement is a pure function of the subset; popular subsets recur
    # across transactions far more often than relevant sets do, so the
    # FNV hash is cached per distinct subset (dedup family, like the
    # extension cache above).
    owner_cache: dict[Itemset, int] | None = {} if task.counting.dedup else None
    for transaction in task.disk.scan(stats):
        stats.extend_items += len(transaction)
        extended = extender.extend(transaction)
        relevant = tuple(item for item in extended if item in universe)
        if len(relevant) < k:
            continue
        entry = memo.get(relevant) if memo is not None else None
        if entry is None:
            if fast_pairs is not None:
                entry = _route_pairs(
                    relevant, index_of, owner_matrix, me, triu_cache
                )
            else:
                generated = 0
                local_probes = 0
                local_hits: list[Itemset] = []
                batches: dict[int, list[int]] = {}
                for subset in combinations(relevant, k):
                    generated += 1
                    if owner_cache is None:
                        dest = itemset_owner(subset, num_nodes)
                    else:
                        dest = owner_cache.get(subset)
                        if dest is None:
                            dest = itemset_owner(subset, num_nodes)
                            owner_cache[subset] = dest
                    if dest == me:
                        local_probes += 1
                        if subset in owned:
                            local_hits.append(subset)
                    else:
                        batches.setdefault(dest, []).extend(subset)
                entry = (
                    generated,
                    local_probes,
                    tuple(local_hits),
                    tuple(
                        (dest, tuple(flat))
                        for dest, flat in sorted(batches.items())
                    ),
                )
            if memo is not None:
                memo[relevant] = entry
        generated, local_probes, local_hits, batches = entry
        stats.itemsets_generated += generated
        stats.probes += local_probes
        if local_hits is None:
            if hit_counter is not None:
                stats.increments += hit_counter.add_transaction(relevant)
        else:
            stats.increments += len(local_hits)
            for subset in local_hits:
                hits[subset] = hits.get(subset, 0) + 1
        sends.extend(batches)
    if fast_pairs is not None and hit_counter is not None:
        hits = {
            itemset: count
            for itemset, count in sorted(hit_counter.counts.items())
            if count
        }
    return HPGMScanResult(stats=stats, hits=hits, sends=sends)


# ----------------------------------------------------------------------
# H-HPGM family — lowest-large rewrite, root-key routing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HHPGMScanTask:
    disk: LocalDisk
    replacement: dict[int, int | None]
    root_of: dict[int, int]
    owners: dict[tuple[int, ...], int]
    active_keys: frozenset[tuple[int, ...]]
    useful_for: tuple[frozenset[int], ...]
    chains: dict[int, tuple[int, ...]]
    partition: tuple[Itemset, ...]
    duplicated: tuple[Itemset, ...]
    k: int
    me: int
    counting: CountingConfig


@dataclass
class HHPGMScanResult:
    stats: NodeStats
    counts: dict[Itemset, int]
    probes: int
    generated: int
    dup_counts: dict[Itemset, int]
    dup_probes: int
    dup_generated: int
    sends: list[Send] = field(default_factory=list)


def hhpgm_scan(task: HHPGMScanTask) -> HHPGMScanResult:
    """One H-HPGM node scan: rewrite, count duplicates, route fragments.

    Local fragments (``dest == me``) are counted here against a fresh
    partition counter; its counts/probes/generated are merged into the
    miner's resident counter, which then also absorbs the receive phase.
    """
    k = task.k
    me = task.me
    counting = task.counting
    root_of = task.root_of
    owners = task.owners
    active_keys = task.active_keys
    useful_for = task.useful_for
    stats = NodeStats()
    counter = counting.root_keyed_counter(task.partition, k, task.chains, root_of)
    dup_counter = (
        counting.root_keyed_counter(task.duplicated, k, task.chains, root_of)
        if task.duplicated
        else None
    )
    rewriter = RewriteCache(task.replacement)
    route_memo: dict[Payload, tuple[Send, ...]] | None = (
        {} if counting.dedup else None
    )
    sends: list[Send] = []
    for transaction in task.disk.scan(stats):
        stats.extend_items += len(transaction)
        rewritten = rewriter.rewrite(transaction)
        if len(rewritten) < k:
            continue
        if dup_counter is not None:
            dup_counter.add_transaction(rewritten)
        route = route_memo.get(rewritten) if route_memo is not None else None
        if route is None:
            transaction_roots = Counter(root_of[item] for item in rewritten)
            destination_roots: dict[int, set[int]] = {}
            if k == 2:
                # The feasible size-2 keys are exactly the root pairs the
                # transaction can realise — enumerate them directly
                # instead of recursing through the multiset generator.
                roots = sorted(transaction_roots)
                for index, first in enumerate(roots):
                    if transaction_roots[first] >= 2:
                        key = (first, first)
                        if key in active_keys:
                            destination_roots.setdefault(
                                owners[key], set()
                            ).update(key)
                    for second in roots[index + 1 :]:
                        key = (first, second)
                        if key in active_keys:
                            destination_roots.setdefault(
                                owners[key], set()
                            ).update(key)
            else:
                for key in feasible_root_keys(transaction_roots, k):
                    if key in active_keys:
                        destination_roots.setdefault(owners[key], set()).update(key)
            routed: list[Send] = []
            for dest, roots in sorted(destination_roots.items()):
                useful = useful_for[dest]
                fragment = tuple(
                    item
                    for item in rewritten
                    if root_of[item] in roots and item in useful
                )
                if len(fragment) < k:
                    continue
                routed.append((dest, fragment))
            route = tuple(routed)
            if route_memo is not None:
                route_memo[rewritten] = route
        for dest, fragment in route:
            if dest == me:
                counter.add_transaction(fragment)
            else:
                sends.append((dest, fragment))
    return HHPGMScanResult(
        stats=stats,
        counts={c: n for c, n in sorted(counter.counts.items()) if n},
        probes=counter.probes,
        generated=counter.generated,
        dup_counts=dict(dup_counter.counts) if dup_counter is not None else {},
        dup_probes=dup_counter.probes if dup_counter is not None else 0,
        dup_generated=dup_counter.generated if dup_counter is not None else 0,
        sends=sends,
    )
