"""``repro-bench scale`` — per-core scaling curves with peak-RSS evidence.

The main ``repro-bench`` matrix answers "is fast-process faster than
fast-serial on *this* host?".  This harness answers the two questions a
reviewer asks next:

* **How does the process backend scale with cores?**  One store-backed
  ``fast-process`` run per worker count (default ``1, 2, 4, …, N`` up
  to the host's cpu count), plus a ``fast-serial`` reference, all over
  the *same* store directory.  Digests must agree across every point.
* **Does the store actually bound memory?**  Every point is executed in
  a fresh **child process** so ``getrusage(RUSAGE_SELF).ru_maxrss`` is
  that run's own high-water mark, not the parent's accumulated one.  An
  optional *materialized baseline* pulls the whole store into an
  in-memory :class:`~repro.datagen.corpus.TransactionDatabase` first —
  the cost the store exists to avoid — so the report shows
  ``peak_rss_bytes`` of mmap-backed scans next to the materialized
  figure on identical rows.

Points where the pool is wider than the host's core count are marked
``underprovisioned: true`` (same contract as the main matrix): their
wall-clock is recorded but is not evidence of scaling.

Reports use schema ``repro.scale/v1`` and normalize into
``HISTORY.jsonl`` like any other benchmark (kind ``scale``; see
:mod:`repro.perf.history`), so the scaling trajectory is watched by
``repro-bench compare`` too.

Child protocol: ``python -m repro.perf.scale --child`` reads one JSON
spec on stdin, runs one configuration, and prints one JSON result on
stdout.  Everything row-shaped stays inside the child; the parent only
ever sees digests and counters.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path

from repro.errors import ReproError

#: Version tag of the scaling-curve result files.
SCALE_SCHEMA = "repro.scale/v1"


class ScaleBenchError(ReproError):
    """A scaling-curve child run failed or disagreed on results."""


def peak_rss_bytes() -> int:
    """This process's resident high-water mark, in bytes.

    ``ru_maxrss`` is KiB on Linux and bytes on macOS — one of the few
    places the two disagree on units.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - non-Linux CI
        return peak
    return peak * 1024


def default_worker_curve(cpus: int) -> tuple[int, ...]:
    """The ``1, 2, 4, …`` doubling curve, always ending at ``cpus``."""
    curve = [1]
    while curve[-1] * 2 < cpus:
        curve.append(curve[-1] * 2)
    if cpus > 1:
        curve.append(cpus)
    return tuple(curve)


# ----------------------------------------------------------------------
# Child side: one configuration, one process, one JSON line
# ----------------------------------------------------------------------
def run_child(spec: dict) -> dict:
    """Execute one spec in *this* process; called in the child."""
    from repro.cluster.config import ClusterConfig
    from repro.cluster.machine import Cluster
    from repro.datagen.corpus import TransactionDatabase
    from repro.parallel.registry import make_miner
    from repro.perf.bench import run_digest
    from repro.perf.config import CountingConfig
    from repro.store import TAXONOMY_NAME, open_store
    from repro.taxonomy.io import load_taxonomy

    store = open_store(spec["store"], verify=bool(spec.get("verify", False)))
    taxonomy = load_taxonomy(Path(spec["store"]) / TAXONOMY_NAME)
    config = ClusterConfig(
        num_nodes=spec["nodes"],
        memory_per_node=spec["memory_per_node"],
        executor=spec["executor"],
        workers=spec.get("workers"),
    )
    if spec.get("materialize"):
        # The RSS baseline: decode every row into tuples up front, the
        # exact allocation pattern the store replaces with mmap views.
        # repro-lint: disable=RL011 — this IS the materialized baseline
        # the rule exists to prevent; the RSS delta is the evidence.
        rows = store.to_list()
        cluster = Cluster.from_database(config, TransactionDatabase(rows))
    else:
        cluster = Cluster.from_store(config, store)
    started = time.perf_counter()
    try:
        miner = make_miner(
            spec["algorithm"],
            cluster,
            taxonomy,
            counting=CountingConfig(
                kernel=spec["kernel"], dedup=spec["dedup"]
            ),
        )
        run = miner.mine(spec["min_support"], max_k=spec.get("max_k"))
    finally:
        cluster.close()
    wall = time.perf_counter() - started
    children = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    if sys.platform != "darwin":
        children *= 1024
    return {
        "wall_seconds": round(wall, 6),
        "digest": run_digest(run),
        "total_probes": sum(p.total_probes for p in run.stats.passes),
        "peak_rss_bytes": peak_rss_bytes(),
        # Largest pool worker, when the executor spawned any.
        "peak_child_rss_bytes": children,
        "rows": len(store),
    }


def _child_main() -> int:
    spec = json.loads(sys.stdin.read())
    print(json.dumps(run_child(spec), sort_keys=True))
    return 0


# ----------------------------------------------------------------------
# Parent side: spawn children, assemble the curve
# ----------------------------------------------------------------------
def _spawn(spec: dict) -> dict:
    """Run one spec in a fresh interpreter; returns its result dict."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parent.parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        package_root if not existing else os.pathsep.join([package_root, existing])
    )
    completed = subprocess.run(
        [sys.executable, "-m", "repro.perf.scale", "--child"],
        input=json.dumps(spec),
        capture_output=True,
        text=True,
        env=env,
    )
    if completed.returncode != 0:
        raise ScaleBenchError(
            f"scale child failed (exit {completed.returncode}): "
            f"{completed.stderr.strip() or completed.stdout.strip()}"
        )
    try:
        return json.loads(completed.stdout)
    except json.JSONDecodeError:
        raise ScaleBenchError(
            f"scale child emitted non-JSON: {completed.stdout!r}"
        ) from None


def run_scale(
    store_path: str | Path,
    algorithm: str = "HPGM",
    num_nodes: int = 8,
    min_support: float = 0.01,
    max_k: int | None = 2,
    memory_per_node: int | None = None,
    worker_counts: tuple[int, ...] | None = None,
    materialized_baseline: bool = True,
    label: str = "scale",
) -> dict:
    """Measure the full curve; returns the ``repro.scale/v1`` report."""
    from repro.experiments import common

    cpus = os.cpu_count() or 1
    if worker_counts is None:
        worker_counts = default_worker_curve(cpus)
    if memory_per_node is None:
        memory_per_node = common.DEFAULT_MEMORY_PER_NODE
    base_spec = {
        "store": str(store_path),
        "algorithm": algorithm,
        "nodes": num_nodes,
        "min_support": min_support,
        "max_k": max_k,
        "memory_per_node": memory_per_node,
        "kernel": "fast",
        "dedup": True,
    }
    print(
        f"host: {cpus} cpu(s); curve workers={list(worker_counts)}",
        file=sys.stderr,
    )

    serial = _spawn({**base_spec, "executor": "serial", "verify": True})
    serial["configuration"] = "fast-serial"
    print(
        f"{'fast-serial':<16} {serial['wall_seconds']:9.3f}s  "
        f"rss={serial['peak_rss_bytes'] / 1e6:.1f}MB",
        file=sys.stderr,
    )

    curve: list[dict] = []
    identical = True
    for workers in worker_counts:
        result = _spawn(
            {**base_spec, "executor": "process", "workers": workers}
        )
        result["configuration"] = f"fast-process/w{workers}"
        result["workers"] = workers
        result["underprovisioned"] = workers > cpus
        result["speedup_vs_serial"] = (
            round(serial["wall_seconds"] / result["wall_seconds"], 3)
            if result["wall_seconds"] > 0
            else 0.0
        )
        result["matches_baseline"] = result["digest"] == serial["digest"]
        identical = identical and result["matches_baseline"]
        curve.append(result)
        print(
            f"{'fast-process':<12} w={workers:<3} "
            f"{result['wall_seconds']:9.3f}s  "
            f"x{result['speedup_vs_serial']:<6} "
            f"rss={result['peak_rss_bytes'] / 1e6:.1f}MB  "
            f"{'ok' if result['matches_baseline'] else 'RESULT MISMATCH'}"
            f"{'  [underprovisioned]' if result['underprovisioned'] else ''}",
            file=sys.stderr,
        )

    materialized = None
    if materialized_baseline:
        materialized = _spawn(
            {**base_spec, "executor": "serial", "materialize": True}
        )
        materialized["configuration"] = "materialized-serial"
        materialized["matches_baseline"] = (
            materialized["digest"] == serial["digest"]
        )
        identical = identical and materialized["matches_baseline"]
        print(
            f"{'materialized':<16} {materialized['wall_seconds']:9.3f}s  "
            f"rss={materialized['peak_rss_bytes'] / 1e6:.1f}MB  "
            f"({'ok' if materialized['matches_baseline'] else 'RESULT MISMATCH'})",
            file=sys.stderr,
        )

    return {
        "schema": SCALE_SCHEMA,
        "label": label,
        "workload": {
            "rows": serial["rows"],
            "algorithm": algorithm,
            "nodes": num_nodes,
            "min_support": min_support,
            "max_k": max_k,
            "memory_per_node": memory_per_node,
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": cpus,
        },
        "results_identical": identical,
        "serial": serial,
        "materialized": materialized,
        "curve": curve,
    }


def main_scale(argv: list[str]) -> int:
    """``repro-bench scale`` entry point."""
    if argv and argv[0] == "--child":
        return _child_main()
    parser = argparse.ArgumentParser(
        prog="repro-bench scale",
        description="Per-core scaling curve over a columnar store, with "
        "per-run peak RSS measured in child processes",
    )
    parser.add_argument(
        "--store",
        required=True,
        help="store directory (repro-mine generate --store-out) to mine",
    )
    parser.add_argument("--algorithm", default="HPGM")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--min-support", type=float, default=0.01)
    parser.add_argument("--max-k", type=int, default=2)
    parser.add_argument(
        "--workers-list",
        default=None,
        help="comma-separated worker counts (default: 1,2,4,... up to cpus)",
    )
    parser.add_argument(
        "--no-materialized-baseline",
        action="store_true",
        help="skip the in-memory materialization RSS baseline",
    )
    parser.add_argument("--label", default="scale")
    parser.add_argument(
        "--out",
        default="benchmarks",
        help="output directory for the result file (default: benchmarks/)",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending this run to HISTORY.jsonl in the output directory",
    )
    args = parser.parse_args(argv)

    worker_counts = None
    if args.workers_list:
        worker_counts = tuple(
            int(token) for token in args.workers_list.split(",") if token
        )
    report = run_scale(
        args.store,
        algorithm=args.algorithm,
        num_nodes=args.nodes,
        min_support=args.min_support,
        max_k=args.max_k,
        worker_counts=worker_counts,
        materialized_baseline=not args.no_materialized_baseline,
        label=args.label,
    )

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"SCALE_{args.label}.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}", file=sys.stderr)
    if not args.no_history:
        from repro.perf.history import append_history, record_from_report

        history_path = append_history(
            out_dir / "HISTORY.jsonl",
            record_from_report(report, source=out_path.name),
        )
        print(f"appended trajectory record to {history_path}", file=sys.stderr)
    if not report["results_identical"]:
        print("FAIL: curve points disagree with the serial digest", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main_scale(sys.argv[1:]))
