"""``repro-bench`` — wall-clock benchmark trajectory for the miners.

Where the cost model measures *simulated* seconds, this harness
measures *host* seconds: how long the simulator itself takes to run a
table6-style workload under each counting/executor configuration.  It
pits three configurations against each other on identical inputs:

* ``naive-serial`` — reference enumeration kernels, inline execution
  (the pre-optimization baseline);
* ``fast-serial`` — trie kernels + distinct-transaction dedup, inline;
* ``fast-process`` — the same kernels on the process-pool executor.

Every run's mining result and :class:`~repro.cluster.stats.RunStats`
are hashed; the harness **fails (exit 1) if any configuration disagrees
with the naive baseline** — the wall-clock trajectory is only valid
evidence while the metric-preservation contract holds.  CI runs
``repro-bench --quick`` on every push for exactly this reason.

Results are written as schema-versioned JSON (``BENCH_<label>.json``);
successive PRs commit refreshed files, so the repository history *is*
the performance trajectory.  Every run also appends a normalized record
to ``HISTORY.jsonl`` next to the result file, and ``repro-bench compare
REPORT.json --history benchmarks/HISTORY.jsonl`` checks a fresh report
against that trajectory, flagging per-kernel/per-algorithm regressions
beyond a noise band (see :mod:`repro.perf.history` and
``docs/performance.md``).

Two further verbs share the entry point: ``repro-bench compare``
(trajectory watchdog, above) and ``repro-bench scale``
(:mod:`repro.perf.scale`) — per-core scaling curves with peak-RSS
evidence over a columnar store, each point measured in a child process.
Pass ``--store DIR`` to run the main matrix over a store directory
(mmap views instead of pickled partitions).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.datagen.generator import generate_dataset
from repro.experiments import common
from repro.parallel.registry import make_miner
from repro.perf.config import CountingConfig
from repro.perf.executor import effective_workers
from repro.perf.history import (
    append_history,
    compare_against_history,
    record_from_report,
    render_comparison,
)

#: Version tag of the benchmark result files.
BENCH_SCHEMA = "repro.bench/v1"

#: (name, kernel, dedup, executor) — ``naive-serial`` must stay first:
#: it is the digest baseline the other configurations are checked against.
CONFIGURATIONS: tuple[tuple[str, str, bool, str], ...] = (
    ("naive-serial", "naive", False, "serial"),
    ("fast-serial", "fast", True, "serial"),
    ("fast-process", "fast", True, "process"),
)


def run_digest(run) -> str:
    """SHA-256 over the mining result and the full run statistics.

    Two runs with equal digests produced identical large itemsets with
    identical supports *and* identical per-node counters — the strong
    form of the probe-preservation contract.
    """
    payload = {
        "passes": [
            {
                "k": pass_result.k,
                "num_candidates": pass_result.num_candidates,
                "large": sorted(
                    (list(itemset), count)
                    for itemset, count in pass_result.large.items()
                ),
            }
            for pass_result in run.result.passes
        ],
        "stats": run.stats.to_dict(),
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def bench_one(
    dataset,
    algorithm: str,
    num_nodes: int,
    min_support: float,
    kernel: str,
    dedup: bool,
    executor: str,
    workers: int | None,
    max_k: int | None,
    store=None,
    taxonomy=None,
) -> dict:
    """One timed mining run; returns the result entry for the JSON file.

    ``store`` (an opened :class:`~repro.store.reader.TransactionStore`)
    replaces ``dataset.database`` as the scanned partitions; pass
    ``taxonomy`` alongside it when ``dataset`` is None (store-only
    benchmarks read the taxonomy from the store directory).
    """
    config = ClusterConfig(
        num_nodes=num_nodes,
        memory_per_node=common.DEFAULT_MEMORY_PER_NODE,
        executor=executor,
        workers=workers,
    )
    if store is not None:
        cluster = Cluster.from_store(config, store)
    else:
        cluster = Cluster.from_database(config, dataset.database)
    miner = make_miner(
        algorithm,
        cluster,
        taxonomy if taxonomy is not None else dataset.taxonomy,
        counting=CountingConfig(kernel=kernel, dedup=dedup),
    )
    started = time.perf_counter()
    try:
        run = miner.mine(min_support, max_k=max_k)
    finally:
        cluster.close()
    wall = time.perf_counter() - started
    pool_size = effective_workers(workers) if executor == "process" else 1
    return {
        "algorithm": algorithm,
        "nodes": num_nodes,
        "kernel": kernel,
        "dedup": dedup,
        "executor": executor,
        "workers": pool_size,
        # A process pool wider than the host's core count cannot show a
        # real speedup — flag those entries so the trajectory is honest.
        "underprovisioned": executor == "process"
        and pool_size > (os.cpu_count() or 1),
        "wall_seconds": round(wall, 6),
        "digest": run_digest(run),
        "total_probes": sum(p.total_probes for p in run.stats.passes),
        "total_bytes_received": run.stats.total_bytes_received,
        "peak_candidates": max(
            (
                node.candidates_stored
                for pass_stats in run.stats.passes
                for node in pass_stats.nodes
            ),
            default=0,
        ),
        "passes": [
            {
                "k": pass_stats.k,
                "num_candidates": pass_stats.num_candidates,
                "num_large": pass_stats.num_large,
                "probes": pass_stats.total_probes,
                "elapsed_simulated": pass_stats.elapsed,
            }
            for pass_stats in run.stats.passes
        ],
    }


def run_benchmark(
    label: str,
    quick: bool = False,
    workers: int | None = None,
    transactions: int | None = None,
    min_support: float | None = None,
    dataset_name: str = "R30F5",
    node_counts: tuple[int, ...] | None = None,
    algorithms: tuple[str, ...] = ("HPGM", "H-HPGM"),
    max_k: int | None = 2,
    store_path: str | Path | None = None,
) -> dict:
    """Run the full configuration matrix; returns the report dict.

    ``quick`` shrinks the workload (one node count, fewer transactions)
    for CI smoke runs; the full matrix mirrors the table6 sweep.
    ``store_path`` switches every configuration to a store-backed
    cluster (mmap views instead of pickled partitions); the taxonomy is
    read from the store directory and ``transactions`` is taken from
    the manifest.
    """
    if node_counts is None:
        node_counts = (8,) if quick else (8, 12, 16)
    if min_support is None:
        min_support = common.SKEW_POINT_MINSUP

    dataset = None
    store = None
    taxonomy = None
    if store_path is not None:
        from repro.store import TAXONOMY_NAME, open_store
        from repro.taxonomy.io import load_taxonomy

        store = open_store(store_path)
        taxonomy = load_taxonomy(Path(store_path) / TAXONOMY_NAME)
        transactions = len(store)
    else:
        if transactions is None:
            transactions = 2_000 if quick else common.DEFAULT_NUM_TRANSACTIONS
        dataset = generate_dataset(
            common.experiment_params(dataset_name, transactions)
        )

    cpus = os.cpu_count() or 1
    pool_size = effective_workers(workers)
    print(
        f"host: {cpus} cpu(s); fast-process pool={pool_size}"
        + (
            " — UNDERPROVISIONED (pool wider than the host; process "
            "speedups are not meaningful here)"
            if pool_size > cpus
            else ""
        ),
        file=sys.stderr,
    )

    runs: list[dict] = []
    identical = True
    for algorithm in algorithms:
        for num_nodes in node_counts:
            baseline_digest: str | None = None
            for name, kernel, dedup, executor in CONFIGURATIONS:
                entry = bench_one(
                    dataset,
                    algorithm,
                    num_nodes,
                    min_support,
                    kernel,
                    dedup,
                    executor,
                    workers,
                    max_k,
                    store=store,
                    taxonomy=taxonomy,
                )
                entry["configuration"] = name
                if baseline_digest is None:
                    baseline_digest = entry["digest"]
                entry["matches_baseline"] = entry["digest"] == baseline_digest
                identical = identical and entry["matches_baseline"]
                runs.append(entry)
                print(
                    f"{algorithm:>10} nodes={num_nodes:<2} {name:<13} "
                    f"{entry['wall_seconds']:9.3f}s  "
                    f"{'ok' if entry['matches_baseline'] else 'RESULT MISMATCH'}"
                    f"{'  [underprovisioned]' if entry['underprovisioned'] else ''}",
                    file=sys.stderr,
                )

    speedups: dict[str, dict[str, float]] = {}
    by_key: dict[tuple[str, int], dict[str, float]] = {}
    for entry in runs:
        by_key.setdefault((entry["algorithm"], entry["nodes"]), {})[
            entry["configuration"]
        ] = entry["wall_seconds"]
    for (algorithm, num_nodes), walls in sorted(by_key.items()):
        base = walls.get("naive-serial")
        if not base:
            continue
        speedups[f"{algorithm}/{num_nodes}"] = {
            name: round(base / wall, 3)
            for name, wall in sorted(walls.items())
            if name != "naive-serial" and wall > 0
        }
    # Aggregate row: total naive wall over total configuration wall
    # across the whole matrix — the headline trajectory number.
    totals: dict[str, float] = {}
    for entry in runs:
        totals[entry["configuration"]] = (
            totals.get(entry["configuration"], 0.0) + entry["wall_seconds"]
        )
    base = totals.get("naive-serial")
    if base:
        speedups["overall"] = {
            name: round(base / wall, 3)
            for name, wall in sorted(totals.items())
            if name != "naive-serial" and wall > 0
        }

    return {
        "schema": BENCH_SCHEMA,
        "label": label,
        "workload": {
            "dataset": dataset_name,
            "transactions": transactions,
            "min_support": min_support,
            "max_k": max_k,
            "node_counts": list(node_counts),
            "algorithms": list(algorithms),
            "memory_per_node": common.DEFAULT_MEMORY_PER_NODE,
            "quick": quick,
            # Store-backed runs scan mmap views instead of pickled
            # partitions — a distinct workload for trajectory purposes.
            "store": store_path is not None,
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            # fast-process can only beat fast-serial when real cores are
            # available — read speedups against this.
            "cpus": cpus,
        },
        "results_identical": identical,
        "speedups": speedups,
        "runs": runs,
    }


def main_compare(argv: list[str]) -> int:
    """``repro-bench compare`` — watchdog over the bench trajectory."""
    parser = argparse.ArgumentParser(
        prog="repro-bench compare",
        description="Compare a benchmark report against HISTORY.jsonl and "
        "fail on regressions beyond the noise band",
    )
    parser.add_argument("report", help="BENCH_*.json report to evaluate")
    parser.add_argument(
        "--history",
        default="benchmarks/HISTORY.jsonl",
        help="history stream to compare against (default: benchmarks/HISTORY.jsonl)",
    )
    parser.add_argument(
        "--noise-band",
        type=float,
        default=1.5,
        help="worst tolerated ratio in the bad direction before a metric "
        "counts as regressed (default: 1.5)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the comparison as JSON on stdout"
    )
    args = parser.parse_args(argv)

    comparison = compare_against_history(
        args.history, args.report, noise_band=args.noise_band
    )
    if args.json:
        print(json.dumps(comparison, indent=2, sort_keys=True))
    else:
        print(render_comparison(comparison))
    return 0 if comparison["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    arguments = list(sys.argv[1:] if argv is None else argv)
    # The benchmark CLI predates subcommands and must keep accepting
    # bare flags (``repro-bench --quick``); dispatch the verbs by hand.
    if arguments and arguments[0] == "compare":
        return main_compare(arguments[1:])
    if arguments and arguments[0] == "scale":
        from repro.perf.scale import main_scale

        return main_scale(arguments[1:])
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Wall-clock benchmark of the mining kernels and executors",
    )
    parser.add_argument(
        "--label", default="local", help="written into BENCH_<label>.json"
    )
    parser.add_argument(
        "--out",
        default="benchmarks",
        help="output directory for the result file (default: benchmarks/)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workload for CI smoke runs (one node count, 2k transactions)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for the fast-process configuration "
        "(default: one per CPU)",
    )
    parser.add_argument("--transactions", type=int, default=None)
    parser.add_argument("--min-support", type=float, default=None)
    parser.add_argument("--dataset", default="R30F5")
    parser.add_argument(
        "--store",
        default=None,
        help="benchmark over a columnar store directory (written by "
        "repro-mine generate --store-out) instead of an in-memory dataset",
    )
    parser.add_argument(
        "--no-history",
        action="store_true",
        help="skip appending this run to HISTORY.jsonl in the output directory",
    )
    args = parser.parse_args(arguments)

    report = run_benchmark(
        label=args.label,
        quick=args.quick,
        workers=args.workers,
        transactions=args.transactions,
        min_support=args.min_support,
        dataset_name=args.dataset,
        store_path=args.store,
    )

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    out_path = out_dir / f"BENCH_{args.label}.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out_path}", file=sys.stderr)
    if not args.no_history:
        history_path = append_history(
            out_dir / "HISTORY.jsonl",
            record_from_report(report, source=out_path.name),
        )
        print(f"appended trajectory record to {history_path}", file=sys.stderr)

    for key, ratios in report["speedups"].items():
        rendered = ", ".join(f"{name} {ratio:g}x" for name, ratio in ratios.items())
        print(f"{key}: {rendered}", file=sys.stderr)
    if not report["results_identical"]:
        print("FAIL: configurations disagree with the naive baseline", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
