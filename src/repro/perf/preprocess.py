"""Transaction preprocessing: dedup with multiplicity, memoized extension.

Synthetic (and real) market-basket corpora repeat transactions heavily —
the Quest generator draws from a few hundred patterns — so per-pass
transaction work (ancestor-closure materialization, candidate-universe
filtering, routing decisions, subset counting) is recomputed thousands
of times for identical inputs.  Everything here exploits that:

* :func:`dedup_with_weights` — the distinct transactions with their
  multiplicities, in first-occurrence order (deterministic for a fixed
  scan order, independent of ``PYTHONHASHSEED``);
* :class:`ExtensionCache` — a memoizing wrapper over
  :meth:`~repro.taxonomy.ops.AncestorIndex.extend`;
* :class:`RewriteCache` — a memoizing wrapper over
  :func:`~repro.taxonomy.ops.replace_with_closest_large`.

All caches are per-pass (or per-run for the rewrite table, which is
fixed once ``L1`` is known) and bounded by the number of distinct
transactions in the partition.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping

from repro.taxonomy.ops import AncestorIndex, replace_with_closest_large

Transaction = tuple[int, ...]


def dedup_with_weights(
    transactions: Iterable[Transaction],
) -> list[tuple[Transaction, int]]:
    """Distinct transactions with multiplicities, first-occurrence order.

    Counting each entry once and scaling its hits by the weight is
    exactly equivalent to counting every occurrence — the fast kernels'
    ``weight`` parameter applies the scaling to counts and to the
    closed-form probe/generated metrics alike.
    """
    tally: Counter[Transaction] = Counter(transactions)
    return list(tally.items())


class ExtensionCache:
    """Memoized ancestor extension over an :class:`AncestorIndex`.

    Drop-in for the index inside scan loops: ``extend`` is a pure
    function of the transaction for a fixed index, so each distinct
    transaction pays the set-union once.
    """

    __slots__ = ("_index", "_memo")

    def __init__(self, index: AncestorIndex):
        self._index = index
        self._memo: dict[Transaction, Transaction] = {}

    def extend(self, transaction: Transaction) -> Transaction:
        extended = self._memo.get(transaction)
        if extended is None:
            extended = self._index.extend(transaction)
            self._memo[transaction] = extended
        return extended


class RewriteCache:
    """Memoized closest-large-ancestor rewrite (H-HPGM line 8)."""

    __slots__ = ("_table", "_memo")

    def __init__(self, table: Mapping[int, int | None]):
        self._table = table
        self._memo: dict[Transaction, Transaction] = {}

    def rewrite(self, transaction: Transaction) -> Transaction:
        rewritten = self._memo.get(transaction)
        if rewritten is None:
            rewritten = replace_with_closest_large(transaction, self._table)
            self._memo[transaction] = rewritten
        return rewritten
