"""Bench-trajectory history: unified loader + regression watchdog.

The repository's performance story lives in ``benchmarks/BENCH_*.json``
files written by three generations of harnesses:

* the legacy **table6 baseline** (no ``schema`` key) — simulated
  communication/elapsed numbers from the seed experiment;
* ``repro.bench/v1`` (``repro-bench``) — host wall-clock over the
  kernel × executor matrix;
* ``repro.serve.bench/v1`` (``repro-serve loadgen``) — serving
  throughput/latency for the direct and batched paths;
* ``repro.scale/v1`` (``repro-bench scale``) — per-core scaling curves
  over a columnar store, with per-point peak RSS.
* ``repro.refresh.bench/v1`` (``repro-refresh run --bench``) —
  per-delta incremental refresh wall-clock against a from-scratch
  batch re-mine of the same window.

This module unifies them behind one versioned record shape
(``repro.bench.history/v1``): every report flattens to a **metric map**
(dotted metric name → number), a **digest map** (result digests that
must never drift), and a **workload key** (a hash of everything that
defines the workload, so only like runs are ever compared).
``benchmarks/HISTORY.jsonl`` holds one record per line, appended by
every ``repro-bench`` / ``repro-serve loadgen`` run — the cross-run
trajectory the watchdog walks.

``repro-bench compare`` evaluates a fresh report against the most
recent history record with the same workload key: per-metric ratios
with direction inferred from the metric name (``*_seconds``/``*_ms``
lower-is-better; ``*qps``/``*speedup*``/``*ratio*`` higher-is-better),
flagged as regressions when they move beyond a configurable **noise
band** (default 1.5×).  Digest drift is always an error — a faster run
that mines different itemsets is not an optimization.

Records carry no timestamps: history order is file order, and the git
log of ``HISTORY.jsonl`` is the provenance trail (the repo-wide
wall-clock lint RL002 applies here too).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError

#: Version tag of HISTORY.jsonl records.
HISTORY_SCHEMA = "repro.bench.history/v1"

#: Report schema tags this loader understands.
MINING_SCHEMA = "repro.bench/v1"
SERVING_SCHEMA = "repro.serve.bench/v1"
SCALE_SCHEMA = "repro.scale/v1"
REFRESH_SCHEMA = "repro.refresh.bench/v1"

#: Metric-name suffixes that are lower-is-better.
_LOWER_BETTER = ("_seconds", "_ms", "_bytes")

#: Metric-name markers that are higher-is-better.
_HIGHER_BETTER = ("qps", "speedup", "ratio")


class BenchHistoryError(ReproError):
    """Malformed benchmark report or history stream."""


@dataclass
class BenchRecord:
    """One benchmark run, normalized for cross-run comparison."""

    label: str
    kind: str
    workload_key: str
    metrics: dict[str, float]
    digests: dict[str, str] = field(default_factory=dict)
    source: str = ""

    def to_json(self) -> dict:
        return {
            "schema": HISTORY_SCHEMA,
            "label": self.label,
            "kind": self.kind,
            "workload_key": self.workload_key,
            "metrics": {key: self.metrics[key] for key in sorted(self.metrics)},
            "digests": {key: self.digests[key] for key in sorted(self.digests)},
            "source": self.source,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "BenchRecord":
        if payload.get("schema") != HISTORY_SCHEMA:
            raise BenchHistoryError(
                f"not a history record (expected schema {HISTORY_SCHEMA!r}, "
                f"got {payload.get('schema')!r})"
            )
        return cls(
            label=payload["label"],
            kind=payload["kind"],
            workload_key=payload["workload_key"],
            metrics=dict(payload.get("metrics", {})),
            digests=dict(payload.get("digests", {})),
            source=payload.get("source", ""),
        )


def workload_key(kind: str, workload: dict) -> str:
    """Stable key over everything that defines a workload."""
    blob = json.dumps(workload, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(f"{kind}:{blob}".encode("utf-8")).hexdigest()
    return f"{kind}-{digest[:12]}"


# ----------------------------------------------------------------------
# Report → record (one branch per schema generation)
# ----------------------------------------------------------------------
def record_from_report(report: dict, source: str = "") -> BenchRecord:
    """Normalize any known ``BENCH_*.json`` shape into a record."""
    schema = report.get("schema")
    if schema == MINING_SCHEMA:
        return _record_from_mining(report, source)
    if schema == SERVING_SCHEMA:
        return _record_from_serving(report, source)
    if schema == SCALE_SCHEMA:
        return _record_from_scale(report, source)
    if schema == REFRESH_SCHEMA:
        return _record_from_refresh(report, source)
    if schema is None and "experiment" in report:
        return _record_from_table6(report, source)
    raise BenchHistoryError(
        f"unknown benchmark report schema {schema!r} in {source or 'report'}"
    )


def _record_from_mining(report: dict, source: str) -> BenchRecord:
    metrics: dict[str, float] = {}
    digests: dict[str, str] = {}
    for run in report.get("runs", []):
        stem = f"{run['algorithm']}/{run['nodes']}/{run['configuration']}"
        metrics[f"{stem}/wall_seconds"] = run["wall_seconds"]
        digests[stem] = run["digest"]
    for key, ratios in sorted(report.get("speedups", {}).items()):
        for name, ratio in sorted(ratios.items()):
            metrics[f"{key}/{name}/speedup"] = ratio
    return BenchRecord(
        label=report.get("label", "?"),
        kind="mining",
        workload_key=workload_key("mining", report.get("workload", {})),
        metrics=metrics,
        digests=digests,
        source=source,
    )


def _record_from_scale(report: dict, source: str) -> BenchRecord:
    """``repro-bench scale`` curves: wall clock, speedup and peak RSS.

    Underprovisioned curve points (pool wider than the host) keep their
    RSS metrics but drop wall-clock and speedup — their timing is not
    comparable across hosts and would only add noise to the watchdog.
    """
    metrics: dict[str, float] = {}
    digests: dict[str, str] = {}

    def _absorb(entry: dict | None, timing_comparable: bool = True) -> None:
        if not entry:
            return
        stem = entry["configuration"]
        if timing_comparable:
            metrics[f"{stem}/wall_seconds"] = entry["wall_seconds"]
            if "speedup_vs_serial" in entry:
                metrics[f"{stem}/speedup"] = entry["speedup_vs_serial"]
        metrics[f"{stem}/peak_rss_bytes"] = entry["peak_rss_bytes"]
        digests[stem] = entry["digest"]

    _absorb(report.get("serial"))
    _absorb(report.get("materialized"))
    for point in report.get("curve", []):
        _absorb(point, timing_comparable=not point.get("underprovisioned"))
    return BenchRecord(
        label=report.get("label", "?"),
        kind="scale",
        workload_key=workload_key("scale", report.get("workload", {})),
        metrics=metrics,
        digests=digests,
        source=source,
    )


def _record_from_refresh(report: dict, source: str) -> BenchRecord:
    """``repro-refresh run --bench``: per-delta refresh vs batch re-mine.

    The aggregate ``speedup`` (total batch wall over total refresh wall)
    is the headline trajectory metric; the final published snapshot's
    version pins result identity across runs.
    """
    metrics: dict[str, float] = {}
    for entry in report.get("deltas", []):
        stem = f"delta{entry['index']}"
        metrics[f"{stem}/refresh_seconds"] = entry["refresh_seconds"]
        metrics[f"{stem}/batch_seconds"] = entry["batch_seconds"]
        if entry.get("speedup"):
            metrics[f"{stem}/speedup"] = entry["speedup"]
    if report.get("speedup"):
        metrics["speedup"] = report["speedup"]
    digests: dict[str, str] = {}
    if report.get("final_version"):
        digests["final_snapshot"] = report["final_version"]
    return BenchRecord(
        label=report.get("label", "?"),
        kind="refresh",
        workload_key=workload_key("refresh", report.get("workload", {})),
        metrics=metrics,
        digests=digests,
        source=source,
    )


def _record_from_serving(report: dict, source: str) -> BenchRecord:
    metrics: dict[str, float] = {}
    for phase, stats in sorted(report.get("phases", {}).items()):
        for name in ("qps", "p50_ms", "p95_ms", "p99_ms", "wall_seconds"):
            if name in stats:
                metrics[f"{phase}/{name}"] = stats[name]
    if "speedup_qps" in report:
        metrics["speedup_qps"] = report["speedup_qps"]
    digests: dict[str, str] = {}
    if "transcript_sha256" in report:
        digests["transcript"] = report["transcript_sha256"]
    workload = dict(report.get("workload", {}))
    workload["snapshot_version"] = report.get("snapshot", {}).get("version")
    return BenchRecord(
        label=report.get("label", "?"),
        kind="serving",
        workload_key=workload_key("serving", workload),
        metrics=metrics,
        digests=digests,
        source=source,
    )


def _record_from_table6(report: dict, source: str) -> BenchRecord:
    """The seed experiment file: simulated (deterministic) quantities."""
    metrics: dict[str, float] = {}
    for run in report.get("runs", []):
        stem = f"{run['algorithm']}/{run['num_nodes']}"
        metrics[f"{stem}/simulated_elapsed_seconds"] = sum(
            pass_record.get("elapsed", 0.0) for pass_record in run.get("passes", [])
        )
    for row in report.get("rows", []):
        metrics[f"comm_ratio/{row['num_nodes']}/ratio"] = row["ratio"]
    workload = {
        "experiment": report.get("experiment"),
        "dataset": report.get("dataset"),
        "min_support": report.get("min_support"),
    }
    return BenchRecord(
        label=report.get("experiment", "baseline"),
        kind="table6",
        workload_key=workload_key("table6", workload),
        metrics=metrics,
        digests={},
        source=source,
    )


def record_from_file(path: str | Path) -> BenchRecord:
    path = Path(path)
    try:
        report = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BenchHistoryError(f"{path}: not JSON: {error}") from None
    return record_from_report(report, source=path.name)


# ----------------------------------------------------------------------
# History file
# ----------------------------------------------------------------------
def load_history(path: str | Path) -> list[BenchRecord]:
    """All records of one ``HISTORY.jsonl``, in file (= append) order."""
    path = Path(path)
    if not path.exists():
        return []
    records: list[BenchRecord] = []
    for number, raw in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        text = raw.strip()
        if not text:
            continue
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise BenchHistoryError(
                f"{path} line {number} is not JSON: {error}"
            ) from None
        records.append(BenchRecord.from_json(payload))
    return records


def append_history(path: str | Path, record: BenchRecord) -> Path:
    """Append one record (creates the file and parents when missing)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record.to_json(), sort_keys=True, separators=(",", ":"))
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
    return path


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def metric_direction(name: str) -> str | None:
    """``lower`` / ``higher`` is better, or None for uncompared metrics."""
    lowered = name.lower()
    if any(marker in lowered for marker in _HIGHER_BETTER):
        return "higher"
    if lowered.endswith(_LOWER_BETTER):
        return "lower"
    return None


def compare_records(
    baseline: BenchRecord, candidate: BenchRecord, noise_band: float = 1.5
) -> dict:
    """Per-metric deltas of ``candidate`` against ``baseline``.

    ``noise_band`` is the worst tolerated ratio in the bad direction: a
    lower-is-better metric regresses when ``candidate / baseline``
    exceeds it; a higher-is-better metric regresses when the ratio
    falls below ``1 / noise_band``.  Digest mismatches are always
    regressions.
    """
    if noise_band < 1.0:
        raise BenchHistoryError(f"noise band must be >= 1.0, got {noise_band}")
    if baseline.workload_key != candidate.workload_key:
        raise BenchHistoryError(
            f"workload mismatch: baseline {baseline.workload_key} vs "
            f"candidate {candidate.workload_key} — refusing to compare "
            "different workloads"
        )
    deltas: list[dict] = []
    for name in sorted(set(baseline.metrics) & set(candidate.metrics)):
        direction = metric_direction(name)
        if direction is None:
            continue
        base_value = baseline.metrics[name]
        cand_value = candidate.metrics[name]
        if base_value <= 0 or cand_value <= 0:
            continue
        ratio = cand_value / base_value
        if direction == "lower":
            regressed = ratio > noise_band
        else:
            regressed = ratio < 1.0 / noise_band
        deltas.append(
            {
                "metric": name,
                "baseline": base_value,
                "candidate": cand_value,
                "ratio": round(ratio, 4),
                "direction": direction,
                "regressed": regressed,
            }
        )
    digest_drift = sorted(
        name
        for name in set(baseline.digests) & set(candidate.digests)
        if baseline.digests[name] != candidate.digests[name]
    )
    regressions = [delta for delta in deltas if delta["regressed"]]
    return {
        "baseline_label": baseline.label,
        "candidate_label": candidate.label,
        "workload_key": baseline.workload_key,
        "noise_band": noise_band,
        "deltas": deltas,
        "regressions": regressions,
        "digest_drift": digest_drift,
        "ok": not regressions and not digest_drift,
    }


def latest_matching(
    history: list[BenchRecord], candidate: BenchRecord
) -> BenchRecord | None:
    """Most recently appended record comparable to ``candidate``."""
    for record in reversed(history):
        if (
            record.kind == candidate.kind
            and record.workload_key == candidate.workload_key
        ):
            return record
    return None


def compare_against_history(
    history_path: str | Path,
    candidate_path: str | Path,
    noise_band: float = 1.5,
) -> dict:
    """The ``repro-bench compare`` core: candidate vs its history line.

    When the history holds no record for the candidate's workload the
    comparison is a no-op (``ok`` with ``baseline_label`` None) — a new
    workload has no trajectory yet, which is not a regression.
    """
    candidate = record_from_file(candidate_path)
    history = load_history(history_path)
    baseline = latest_matching(history, candidate)
    if baseline is None:
        return {
            "baseline_label": None,
            "candidate_label": candidate.label,
            "workload_key": candidate.workload_key,
            "noise_band": noise_band,
            "deltas": [],
            "regressions": [],
            "digest_drift": [],
            "ok": True,
            "note": "no comparable baseline in history (new workload)",
        }
    return compare_records(baseline, candidate, noise_band=noise_band)


def render_comparison(report: dict) -> str:
    """Human rendering of one comparison."""
    lines: list[str] = []
    if report["baseline_label"] is None:
        lines.append(
            f"{report['candidate_label']}: {report.get('note', 'no baseline')}"
        )
        return "\n".join(lines)
    lines.append(
        f"comparing {report['candidate_label']} against "
        f"{report['baseline_label']} (workload {report['workload_key']}, "
        f"noise band {report['noise_band']}x)"
    )
    for delta in report["deltas"]:
        arrow = "better" if (
            (delta["direction"] == "lower") == (delta["ratio"] < 1.0)
        ) and delta["ratio"] != 1.0 else "worse" if delta["ratio"] != 1.0 else "same"
        flag = "  REGRESSION" if delta["regressed"] else ""
        lines.append(
            f"  {delta['metric']}: {delta['baseline']:g} -> "
            f"{delta['candidate']:g} ({delta['ratio']:.3f}x, {arrow}){flag}"
        )
    for name in report["digest_drift"]:
        lines.append(f"  {name}: DIGEST DRIFT — results changed between runs")
    lines.append("trajectory: ok" if report["ok"] else "trajectory: REGRESSED")
    return "\n".join(lines)
