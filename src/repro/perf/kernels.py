"""Prefix-indexed candidate-trie counting kernels.

The probe-preservation contract
-------------------------------
``probes`` and ``generated`` are *semantic* quantities: the number of
candidate lookups the paper's algorithms would perform is what Figure 15
plots and what the cost model prices into every simulated second.  A
faster kernel therefore may not probe less — it may only *work* less.
The kernels here keep the contract by splitting the two concerns:

* **metrics** are computed in closed form: the naive kernels enumerate
  every k-subset of the (filtered, deduplicated) transaction and probe
  each one, so their probe count is ``C(n, k)`` for an ``n``-item
  relevant set — :func:`math.comb` yields the identical number without
  enumerating anything;
* **counts** are computed candidate-driven: a prefix trie over the
  sorted candidates is intersected with the sorted transaction, and
  only branches whose prefix is contained in the transaction are
  descended.  A candidate is contained in the transaction exactly when
  the naive kernel's enumeration would have hit it (see the per-class
  notes), so the resulting ``counts`` are identical.

Each fast counter also memoizes per distinct input: synthetic and real
market-basket corpora repeat transactions heavily, and two transactions
that filter to the same relevant set produce byte-identical outcomes —
the memo replays the stored hit list and adds the closed-form metric
increments at the stored weight.

Equivalence against the naive kernels — ``counts``, ``probes``,
``generated``, and return values, across all three counter classes —
is pinned by the seeded property suite in ``tests/test_perf_kernels.py``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Collection, Mapping, Sequence
from math import comb

from repro.core.itemsets import Itemset
from repro.errors import MiningError

try:  # optional accelerator — the pure-Python mask path is always exact
    import numpy as _np
except ImportError:  # pragma: no cover - depends on the environment
    _np = None


class CandidateTrie:
    """Uniform-depth prefix trie over sorted candidate k-itemsets.

    Interior levels map an item to its child dict; the final level maps
    the last item to the candidate tuple itself.  :meth:`contained`
    walks the trie against a sorted transaction, at every node iterating
    whichever side is smaller — the node's children (candidate-driven)
    or the transaction's remaining suffix (transaction-driven) — so the
    work adapts to both sparse-candidate and short-transaction regimes.

    k == 2 — the pass that carries nearly all candidates in practice —
    skips the walk entirely and works on **bitmasks**: every item in the
    candidate universe gets a bit, each first item keeps the mask of its
    partners, and one ``&`` per present first item yields all hits; the
    inner loop only runs over actual hits (``int.bit_count`` and the
    low-bit trick keep everything in C).  Bit order is sorted item
    order, so the result is deterministic.
    """

    __slots__ = ("k", "_root", "bit_of", "_item_at", "_partner_mask", "_firsts_mask")

    def __init__(self, candidates: Collection[Itemset], k: int):
        if k <= 0:
            raise MiningError(f"k must be positive, got {k}")
        self.k = k
        root: dict = {}
        if k == 2:
            setdefault = root.setdefault
            for candidate in candidates:
                if len(candidate) != 2:
                    raise MiningError(
                        f"candidate {candidate!r} is not a {k}-itemset"
                    )
                setdefault(candidate[0], {})[candidate[1]] = candidate
        else:
            for candidate in candidates:
                if len(candidate) != k:
                    raise MiningError(
                        f"candidate {candidate!r} is not a {k}-itemset"
                    )
                node = root
                for item in candidate[:-1]:
                    child = node.get(item)
                    if child is None:
                        child = {}
                        node[item] = child
                    node = child
                node[candidate[-1]] = candidate
        self._root = root
        #: item → its single-bit mask (k == 2 only; shared with callers
        #: that pre-build transaction masks, e.g. the root-keyed kernel).
        self.bit_of: dict[int, int] = {}
        self._item_at: list[int] = []
        self._partner_mask: dict[int, int] = {}
        self._firsts_mask = 0
        if k == 2:
            universe = sorted({item for candidate in candidates for item in candidate})
            self._item_at = universe
            bit_of = {item: 1 << index for index, item in enumerate(universe)}
            self.bit_of = bit_of
            for first, children in root.items():
                mask = 0
                for second in children:
                    mask |= bit_of[second]
                self._partner_mask[first] = mask
                self._firsts_mask |= bit_of[first]

    def hit_count_mask(self, mask: int) -> int:
        """k == 2 only: how many candidates ``contained_mask`` would yield.

        One ``&`` + ``bit_count`` per present first item — no per-hit
        work, so callers can report hit totals without materializing
        the hits.
        """
        total = 0
        item_at = self._item_at
        partner_mask = self._partner_mask
        pending = mask & self._firsts_mask
        while pending:
            low = pending & -pending
            pending ^= low
            total += (partner_mask[item_at[low.bit_length() - 1]] & mask).bit_count()
        return total

    def contained_mask(self, mask: int) -> list[Itemset]:
        """k == 2 only: candidates whose both bits are set in ``mask``."""
        out: list[Itemset] = []
        item_at = self._item_at
        partner_mask = self._partner_mask
        append = out.append
        pending = mask & self._firsts_mask
        while pending:
            low = pending & -pending
            pending ^= low
            first = item_at[low.bit_length() - 1]
            hits = partner_mask[first] & mask
            while hits:
                lowest = hits & -hits
                hits ^= lowest
                append((first, item_at[lowest.bit_length() - 1]))
        return out

    def contained(self, items: Sequence[int]) -> list[Itemset]:
        """Candidates fully contained in ``items`` (sorted, distinct).

        Each contained candidate appears exactly once; order is a trie
        walk order (bit order for k == 2), which callers must not rely
        on (hits are folded into commutative count increments).
        """
        n = len(items)
        k = self.k
        if n < k:
            return []
        if k == 2:
            bit_of = self.bit_of
            mask = 0
            for item in items:
                bit = bit_of.get(item)
                if bit:
                    mask |= bit
            return self.contained_mask(mask)
        out: list[Itemset] = []
        position = {item: index for index, item in enumerate(items)}

        def descend(node: dict, start: int, depth: int) -> None:
            # Positions past `limit` cannot leave enough items to finish
            # a k-prefix.
            limit = n - (k - depth) + 1
            last = depth == k - 1
            if len(node) <= limit - start:
                # Candidate-driven: few branches, test each against the
                # transaction's position table.
                for item, child in node.items():
                    index = position.get(item)
                    if index is None or index < start or index >= limit:
                        continue
                    if last:
                        out.append(child)
                    else:
                        descend(child, index + 1, depth + 1)
            else:
                # Transaction-driven: short suffix, test each item
                # against the node's children.
                for index in range(start, limit):
                    child = node.get(items[index])
                    if child is None:
                        continue
                    if last:
                        out.append(child)
                    else:
                        descend(child, index + 1, depth + 1)

        descend(self._root, 0, 0)
        return out


class _DeferredPairFold:
    """Shared k == 2 deferred count folding for the fast counters.

    Subclasses own ``_counts`` (candidate → count) and ``_trie``; this
    base accumulates ``{extension_mask: weight}`` per call and folds
    everything on the first :attr:`counts` read — through a weighted
    bit-row co-occurrence product when numpy is available (float32 or
    float64 chosen so integer arithmetic stays exact), or an exact
    pure-Python mask loop otherwise.  Integer additions commute, so the
    result is identical to folding per call.
    """

    def _init_fold(self, k: int) -> None:
        self._pending: dict[int, int] = {}
        self._cand_bits = None
        if k == 2 and self._trie is not None and _np is not None:
            bit_of = self._trie.bit_of
            ordered = list(self._counts)
            self._cand_bits = (
                ordered,
                _np.fromiter(
                    (bit_of[c[0]].bit_length() - 1 for c in ordered),
                    dtype=_np.intp,
                    count=len(ordered),
                ),
                _np.fromiter(
                    (bit_of[c[1]].bit_length() - 1 for c in ordered),
                    dtype=_np.intp,
                    count=len(ordered),
                ),
            )

    @property
    def counts(self) -> dict[Itemset, int]:
        """Per-candidate supports; folds any deferred masks first."""
        if self._pending:
            self._flush()
        return self._counts

    def _flush(self) -> int:
        """Fold all pending (mask, weight) pairs into the counts.

        The numpy path unpacks the masks into weighted bit rows and
        takes one co-occurrence product: entry ``(a, b)`` is the total
        weight of masks containing both bits — exactly the increment
        candidate ``(item_a, item_b)`` would have received per call.
        Total weight bounds every entry and every partial sum, so
        float32 (fast) is exact below 2**24 and float64 far beyond.

        Returns the total weight applied (the sum of all increments),
        summed in exact Python integers.
        """
        pending, self._pending = self._pending, {}
        total = 0
        if self._cand_bits is None or len(pending) < 16:
            counts = self._counts
            contained_mask = self._trie.contained_mask
            for mask, weight in pending.items():
                matched = contained_mask(mask)
                total += weight * len(matched)
                for candidate in matched:
                    counts[candidate] += weight
            return total
        ordered, first_bits, second_bits = self._cand_bits
        width = len(self._trie.bit_of)
        nbytes = (width + 7) // 8
        masks = list(pending)
        mask_weights = list(pending.values())
        dtype = _np.float32 if sum(mask_weights) < (1 << 24) else _np.float64
        co = _np.zeros((width, width), dtype=dtype)
        for start in range(0, len(masks), 8192):
            stop = min(start + 8192, len(masks))
            blob = b"".join(
                mask.to_bytes(nbytes, "little") for mask in masks[start:stop]
            )
            rows = _np.unpackbits(
                _np.frombuffer(blob, dtype=_np.uint8).reshape(stop - start, nbytes),
                axis=1,
                bitorder="little",
            )[:, :width].astype(dtype)
            weights = _np.asarray(mask_weights[start:stop], dtype=dtype)
            co += rows.T @ (rows * weights[:, None])
        counts = self._counts
        for candidate, value in zip(ordered, co[first_bits, second_bits].tolist()):
            if value:
                increment = int(value)
                counts[candidate] += increment
                total += increment
        return total


class PairMaskFolder(_DeferredPairFold):
    """Deferred pair counting straight into an *external* counts dict.

    Wraps a ``{pair: count}`` table (mutated in place) for callers that
    already know, per probe batch, the item mask to count against — like
    HPGM's receive phase, where every owned pair whose two items both
    appear in a shipped batch was necessarily part of that batch (the
    sender enumerated **all** pairs of its relevant set bound for this
    node), so one mask captures the batch's entire hit set.
    """

    def __init__(self, counts: dict[Itemset, int]):
        self._counts = counts
        self._trie = CandidateTrie(counts, 2)
        self.bit_of = self._trie.bit_of
        self._init_fold(2)

    def add_mask(self, mask: int, weight: int = 1) -> None:
        """Accumulate one batch occurrence; folded lazily."""
        pending = self._pending
        pending[mask] = pending.get(mask, 0) + weight

    def fold(self) -> int:
        """Flush pending masks into the wrapped counts dict.

        Returns the total number of increments applied — what a naive
        per-batch probe loop would have added to ``increments``.
        """
        if self._pending:
            return self._flush()
        return 0


class FastSupportCounter(_DeferredPairFold):
    """Drop-in for ``SupportCounter(strategy="dict")``, metric-identical.

    The naive dict kernel filters the transaction to the candidate item
    universe, enumerates all ``C(n, k)`` subsets and probes each; a
    candidate hits exactly when it is a subset of the relevant set.  So
    ``generated`` and ``probes`` are both ``C(n, k)`` (closed form) and
    the hit set is the trie intersection — no enumeration needed.  For
    k == 2 the folding is deferred (see :class:`_DeferredPairFold`).
    """

    def __init__(
        self,
        candidates: Collection[Itemset],
        k: int,
        memoize: bool = True,
    ):
        if k <= 0:
            raise MiningError(f"k must be positive, got {k}")
        self.k = k
        self._counts: dict[Itemset, int] = {c: 0 for c in candidates}
        self.probes = 0
        self.generated = 0
        self._universe = {item for c in self._counts for item in c}
        self._trie = CandidateTrie(self._counts, k) if self._counts else None
        self._memo: dict[tuple[int, ...], tuple] | None = {} if memoize else None
        self._init_fold(k)

    def add_transaction(self, transaction: tuple[int, ...], weight: int = 1) -> int:
        """Count one extended, sorted transaction ``weight`` times.

        Returns the per-occurrence hit count (what the naive kernel
        returns from a single call).
        """
        universe = self._universe
        relevant = tuple(item for item in transaction if item in universe)
        if len(relevant) < self.k:
            return 0
        memo = self._memo
        entry = memo.get(relevant) if memo is not None else None
        if self.k == 2:
            if entry is None:
                # Every relevant item is in the trie's bit space: the
                # universe IS the set of candidate items.
                bit_of = self._trie.bit_of
                mask = 0
                for item in relevant:
                    mask |= bit_of[item]
                entry = (
                    comb(len(relevant), 2),
                    mask,
                    self._trie.hit_count_mask(mask),
                )
                if memo is not None:
                    memo[relevant] = entry
            subsets, mask, hits = entry
            self.generated += subsets * weight
            self.probes += subsets * weight
            if mask:
                pending = self._pending
                pending[mask] = pending.get(mask, 0) + weight
            return hits
        if entry is None:
            subsets = comb(len(relevant), self.k)
            matched = tuple(self._trie.contained(relevant)) if self._trie else ()
            entry = (subsets, matched)
            if memo is not None:
                memo[relevant] = entry
        subsets, matched = entry
        self.generated += subsets * weight
        self.probes += subsets * weight
        counts = self._counts
        for candidate in matched:
            counts[candidate] += weight
        return len(matched)


class FastAncestorClosureCounter:
    """Drop-in for :class:`~repro.core.counting.AncestorClosureCounter`.

    The naive kernel extends the fragment with its candidate-referenced
    ancestors (universe-filtered) and enumerates the k-subsets of the
    extension; a candidate hits exactly when it is a subset of the
    extension, and ``probes == generated == C(|extension|, k)``.
    """

    def __init__(
        self,
        candidates: Collection[Itemset],
        k: int,
        ancestor_table: Mapping[int, tuple[int, ...]],
        memoize: bool = True,
    ):
        if k <= 0:
            raise MiningError(f"k must be positive, got {k}")
        self.k = k
        self.counts: dict[Itemset, int] = {c: 0 for c in candidates}
        self.probes = 0
        self.generated = 0
        self._table = ancestor_table
        self._universe = {item for c in self.counts for item in c}
        self._trie = CandidateTrie(self.counts, k) if self.counts else None
        # item → its universe-filtered chain, filled lazily: items repeat
        # across transactions far more often than they first appear.
        self._kept: dict[int, tuple[int, ...]] = {}
        self._memo: dict[tuple[int, ...], tuple[int, tuple[Itemset, ...]]] | None = (
            {} if memoize else None
        )

    def _kept_chain(self, item: int) -> tuple[int, ...]:
        kept = self._kept.get(item)
        if kept is None:
            universe = self._universe
            chain = self._table.get(item, (item,))
            kept = tuple(link for link in chain if link in universe)
            self._kept[item] = kept
        return kept

    def _extend(self, transaction: tuple[int, ...]) -> set[int]:
        extended: set[int] = set()
        for item in transaction:
            extended.update(self._kept_chain(item))
        return extended

    def add_transaction(self, transaction: tuple[int, ...], weight: int = 1) -> int:
        """Count one lowest-large, sorted fragment ``weight`` times."""
        if not self.counts or len(transaction) < self.k:
            return 0
        memo = self._memo
        entry = memo.get(transaction) if memo is not None else None
        if entry is None:
            extended = self._extend(transaction)
            if len(extended) < self.k:
                entry = (0, ())
            else:
                entry = (
                    comb(len(extended), self.k),
                    tuple(self._trie.contained(sorted(extended))),
                )
            if memo is not None:
                memo[transaction] = entry
        subsets, matched = entry
        if subsets == 0 and not matched:
            return 0
        self.generated += subsets * weight
        self.probes += subsets * weight
        counts = self.counts
        for candidate in matched:
            counts[candidate] += weight
        return len(matched)


class FastRootKeyedClosureCounter(_DeferredPairFold):
    """Drop-in for :class:`~repro.core.counting.RootKeyedClosureCounter`.

    The naive kernel groups the (universe-filtered) ancestor extension
    by root and, per owned root key, takes the cross product of per-root
    combinations.  Two facts make the fast path exact:

    * a candidate hits exactly when it is a subset of the full extension
      ``E`` — its root key is then automatically feasible (every chain
      link shares its item's root, so each of the candidate's per-root
      item counts is covered by ``E``'s per-root groups) and it is
      enumerated precisely once, under its own key;
    * the naive enumeration volume per key is the product of
      ``C(|pool_root|, multiplicity)`` over the key's roots, with pools
      filtered to the key's member items — a pure counting expression.

    For k == 2 the per-fragment count fold is **deferred**: each call
    only bumps a ``{extension_mask: weight}`` accumulator (the per-call
    return value is a popcount sum, no hit list is materialized), and
    the first read of :attr:`counts` folds all pending masks at once —
    through a weighted bit-row co-occurrence product when numpy is
    available, or an exact pure-Python mask loop otherwise.  Either way
    the fold is a sum of integer increments, so the result is identical
    to folding per call.
    """

    def __init__(
        self,
        candidates: Collection[Itemset],
        k: int,
        ancestor_table: Mapping[int, tuple[int, ...]],
        root_of: Mapping[int, int],
        memoize: bool = True,
    ):
        if k <= 0:
            raise MiningError(f"k must be positive, got {k}")
        self.k = k
        self._counts: dict[Itemset, int] = {c: 0 for c in candidates}
        self.probes = 0
        self.generated = 0
        self._table = ancestor_table
        self._root_of = root_of
        self._universe = {item for c in self._counts for item in c}
        self._trie = CandidateTrie(self._counts, k) if self._counts else None
        # key → bitmask of its candidates' items, in the trie's bit
        # space (k == 2 only — the whole k == 2 analysis runs on masks
        # and never consults ``_key_items``).
        self._key_items: dict[tuple[int, ...], set[int]] = {}
        self._members_mask: dict[tuple[int, int], int] = {}
        if k == 2:
            if self._trie is not None:
                bit_of = self._trie.bit_of
                members_mask = self._members_mask
                for candidate in self._counts:
                    first, second = root_of[candidate[0]], root_of[candidate[1]]
                    key = (first, second) if first <= second else (second, first)
                    members_mask[key] = (
                        members_mask.get(key, 0)
                        | bit_of[candidate[0]]
                        | bit_of[candidate[1]]
                    )
        else:
            for candidate in self._counts:
                key = tuple(sorted(root_of[item] for item in candidate))
                self._key_items.setdefault(key, set()).update(candidate)
        # item → (its root, its universe-filtered chain), filled lazily:
        # items repeat across fragments far more often than they first
        # appear.  The k == 2 variant stores the chain as a bitmask.
        self._kept: dict[int, tuple[int, tuple[int, ...]]] = {}
        self._kept_mask: dict[int, tuple[int, int]] = {}
        self._memo: dict[tuple[int, ...], tuple] | None = {} if memoize else None
        self._init_fold(k)

    def _analyze_pairs(
        self, fragment: tuple[int, ...]
    ) -> tuple[int, int, int]:
        """k == 2 analysis, entirely on bitmasks.

        The naive volume for key ``(r, r)`` is ``C(|pool|, 2)`` and for
        ``(r1, r2)`` is ``|pool_1| * |pool_2|``, pools being each root's
        extension group intersected with the key's candidate members —
        one ``&`` + ``bit_count`` per owned key.  Returns ``(volume,
        extension_mask, hit_count)``; the hits themselves are folded
        lazily from the mask (see :meth:`_flush`).
        """
        kept_cache = self._kept_mask
        bit_of = self._trie.bit_of
        by_root: dict[int, int] = {}
        for item in fragment:
            entry = kept_cache.get(item)
            if entry is None:
                mask = 0
                for link in self._table.get(item, (item,)):
                    bit = bit_of.get(link)
                    if bit:
                        mask |= bit
                entry = (self._root_of[item], mask)
                kept_cache[item] = entry
            root, mask = entry
            if mask:
                by_root[root] = by_root.get(root, 0) | mask
        if not by_root:
            return (0, 0, 0)

        members_mask = self._members_mask
        subsets = 0
        roots = sorted(by_root)
        for index, first in enumerate(roots):
            group = by_root[first]
            members = members_mask.get((first, first))
            if members is not None and group.bit_count() >= 2:
                pool = (group & members).bit_count()
                subsets += pool * (pool - 1) // 2
            for second in roots[index + 1 :]:
                members = members_mask.get((first, second))
                if members is not None:
                    pool = (group & members).bit_count()
                    if pool:
                        subsets += pool * (by_root[second] & members).bit_count()

        extension_mask = 0
        for group in by_root.values():
            extension_mask |= group
        return (subsets, extension_mask, self._trie.hit_count_mask(extension_mask))

    def _analyze(self, fragment: tuple[int, ...]) -> tuple[int, tuple[Itemset, ...]]:
        kept_cache = self._kept
        by_root: dict[int, set[int]] = {}
        for item in fragment:
            entry = kept_cache.get(item)
            if entry is None:
                chain = self._table.get(item, (item,))
                entry = (
                    self._root_of[item],
                    tuple(link for link in chain if link in self._universe),
                )
                kept_cache[item] = entry
            root, kept = entry
            if kept:
                group = by_root.get(root)
                if group is None:
                    by_root[root] = set(kept)
                else:
                    group.update(kept)
        if not by_root:
            return (0, ())

        key_items = self._key_items
        subsets = 0
        from repro.core.counting import feasible_sorted_multisets

        root_counts = Counter(
            {root: len(items) for root, items in by_root.items()}
        )
        for key in feasible_sorted_multisets(root_counts, self.k):
            members = key_items.get(key)
            if members is None:
                continue
            volume = 1
            for root, count in sorted(Counter(key).items()):
                pool = len(by_root[root] & members)
                volume *= comb(pool, count)
                if volume == 0:
                    break
            subsets += volume

        extension: set[int] = set()
        for group in by_root.values():
            extension.update(group)
        matched = (
            tuple(self._trie.contained(sorted(extension))) if self._trie else ()
        )
        return (subsets, matched)

    def add_transaction(self, fragment: tuple[int, ...], weight: int = 1) -> int:
        """Count one routed, sorted, lowest-large fragment ``weight`` times."""
        if not self._counts or len(fragment) < self.k:
            return 0
        memo = self._memo
        entry = memo.get(fragment) if memo is not None else None
        if self.k == 2:
            if entry is None:
                entry = self._analyze_pairs(fragment)
                if memo is not None:
                    memo[fragment] = entry
            subsets, mask, hits = entry
            self.generated += subsets * weight
            self.probes += subsets * weight
            if mask:
                pending = self._pending
                pending[mask] = pending.get(mask, 0) + weight
            return hits
        if entry is None:
            entry = self._analyze(fragment)
            if memo is not None:
                memo[fragment] = entry
        subsets, matched = entry
        self.generated += subsets * weight
        self.probes += subsets * weight
        counts = self._counts
        for candidate in matched:
            counts[candidate] += weight
        return len(matched)
