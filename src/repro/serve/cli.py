"""``repro-serve`` — command-line front end of the serving layer.

Four subcommands close the offline→online loop:

* ``build`` — compile a snapshot, either by mining a preset dataset
  end-to-end or from a rules file exported with
  ``repro-mine mine --rules-out``;
* ``query`` — run one basket against a snapshot and print the result;
* ``loadgen`` — replay a seeded workload through the direct and the
  batched path and write a ``BENCH_<label>.json`` report (plus an
  optional timing-free result transcript for determinism checks);
* ``serve`` — expose a snapshot over stdlib HTTP/JSON.

Failures map to the repo-wide exit codes (``repro.errors``): an empty
rule set exits 15, a malformed snapshot 16, any other serving error 14.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path

from repro.core.cumulate import cumulate
from repro.core.rules import generate_rules, interesting_rules
from repro.errors import ReproError, error_label, exit_code_for
from repro.experiments import common
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import EventSink
from repro.perf.history import append_history, record_from_report
from repro.serve.batch import ServeService
from repro.serve.engine import SCORINGS
from repro.serve.loadgen import (
    run_loadgen,
    write_report,
    write_requests,
    write_transcript,
)
from repro.serve.rules_io import read_rules_jsonl
from repro.serve.snapshot import compile_snapshot, load_snapshot, write_snapshot
from repro.taxonomy.io import load_taxonomy


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Online serving of mined generalized association rules",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    build = sub.add_parser("build", help="compile a rule snapshot")
    build.add_argument(
        "--rules",
        default=None,
        help="rules JSONL exported by `repro-mine mine --rules-out` "
        "(skips mining; pair with --taxonomy)",
    )
    build.add_argument(
        "--taxonomy",
        default=None,
        help="taxonomy file (as written by `repro-mine generate`) for "
        "--rules builds; omit for a flat snapshot",
    )
    build.add_argument("--dataset", default="R30F5", help="R30F5 | R30F3 | R30F10")
    build.add_argument("--transactions", type=int, default=None)
    build.add_argument("--seed", type=int, default=common.DEFAULT_SEED)
    build.add_argument("--min-support", type=float, default=0.02)
    build.add_argument("--min-confidence", type=float, default=0.6)
    build.add_argument(
        "--min-interest",
        type=float,
        default=None,
        help="keep only R-interesting rules at this ratio before compiling",
    )
    build.add_argument("--max-k", type=int, default=None)
    build.add_argument("--out", required=True, help="snapshot output path")

    query = sub.add_parser("query", help="run one basket against a snapshot")
    query.add_argument("--snapshot", required=True)
    query.add_argument(
        "--basket", required=True, help="comma-separated item ids, e.g. 3,17,42"
    )
    query.add_argument("--top-k", type=int, default=5)
    query.add_argument("--scoring", choices=SCORINGS, default="confidence")

    load = sub.add_parser(
        "loadgen", help="benchmark direct vs batched serving on one workload"
    )
    load.add_argument("--snapshot", required=True)
    load.add_argument("--queries", type=int, default=200)
    load.add_argument("--seed", type=int, default=7)
    load.add_argument("--pool-size", type=int, default=16)
    load.add_argument("--scoring", choices=SCORINGS, default="confidence")
    load.add_argument("--top-k", type=int, default=5)
    load.add_argument("--clients", type=int, default=4)
    load.add_argument("--workers", type=int, default=2)
    load.add_argument("--batch-max", type=int, default=32)
    load.add_argument(
        "--shards",
        type=int,
        default=0,
        help="also run the sharded-tier phase over this many partitions "
        "(0 disables it)",
    )
    load.add_argument(
        "--replication", type=int, default=2, help="replicas per partition"
    )
    load.add_argument(
        "--rate",
        type=_parse_rate,
        default=0.0,
        help="sharded-phase arrival mode: 0 = closed-loop lockstep, "
        "N>0 = open loop at N queries/s, 'auto' = open loop at half "
        "the direct phase's throughput",
    )
    load.add_argument("--label", default="pr5")
    load.add_argument(
        "--out", default="benchmarks", help="directory for BENCH_<label>.json"
    )
    load.add_argument(
        "--results-out",
        default=None,
        help="write the timing-free result transcript (JSONL) here",
    )
    load.add_argument(
        "--trace-out",
        default=None,
        help="write serve-batch + per-request trace events (JSONL) here",
    )
    load.add_argument(
        "--metrics-out",
        default=None,
        help="write merged serve/slo metrics (Prometheus text) here, "
        "phases labelled phase=direct / phase=batched",
    )
    load.add_argument(
        "--requests-out",
        default=None,
        help="write per-request trace records (JSONL, sorted by "
        "path + request id) here — the repro-slo / repro-trace input",
    )

    serve = sub.add_parser("serve", help="expose a snapshot over HTTP/JSON")
    serve.add_argument("--snapshot", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8098, help="0 binds an ephemeral port"
    )
    serve.add_argument("--scoring", choices=SCORINGS, default="confidence")
    serve.add_argument("--top-k", type=int, default=5)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--batch-max", type=int, default=32)
    serve.add_argument(
        "--shards",
        type=int,
        default=0,
        help="serve through the sharded tier over this many partitions "
        "(0 = the micro-batched tier)",
    )
    serve.add_argument(
        "--replication", type=int, default=2, help="replicas per partition"
    )
    serve.add_argument(
        "--trace-out",
        default=None,
        help="write request trace events (JSONL) here, flushed on drain",
    )
    serve.add_argument(
        "--metrics-out",
        default=None,
        help="write final metrics (Prometheus text) here on drain",
    )

    return parser


def _parse_rate(spec: str):
    if spec == "auto":
        return "auto"
    try:
        rate = float(spec)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--rate must be a number or 'auto', got {spec!r}"
        ) from None
    if rate < 0:
        raise argparse.ArgumentTypeError(f"--rate must be >= 0, got {rate}")
    return rate


def _parse_basket(spec: str) -> list[int]:
    try:
        return [int(part) for part in spec.split(",") if part.strip()]
    except ValueError as error:
        raise SystemExit(f"repro-serve: bad --basket {spec!r}: {error}") from None


def _cmd_build(args: argparse.Namespace) -> int:
    if args.rules:
        rules, interests = read_rules_jsonl(args.rules)
        taxonomy = load_taxonomy(args.taxonomy) if args.taxonomy else None
        source = {"rules_file": str(args.rules)}
        snapshot = compile_snapshot(
            rules, taxonomy, interests=interests, source=source
        )
    else:
        dataset = common.experiment_dataset(
            args.dataset, args.transactions, args.seed
        )
        result = cumulate(
            dataset.database,
            dataset.taxonomy,
            args.min_support,
            max_k=args.max_k,
        )
        rules = generate_rules(result, args.min_confidence, dataset.taxonomy)
        if args.min_interest is not None:
            rules = interesting_rules(
                rules, result, dataset.taxonomy, args.min_interest
            )
        source = {
            "dataset": args.dataset,
            "seed": args.seed,
            "min_support": args.min_support,
            "min_confidence": args.min_confidence,
        }
        if args.min_interest is not None:
            source["min_interest"] = args.min_interest
        snapshot = compile_snapshot(
            rules, dataset.taxonomy, result=result, source=source
        )
    path = write_snapshot(snapshot, args.out)
    print(
        f"wrote snapshot {snapshot.version[:12]} "
        f"({snapshot.num_rules} rules, {len(snapshot.closures)} items) to {path}"
    )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    snapshot = load_snapshot(args.snapshot)
    service = ServeService(
        snapshot, scoring=args.scoring, top_k=args.top_k, workers=0
    )
    result = service.query_direct(_parse_basket(args.basket))
    service.close()
    print(json.dumps(result.to_dict(snapshot), indent=2, sort_keys=True))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    snapshot = load_snapshot(args.snapshot)
    sink = EventSink(path=args.trace_out) if args.trace_out else None
    metrics = MetricsRegistry() if args.metrics_out else None
    report, transcript, requests = run_loadgen(
        snapshot,
        queries=args.queries,
        seed=args.seed,
        pool_size=args.pool_size,
        scoring=args.scoring,
        top_k=args.top_k,
        clients=args.clients,
        workers=args.workers,
        batch_max=args.batch_max,
        shards=args.shards,
        replication=args.replication,
        rate=args.rate,
        label=args.label,
        sink=sink,
        metrics=metrics,
    )
    if sink is not None:
        sink.close()
    if metrics is not None:
        metrics_path = Path(args.metrics_out)
        metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(metrics.to_prometheus(), encoding="utf-8")
        print(f"metrics written to {metrics_path}")
    path = write_report(report, args.out, args.label)
    history_path = append_history(
        Path(args.out) / "HISTORY.jsonl",
        record_from_report(report, source=path.name),
    )
    print(f"appended trajectory record to {history_path}")
    if args.results_out:
        write_transcript(transcript, args.results_out)
        print(f"transcript written to {args.results_out}")
    if args.requests_out:
        write_requests(requests, args.requests_out)
        print(f"request traces written to {args.requests_out}")
    direct = report["phases"]["direct"]
    batched = report["phases"]["batched"]
    print(
        f"direct:  {direct['qps']:9.1f} qps  "
        f"p50={direct['p50_ms']:.3f}ms p95={direct['p95_ms']:.3f}ms "
        f"p99={direct['p99_ms']:.3f}ms"
    )
    print(
        f"batched: {batched['qps']:9.1f} qps  "
        f"p50={batched['p50_ms']:.3f}ms p95={batched['p95_ms']:.3f}ms "
        f"p99={batched['p99_ms']:.3f}ms  "
        f"(mean batch {batched['mean_batch_size']}, "
        f"{batched['deduped_queries']} deduped)"
    )
    sharded = report["phases"].get("sharded")
    if sharded is not None:
        print(
            f"sharded: {sharded['qps']:9.1f} qps  "
            f"p50={sharded['p50_ms']:.3f}ms p95={sharded['p95_ms']:.3f}ms "
            f"p99={sharded['p99_ms']:.3f}ms  "
            f"({sharded['shards']}x{sharded['replication']} shards, "
            f"rate={sharded['rate']}, shed={sharded['shed']}, "
            f"hedges={sharded['hedges']}, degraded={sharded['degraded']})"
        )
    tracing = report["tracing"]
    print(
        f"tracing: {tracing['requests']} requests, "
        f"{tracing['errors']} errors, reconciled: {tracing['reconciled']}, "
        f"within wall: {tracing['within_wall']}"
    )
    print(
        f"speedup {report['speedup_qps']}x, results identical: "
        f"{report['results_identical']}; report written to {path}"
    )
    ok = report["results_identical"] and tracing["reconciled"]
    return 0 if ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.httpd import make_server

    snapshot = load_snapshot(args.snapshot)
    sink = EventSink(path=args.trace_out) if args.trace_out else None
    registry = MetricsRegistry()
    if args.shards > 0:
        from repro.serve.shard.service import ShardedService

        service = ShardedService(
            snapshot,
            shards=args.shards,
            replication=args.replication,
            scoring=args.scoring,
            top_k=args.top_k,
            registry=registry,
            sink=sink,
        )
        tier = f"sharded {args.shards}x{args.replication}"
    else:
        service = ServeService(
            snapshot,
            scoring=args.scoring,
            top_k=args.top_k,
            workers=max(1, args.workers),
            batch_max=args.batch_max,
            registry=registry,
            sink=sink,
        )
        tier = f"batched x{max(1, args.workers)}"
    server = make_server(service, args.host, args.port)
    host, port = server.server_address[:2]
    print(
        f"serving snapshot {snapshot.version[:12]} "
        f"({snapshot.num_rules} rules, {tier}) on http://{host}:{port}",
        flush=True,
    )

    # Graceful drain on SIGTERM/SIGINT: stop accepting, serve what is
    # already queued, flush metrics/traces, exit 0.  server.shutdown()
    # blocks until serve_forever() returns, so it must run off the
    # serving thread — calling it from the signal handler directly
    # would deadlock.
    def _drain(signum, frame) -> None:
        threading.Thread(
            target=server.shutdown, name=f"drain-{signum}", daemon=True
        ).start()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _drain),
        signal.SIGINT: signal.signal(signal.SIGINT, _drain),
    }
    try:
        server.serve_forever()
    finally:
        for signum in sorted(previous, key=int):
            signal.signal(signum, previous[signum])
        server.server_close()
        service.close()
        if sink is not None:
            sink.close()
            print(f"traces flushed to {args.trace_out}")
        if args.metrics_out:
            metrics_path = Path(args.metrics_out)
            metrics_path.parent.mkdir(parents=True, exist_ok=True)
            metrics_path.write_text(registry.to_prometheus(), encoding="utf-8")
            print(f"metrics flushed to {metrics_path}")
    print("drained; exiting 0", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "build":
            return _cmd_build(args)
        if args.command == "query":
            return _cmd_query(args)
        if args.command == "loadgen":
            return _cmd_loadgen(args)
        return _cmd_serve(args)
    except ReproError as error:
        print(f"repro-serve: {error_label(error)}: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":
    sys.exit(main())
