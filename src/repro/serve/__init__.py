"""repro.serve — online serving of mined generalized rules.

The offline pipeline (mine → ``generate_rules`` → ``interesting_rules``)
ends in data structures; this package turns them into a service:

* :mod:`repro.serve.snapshot` — compile rules + taxonomy into an
  immutable, versioned, byte-stable snapshot with precomputed
  ancestor-closure keys, an antecedent inverted index, and antecedent
  bitmasks (no per-query taxonomy walks);
* :mod:`repro.serve.engine` — basket → matching rules + ranked
  consequent recommendations, with bounded LRU caches and a strict
  determinism contract;
* :mod:`repro.serve.batch` — micro-batching worker pool and atomic
  snapshot hot-swap under live traffic;
* :mod:`repro.serve.loadgen` — seeded workload replay and the
  direct-vs-batched benchmark report;
* :mod:`repro.serve.httpd` / :mod:`repro.serve.cli` — the stdlib HTTP
  endpoint and the ``repro-serve`` command.

See ``docs/serving.md`` for the end-to-end walkthrough.
"""

from repro.serve.batch import PendingQuery, ServeService
from repro.serve.cache import BoundedLRUCache
from repro.serve.engine import (
    SCORINGS,
    MatchedRule,
    QueryEngine,
    QueryResult,
    Recommendation,
)
from repro.serve.loadgen import generate_workload, run_loadgen
from repro.serve.rules_io import (
    read_rules_jsonl,
    rules_to_jsonl,
    write_rules_jsonl,
)
from repro.serve.snapshot import (
    RuleSnapshot,
    ServedRule,
    compile_snapshot,
    load_snapshot,
    parse_snapshot,
    write_snapshot,
)

__all__ = [
    "SCORINGS",
    "BoundedLRUCache",
    "MatchedRule",
    "PendingQuery",
    "QueryEngine",
    "QueryResult",
    "Recommendation",
    "RuleSnapshot",
    "ServeService",
    "ServedRule",
    "compile_snapshot",
    "generate_workload",
    "load_snapshot",
    "parse_snapshot",
    "read_rules_jsonl",
    "rules_to_jsonl",
    "run_loadgen",
    "write_rules_jsonl",
    "write_snapshot",
]
