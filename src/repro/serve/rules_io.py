"""Rules-file I/O — the JSONL hand-off between miner and compiler.

``repro-mine mine --rules-out FILE`` exports the generated rules in
this format; ``repro-serve build --rules FILE`` compiles them into a
snapshot without re-mining.  One meta line
(``{"schema": "repro.serve.rules", "v": 1}``) followed by one ``rule``
record per line, in canonical ``(antecedent, consequent)`` order, all
serialized with sorted keys — the file is byte-stable under any
``PYTHONHASHSEED``.

The interest ratio travels with each rule (``null`` when no close
ancestor rule predicts it), so snapshot compilation from a file scores
identically to compilation straight from a mining result.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.result import Rule
from repro.errors import EmptyRuleSetError, SnapshotFormatError

RULES_SCHEMA = "repro.serve.rules"
RULES_VERSION = 1


def _serialize(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def rules_to_jsonl(
    rules: list[Rule],
    interests: list[float | None] | None = None,
    source: dict | None = None,
) -> str:
    """Render rules (+ optional aligned interest ratios) as JSONL."""
    if not rules:
        raise EmptyRuleSetError(
            "no rules to export; lower --min-confidence or mine more data"
        )
    if interests is not None and len(interests) != len(rules):
        raise SnapshotFormatError(
            f"{len(interests)} interest values for {len(rules)} rules"
        )
    rows = sorted(
        (
            (
                tuple(rule.antecedent),
                tuple(rule.consequent),
                rule,
                interests[position] if interests is not None else None,
            )
            for position, rule in enumerate(rules)
        ),
        key=lambda row: (row[0], row[1]),
    )
    lines = [
        _serialize(
            {
                "type": "meta",
                "schema": RULES_SCHEMA,
                "v": RULES_VERSION,
                "rules": len(rows),
                "source": {key: source[key] for key in sorted(source)}
                if source
                else {},
            }
        )
    ]
    for antecedent, consequent, rule, interest in rows:
        lines.append(
            _serialize(
                {
                    "type": "rule",
                    "ant": list(antecedent),
                    "cons": list(consequent),
                    "sup": float(rule.support),
                    "conf": float(rule.confidence),
                    "interest": interest,
                }
            )
        )
    return "\n".join(lines) + "\n"


def write_rules_jsonl(
    rules: list[Rule],
    path: str | Path,
    interests: list[float | None] | None = None,
    source: dict | None = None,
) -> Path:
    """Write the rules export; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(rules_to_jsonl(rules, interests, source), encoding="utf-8")
    return target


def read_rules_jsonl(path: str | Path) -> tuple[list[Rule], list[float | None]]:
    """Parse a rules export into (rules, aligned interest ratios)."""
    rules: list[Rule] = []
    interests: list[float | None] = []
    meta: dict | None = None
    for number, raw in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise SnapshotFormatError(
                f"{path}: line {number} is not JSON: {error}"
            ) from None
        if meta is None:
            if (
                not isinstance(record, dict)
                or record.get("type") != "meta"
                or record.get("schema") != RULES_SCHEMA
            ):
                raise SnapshotFormatError(
                    f"{path}: does not start with a {RULES_SCHEMA} meta line"
                )
            if record.get("v") != RULES_VERSION:
                raise SnapshotFormatError(
                    f"{path}: unsupported rules schema version {record.get('v')!r}"
                )
            meta = record
            continue
        if record.get("type") != "rule":
            raise SnapshotFormatError(
                f"{path}: line {number} has unexpected type "
                f"{record.get('type')!r}"
            )
        try:
            rules.append(
                Rule(
                    antecedent=tuple(int(i) for i in record["ant"]),
                    consequent=tuple(int(i) for i in record["cons"]),
                    support=float(record["sup"]),
                    confidence=float(record["conf"]),
                )
            )
            interest = record["interest"]
            interests.append(None if interest is None else float(interest))
        except (KeyError, TypeError, ValueError) as error:
            raise SnapshotFormatError(
                f"{path}: malformed rule on line {number}: {error}"
            ) from None
    if meta is None:
        raise SnapshotFormatError(f"{path}: empty rules file")
    if not rules:
        raise EmptyRuleSetError(f"{path}: rules file contains zero rules")
    if int(meta.get("rules", -1)) != len(rules):
        raise SnapshotFormatError(
            f"{path}: meta declares {meta.get('rules')} rules, "
            f"found {len(rules)}"
        )
    return rules, interests
