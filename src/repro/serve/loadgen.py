"""Seeded load generator + latency/throughput benchmark for serving.

``repro-serve loadgen`` replays a deterministic workload against one
snapshot twice — once through the **direct** per-query path, once
through the **batched** path with concurrent client threads — and
writes a schema-versioned report (``repro.serve.bench/v1``, committed
as ``benchmarks/BENCH_pr5.json``) with throughput and p50/p95/p99
latency per phase, mirroring the ``repro-bench`` trajectory files.

Like ``repro-bench``, timing is only evidence while results agree: the
two phases' result transcripts are digest-compared and the run **fails
when they diverge** (``results_identical``).  The transcript itself
(``--results-out``) carries no timing, so it is byte-identical across
``PYTHONHASHSEED`` values — the determinism suite replays it under two
seeds.

The workload is a pure function of its seed: baskets are drawn from a
small pool of leaf-item combinations under a Zipf-like popularity skew
(hot baskets repeat, as real traffic does), which is exactly the regime
micro-batching exploits — co-occurring duplicates inside one batch are
executed once.  Caches are **off** during the timed phases (size 0) so
both paths measure full query execution rather than cache residency;
hit-rate behaviour is covered by the unit suite instead.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import random
import threading
import time
from pathlib import Path

from repro.obs.registry import MetricsRegistry
from repro.obs.requests import RequestTracer, reconciles, to_ns
from repro.serve.batch import ServeService
from repro.serve.snapshot import RuleSnapshot

#: Version tag of the serving benchmark report files.
BENCH_SCHEMA = "repro.serve.bench/v1"


def generate_workload(
    snapshot: RuleSnapshot,
    queries: int,
    seed: int,
    pool_size: int = 32,
    basket_min: int = 1,
    basket_max: int = 4,
) -> list[tuple[int, ...]]:
    """A deterministic basket stream: Zipf-skewed draws from a pool.

    The pool is sampled from the snapshot's leaf items (falling back to
    all items for flat snapshots); basket ``i`` of the pool is drawn
    with weight ``1 / (i + 1)``.
    """
    rng = random.Random(seed)
    population = list(snapshot.leaves)
    pool: list[tuple[int, ...]] = []
    for _ in range(pool_size):
        size = rng.randint(basket_min, min(basket_max, len(population)))
        pool.append(tuple(sorted(rng.sample(population, size))))
    weights = [1.0 / (position + 1) for position in range(len(pool))]
    return rng.choices(pool, weights=weights, k=queries)


def percentile(latencies: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a latency sample (seconds)."""
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


def _phase_stats(latencies: list[float], wall: float) -> dict:
    return {
        "queries": len(latencies),
        "wall_seconds": round(wall, 6),
        "qps": round(len(latencies) / wall, 3) if wall > 0 else 0.0,
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 4),
        "p95_ms": round(percentile(latencies, 0.95) * 1e3, 4),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 4),
    }


def _transcript_digest(transcript: list[dict]) -> str:
    blob = "\n".join(
        json.dumps(entry, sort_keys=True, separators=(",", ":"))
        for entry in transcript
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def run_direct_phase(
    snapshot: RuleSnapshot,
    workload: list[tuple[int, ...]],
    scoring: str,
    top_k: int,
    registry: MetricsRegistry,
    clock=time.perf_counter,
    tracer: RequestTracer | None = None,
) -> tuple[dict, list[dict]]:
    """Unbatched baseline: one blocking engine call per query.

    Request ids are workload positions, so the trace stream is a pure
    function of the workload (plus the clock, which tests fake).
    """
    if tracer is None:
        tracer = RequestTracer(registry=registry, clock=clock, namespace="direct")
    service = ServeService(
        snapshot,
        scoring=scoring,
        top_k=top_k,
        closure_cache_size=0,
        result_cache_size=0,
        workers=0,
        registry=registry,
        clock=clock,
        tracer=tracer,
    )
    latencies: list[float] = []
    transcript: list[dict] = []
    phase_start = clock()
    for position, basket in enumerate(workload):
        started = clock()
        result = service.query_direct(basket, request_id=position)
        latencies.append(clock() - started)
        transcript.append(result.to_dict())
    wall = clock() - phase_start
    service.close()
    return _phase_stats(latencies, wall), transcript


def run_batched_phase(
    snapshot: RuleSnapshot,
    workload: list[tuple[int, ...]],
    scoring: str,
    top_k: int,
    registry: MetricsRegistry,
    clients: int = 4,
    workers: int = 2,
    batch_max: int = 32,
    sink=None,
    clock=time.perf_counter,
    tracer: RequestTracer | None = None,
) -> tuple[dict, list[dict]]:
    """Batched path: ``clients`` threads submit, workers coalesce."""
    if tracer is None:
        tracer = RequestTracer(
            sink=sink, registry=registry, clock=clock, namespace="batched"
        )
    service = ServeService(
        snapshot,
        scoring=scoring,
        top_k=top_k,
        closure_cache_size=0,
        result_cache_size=0,
        batch_max=batch_max,
        workers=workers,
        registry=registry,
        sink=sink,
        clock=clock,
        tracer=tracer,
    )
    latencies: list[float | None] = [None] * len(workload)
    results: list[dict | None] = [None] * len(workload)

    # Each client pipelines a window of submissions before collecting, so
    # queues actually fill and batches coalesce; latency is measured per
    # query from its own submit time to its resolution.
    window = max(1, batch_max // max(1, clients))

    def client(client_id: int) -> None:
        positions = list(range(client_id, len(workload), clients))
        for window_start in range(0, len(positions), window):
            handles: list[tuple[int, float, object]] = []
            for position in positions[window_start : window_start + window]:
                handles.append(
                    (
                        position,
                        clock(),
                        service.submit(workload[position], request_id=position),
                    )
                )
            for position, started, handle in handles:
                result = handle.result()
                latencies[position] = clock() - started
                results[position] = result.to_dict()

    threads = [
        threading.Thread(target=client, args=(client_id,), name=f"client-{client_id}")
        for client_id in range(clients)
    ]
    phase_start = clock()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = clock() - phase_start
    service.close()
    stats = _phase_stats([value for value in latencies if value is not None], wall)
    stats["batches"] = int(registry.value("serve.batches"))
    stats["deduped_queries"] = int(registry.value("serve.deduped_queries"))
    batched = registry.value("serve.batched_queries")
    stats["mean_batch_size"] = (
        round(batched / stats["batches"], 3) if stats["batches"] else 0.0
    )
    return stats, [entry for entry in results if entry is not None]


def request_records(*tracers: RequestTracer) -> list[dict]:
    """Merge tracers' finished records, sorted by (path, request id)."""
    merged: list[dict] = []
    for tracer in tracers:
        merged.extend(tracer.records)
    merged.sort(key=lambda record: (record["path"], record["id"]))
    return merged


def tracing_summary(phase_walls: list[tuple[RequestTracer, float]]) -> dict:
    """Reconciliation summary over each phase's tracer + wall total.

    ``reconciled`` asserts the exact integer identity
    ``queue_wait + batch_exec + overhead == end_to_end`` for every
    request; ``within_wall`` checks every request interval fits inside
    its phase's loadgen wall time (the reported wall is rounded to
    microseconds, so half a microsecond of quantization slack applies).
    """
    requests = 0
    errors = 0
    reconciled = True
    within_wall = True
    dropped = 0
    for tracer, wall in phase_walls:
        wall_ns = to_ns(wall) + 500
        dropped += tracer.log.dropped
        for record in tracer.records:
            requests += 1
            if record["status"] == "error":
                errors += 1
            if not reconciles(record):
                reconciled = False
            if record["phases"]["end_to_end"] > wall_ns:
                within_wall = False
    return {
        "requests": requests,
        "errors": errors,
        "reconciled": reconciled,
        "within_wall": within_wall,
        "dropped": dropped,
    }


def run_loadgen(
    snapshot: RuleSnapshot,
    queries: int = 200,
    seed: int = 7,
    pool_size: int = 16,
    scoring: str = "confidence",
    top_k: int = 5,
    clients: int = 4,
    workers: int = 2,
    batch_max: int = 32,
    shards: int = 0,
    replication: int = 2,
    rate: float | str = 0.0,
    label: str = "local",
    sink=None,
    clock=time.perf_counter,
    metrics: MetricsRegistry | None = None,
) -> tuple[dict, list[dict], list[dict]]:
    """All phases on one workload; returns (report, transcript,
    request records).

    Request records carry each query's reconciled span accounting; the
    report's ``tracing`` section summarizes them and **fails the run**
    (via ``results_identical``-style gating in the CLI) when any record
    does not reconcile exactly.  When a ``metrics`` registry is given,
    each phase's series are merged into it under ``phase=direct`` /
    ``phase=batched`` / ``phase=sharded`` labels (the ``--metrics-out``
    export).

    ``shards > 0`` adds the sharded-tier phase
    (:func:`repro.serve.shard.loadgen.run_sharded_phase`): ``rate``
    selects its arrival mode — ``0`` closed-loop lockstep, a positive
    number an open-loop arrival rate in queries/second, and the string
    ``"auto"`` an open loop at half the direct phase's measured
    throughput (fast enough to exercise concurrency, slow enough that
    nothing sheds and the transcripts stay comparable).
    """
    workload = generate_workload(snapshot, queries, seed, pool_size=pool_size)
    direct_registry = MetricsRegistry()
    direct_tracer = RequestTracer(
        sink=sink, registry=direct_registry, clock=clock, namespace="direct"
    )
    direct_stats, direct_transcript = run_direct_phase(
        snapshot,
        workload,
        scoring,
        top_k,
        direct_registry,
        clock=clock,
        tracer=direct_tracer,
    )
    batched_registry = MetricsRegistry()
    batched_tracer = RequestTracer(
        sink=sink, registry=batched_registry, clock=clock, namespace="batched"
    )
    batched_stats, batched_transcript = run_batched_phase(
        snapshot,
        workload,
        scoring,
        top_k,
        batched_registry,
        clients=clients,
        workers=workers,
        batch_max=batch_max,
        sink=sink,
        clock=clock,
        tracer=batched_tracer,
    )
    phase_walls = [
        (direct_tracer, direct_stats["wall_seconds"]),
        (batched_tracer, batched_stats["wall_seconds"]),
    ]
    tracers = [direct_tracer, batched_tracer]
    phases = {"direct": direct_stats, "batched": batched_stats}
    digests = {}
    if shards > 0:
        # Imported here: repro.serve.shard.loadgen borrows this module's
        # phase-stat helpers, so a top-level import would be circular.
        from repro.serve.shard.loadgen import run_sharded_phase

        if rate == "auto":
            rate = direct_stats["qps"] / 2
        sharded_registry = MetricsRegistry()
        sharded_tracer = RequestTracer(
            sink=sink, registry=sharded_registry, clock=clock, namespace="shard"
        )
        sharded_stats, sharded_transcript = run_sharded_phase(
            snapshot,
            workload,
            scoring,
            top_k,
            sharded_registry,
            shards=shards,
            replication=replication,
            rate=float(rate),
            clock=clock,
            tracer=sharded_tracer,
        )
        phases["sharded"] = sharded_stats
        phase_walls.append((sharded_tracer, sharded_stats["wall_seconds"]))
        tracers.append(sharded_tracer)
        digests["sharded"] = _transcript_digest(sharded_transcript)
        if metrics is not None:
            metrics.merge(sharded_registry, phase="sharded")
    if metrics is not None:
        metrics.merge(direct_registry, phase="direct")
        metrics.merge(batched_registry, phase="batched")
    direct_digest = _transcript_digest(direct_transcript)
    batched_digest = _transcript_digest(batched_transcript)
    digests["direct"] = direct_digest
    digests["batched"] = batched_digest
    tracing = tracing_summary(phase_walls)
    report = {
        "schema": BENCH_SCHEMA,
        "label": label,
        "snapshot": {
            "version": snapshot.version,
            "rules": snapshot.num_rules,
            "items": len(snapshot.closures),
        },
        "workload": {
            "queries": queries,
            "seed": seed,
            "pool_size": pool_size,
            "scoring": scoring,
            "top_k": top_k,
            "clients": clients,
            "workers": workers,
            "batch_max": batch_max,
        },
        "host": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count() or 1,
        },
        "phases": phases,
        "speedup_qps": (
            round(batched_stats["qps"] / direct_stats["qps"], 3)
            if direct_stats["qps"]
            else 0.0
        ),
        "results_identical": all(
            digest == direct_digest for digest in digests.values()
        ),
        "transcript_sha256": direct_digest,
        "tracing": tracing,
    }
    if shards > 0:
        report["workload"]["shards"] = shards
        report["workload"]["replication"] = replication
        report["workload"]["rate"] = round(float(rate), 3)
    return report, direct_transcript, request_records(*tracers)


def write_report(report: dict, out_dir: str | Path, label: str) -> Path:
    """Write ``BENCH_<label>.json``; returns the path written."""
    target = Path(out_dir)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{label}.json"
    path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    return path


def write_transcript(transcript: list[dict], path: str | Path) -> Path:
    """Write the timing-free result transcript as JSONL (byte-stable)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(entry, sort_keys=True, separators=(",", ":"))
        for entry in transcript
    ]
    target.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return target


def write_requests(records: list[dict], path: str | Path) -> Path:
    """Write request records as sorted-key JSONL (``--requests-out``).

    With a fake clock this file is byte-identical across
    ``PYTHONHASHSEED`` values; with the real clock the *shape* (ids,
    paths, statuses, span names) is stable and the timings vary.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = [
        json.dumps(record, sort_keys=True, separators=(",", ":"))
        for record in records
    ]
    target.write_text("\n".join(lines) + ("\n" if lines else ""), encoding="utf-8")
    return target
