"""Synchronous facade over the sharded tier: loop thread + rollout.

:class:`ShardedService` owns one asyncio event loop on a daemon thread
and runs a :class:`~repro.serve.shard.pool.ShardPool` +
:class:`~repro.serve.shard.router.ShardRouter` on it, exposing the same
blocking ``query``/``close`` surface as
:class:`~repro.serve.batch.ServeService` — so the stdlib HTTP front end
(:mod:`repro.serve.httpd`) and the CLI drive either tier through one
shape.  Every bridge call carries an explicit timeout; nothing in the
synchronous world waits unboundedly on the loop.

Rolling rollout: :meth:`begin_rollout` builds the **new** snapshot's
shard set next to the live one and shadow-mirrors every admitted query
to it (inline, after the authoritative answer).  The
:class:`~repro.serve.shard.rollout.RolloutController` digest-compares
both answers; a full window of consecutive matches promotes the new
set (old pool drained and discarded), the first divergence tears the
new set down instantly — clients never see anything but the
authoritative answer either way.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
from typing import Callable, Iterable

from repro.errors import ReproError, ServingError, error_label
from repro.obs.registry import MetricsRegistry
from repro.obs.requests import RequestContext, RequestTracer
from repro.obs.sink import EventSink
from repro.serve.shard.partition import ShardMap, build_shard_map
from repro.serve.shard.pool import ShardPool
from repro.serve.shard.rollout import RolloutController, answer_digest
from repro.serve.shard.router import ShardedQueryResult, ShardRouter
from repro.serve.snapshot import RuleSnapshot


class ShardedService:
    """Blocking facade over a sharded router (see module docstring)."""

    def __init__(
        self,
        snapshot: RuleSnapshot,
        shards: int = 4,
        replication: int = 2,
        scoring: str = "confidence",
        top_k: int = 5,
        queue_depth: int = 64,
        max_inflight: int = 256,
        deadline_seconds: float = 2.0,
        hedge_after: float = 0.05,
        subquery_timeout: float = 1.0,
        closure_cache_size: int = 1024,
        result_cache_size: int = 1024,
        failure_threshold: int = 3,
        cooldown_seconds: float = 0.25,
        registry: MetricsRegistry | None = None,
        sink: EventSink | None = None,
        clock: Callable[[], float] = time.perf_counter,
        tracer: RequestTracer | None = None,
        injector=None,
        shard_map: ShardMap | None = None,
    ):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink
        self._clock = clock
        self.tracer = (
            tracer
            if tracer is not None
            else RequestTracer(
                sink=sink, registry=self.registry, clock=clock, namespace="shard"
            )
        )
        self.deadline_seconds = deadline_seconds
        self._router_config = {
            "scoring": scoring,
            "top_k": top_k,
            "max_inflight": max_inflight,
            "deadline_seconds": deadline_seconds,
            "hedge_after": hedge_after,
            "subquery_timeout": subquery_timeout,
            "closure_cache_size": closure_cache_size,
            "result_cache_size": result_cache_size,
        }
        self._pool_config = {
            "replication": replication,
            "queue_depth": queue_depth,
            "failure_threshold": failure_threshold,
            "cooldown_seconds": cooldown_seconds,
        }
        self.shard_map = (
            shard_map if shard_map is not None else build_shard_map(snapshot, shards)
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="shard-loop", daemon=True
        )
        self._thread.start()
        self.pool = ShardPool(
            snapshot,
            self.shard_map,
            registry=self.registry,
            clock_ns=self.tracer.now_ns,
            **self._pool_config,
        )
        self.router = ShardRouter(
            self.pool,
            self.tracer,
            registry=self.registry,
            sink=sink,
            injector=injector,
            **self._router_config,
        )
        self.rollout: RolloutController | None = None
        self._shadow: tuple[ShardPool, ShardRouter, RequestTracer] | None = None
        self._closed = False
        self._call(self._start_pool(self.pool))

    # ------------------------------------------------------------------
    # Loop bridge
    # ------------------------------------------------------------------
    def _call(self, coro, timeout: float | None = None):
        """Run a coroutine on the serving loop, bounded by ``timeout``."""
        if timeout is None:
            timeout = self.deadline_seconds + 30.0
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise ServingError(
                f"serving loop did not answer within {timeout}s"
            ) from None

    @staticmethod
    async def _start_pool(pool: ShardPool) -> None:
        pool.start()

    # ------------------------------------------------------------------
    @property
    def snapshot(self) -> RuleSnapshot:
        return self.router.snapshot

    @property
    def version(self) -> str:
        return self.router.version

    # ------------------------------------------------------------------
    def query(
        self,
        basket: Iterable[int],
        top_k: int | None = None,
        scoring: str | None = None,
        request_id: int | None = None,
        ctx: RequestContext | None = None,
        timeout: float | None = None,
    ) -> ShardedQueryResult:
        """Serve one basket through the sharded tier (blocking)."""
        basket = tuple(basket)
        return self._call(
            self._serve(basket, top_k, scoring, request_id, ctx), timeout=timeout
        )

    async def _serve(
        self,
        basket: tuple[int, ...],
        top_k: int | None,
        scoring: str | None,
        request_id: int | None,
        ctx: RequestContext | None,
    ) -> ShardedQueryResult:
        result = await self.router.query(
            basket, top_k=top_k, scoring=scoring, request_id=request_id, ctx=ctx
        )
        if (
            self.rollout is not None
            and self.rollout.state == "shadow"
            and not result.degraded
        ):
            await self._shadow_compare(basket, top_k, scoring, request_id, result)
        return result

    # ------------------------------------------------------------------
    # Rolling rollout
    # ------------------------------------------------------------------
    def begin_rollout(
        self, new_snapshot: RuleSnapshot, window: int = 32
    ) -> RolloutController:
        """Stand the new snapshot's shard set up in shadow mode."""
        if self.rollout is not None and self.rollout.state == "shadow":
            raise ServingError(
                f"rollout to {self.rollout.new_version[:12]} already in progress"
            )
        shard_map = build_shard_map(new_snapshot, self.shard_map.num_partitions)
        shadow_registry = MetricsRegistry()
        shadow_tracer = RequestTracer(
            registry=shadow_registry, clock=self._clock, namespace="shard-shadow"
        )
        pool = ShardPool(
            new_snapshot,
            shard_map,
            registry=shadow_registry,
            clock_ns=shadow_tracer.now_ns,
            **self._pool_config,
        )
        router = ShardRouter(
            pool,
            shadow_tracer,
            registry=shadow_registry,
            **self._router_config,
        )
        self._call(self._start_pool(pool))
        self._shadow = (pool, router, shadow_tracer)
        self.rollout = RolloutController(
            self.version, new_snapshot.version, window=window, sink=self.sink
        )
        return self.rollout

    async def _shadow_compare(
        self,
        basket: tuple[int, ...],
        top_k: int | None,
        scoring: str | None,
        request_id: int | None,
        result: ShardedQueryResult,
    ) -> None:
        assert self._shadow is not None and self.rollout is not None
        _pool, router, _tracer = self._shadow
        old_digest = answer_digest(result)
        try:
            shadow = await router.query(basket, top_k=top_k, scoring=scoring)
        except ReproError as error:
            # A failing shadow set must never cut over: treat the error
            # as a divergent digest.
            new_digest = f"error:{error_label(error)}"
        else:
            new_digest = answer_digest(shadow)
        decision = self.rollout.observe(
            request_id if request_id is not None else -1, old_digest, new_digest
        )
        if decision == "cutover":
            await self._promote()
        elif decision == "rolled_back":
            await self._discard_shadow()

    async def _promote(self) -> None:
        """Cutover: the shadow set becomes authoritative, old drains."""
        assert self._shadow is not None
        pool, _shadow_router, _tracer = self._shadow
        self._shadow = None
        old_pool = self.pool
        self.pool = pool
        self.shard_map = pool.shard_map
        # The promoted router serves through the primary tracer/registry
        # (the shadow identities were throwaway measurement plumbing).
        self.router = ShardRouter(
            pool,
            self.tracer,
            registry=self.registry,
            sink=self.sink,
            **self._router_config,
        )
        await old_pool.close()

    async def _discard_shadow(self) -> None:
        """Rollback: tear the shadow set down; old set never stopped.

        Tolerates a missing shadow: an operator abort can race an
        in-flight compare that already discarded it, and the second
        discard must be a no-op, not a crash.
        """
        if self._shadow is None:
            return
        pool, _router, _tracer = self._shadow
        self._shadow = None
        await pool.close()

    def abort_rollout(self, reason: str = "operator") -> dict:
        """Operator rollback of an in-flight shadow rollout (blocking)."""
        if self.rollout is None:
            raise ServingError("no rollout to roll back")
        self.rollout.abort(reason)
        self._call(self._discard_shadow())
        return self.rollout.status()

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-ready tier health (the ``/shards`` endpoint body)."""
        status = self.router.status()
        if self.rollout is not None:
            status["rollout"] = self.rollout.status()
        return status

    def close(self, timeout: float = 30.0) -> None:
        """Drain every worker, stop the loop, join the thread."""
        if self._closed:
            return
        self._closed = True
        if self._shadow is not None:
            self._call(self._discard_shadow(), timeout=timeout)
        self._call(self.pool.close(), timeout=timeout)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=timeout)
        self._loop.close()
