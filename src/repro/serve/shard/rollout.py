"""Digest-verified rolling rollout of a new shard set.

A rollout runs the old and new shard sets **side by side**: the old set
keeps serving every admitted query, and each answer is shadow-compared
against the new set's answer for the same basket.  Cutover is gated on
a *window* of consecutive digest matches; the first divergence rolls
the new set back instantly (the old set never stopped serving, so
rollback is a no-op for clients).

The comparison digest is a sha256 over the answer's canonical JSON
**excluding the snapshot version tag** — two snapshot builds of the
same rule set must produce byte-identical answers to pass, which is
exactly the property the digest-stability CI job pins for rebuilds.

The controller is pure policy — it sees digests and emits decisions
(and ``rollout-*`` events into the shared sink); the
:class:`~repro.serve.shard.service.ShardedService` owns the actual
pool swap.
"""

from __future__ import annotations

import hashlib
import json

from repro.errors import ServingError
from repro.obs.sink import EventSink

#: Rollout states, in lifecycle order.
ROLLOUT_STATES: tuple[str, ...] = ("shadow", "cutover", "rolled_back")


def answer_digest(result) -> str:
    """Version-independent digest of one answer's canonical JSON."""
    record = result.to_dict()
    record.pop("version", None)
    blob = json.dumps(record, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class RolloutController:
    """Shadow-compare gate for one old → new snapshot transition."""

    __slots__ = (
        "old_version", "new_version", "window", "sink",
        "state", "streak", "compared", "mismatches",
    )

    def __init__(
        self,
        old_version: str,
        new_version: str,
        window: int = 32,
        sink: EventSink | None = None,
    ):
        if window < 1:
            raise ServingError(f"rollout window must be >= 1, got {window}")
        self.old_version = old_version
        self.new_version = new_version
        self.window = window
        self.sink = sink
        self.state = "shadow"
        self.streak = 0
        self.compared = 0
        self.mismatches = 0
        if sink is not None:
            sink.emit(
                "rollout-begin",
                old=old_version,
                new=new_version,
                window=window,
            )

    # ------------------------------------------------------------------
    def observe(self, request_id: int, old_digest: str, new_digest: str) -> str:
        """Record one shadow comparison; returns the (new) state.

        ``cutover`` is returned on the comparison that completes the
        match window; ``rolled_back`` on the first divergence.  Either
        terminal state is sticky — further observations are ignored.
        """
        if self.state != "shadow":
            return self.state
        self.compared += 1
        if old_digest == new_digest:
            self.streak += 1
            if self.streak >= self.window:
                self.state = "cutover"
                if self.sink is not None:
                    self.sink.emit(
                        "rollout-cutover",
                        old=self.old_version,
                        new=self.new_version,
                        compared=self.compared,
                    )
        else:
            self.mismatches += 1
            self.streak = 0
            self.state = "rolled_back"
            if self.sink is not None:
                self.sink.emit(
                    "rollout-rollback",
                    old=self.old_version,
                    new=self.new_version,
                    request=request_id,
                    old_digest=old_digest,
                    new_digest=new_digest,
                    compared=self.compared,
                )
        return self.state

    def abort(self, reason: str = "operator") -> str:
        """Force a rollback from outside the compare loop.

        The operator surface (``POST /rollout`` with ``action:
        rollback``) needs a way to kill an in-flight shadow without
        waiting for a divergence.  Terminal states are sticky, exactly
        like :meth:`observe`.
        """
        if self.state != "shadow":
            return self.state
        self.state = "rolled_back"
        self.streak = 0
        if self.sink is not None:
            self.sink.emit(
                "rollout-rollback",
                old=self.old_version,
                new=self.new_version,
                reason=reason,
                compared=self.compared,
            )
        return self.state

    def status(self) -> dict:
        """JSON-ready progress (the ``/shards`` endpoint's ``rollout``)."""
        return {
            "state": self.state,
            "old": self.old_version,
            "new": self.new_version,
            "window": self.window,
            "streak": self.streak,
            "compared": self.compared,
            "mismatches": self.mismatches,
        }

    def __repr__(self) -> str:
        return (
            f"RolloutController({self.old_version[:8]}→{self.new_version[:8]}, "
            f"{self.state}, {self.streak}/{self.window})"
        )
