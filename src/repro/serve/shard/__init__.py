"""Resilient sharded serving tier.

Layering (each module is importable without the ones above it):

* :mod:`~repro.serve.shard.partition` — deterministic root-itemset
  shard map + per-partition index slices (manifest-digested);
* :mod:`~repro.serve.shard.health` — per-worker circuit breakers;
* :mod:`~repro.serve.shard.pool` — bounded-queue async workers
  (the backpressure mechanism) and their lifecycle;
* :mod:`~repro.serve.shard.router` — admission control, deadlines,
  hedged retry, failover, graceful degradation;
* :mod:`~repro.serve.shard.rollout` — digest-verified shadow-compare
  rollout gate;
* :mod:`~repro.serve.shard.service` — blocking facade (loop thread)
  that the HTTP front end and CLI drive;
* :mod:`~repro.serve.shard.loadgen` — the benchmark's sharded phase.
"""

from repro.serve.shard.health import BREAKER_STATES, CircuitBreaker
from repro.serve.shard.loadgen import run_sharded_phase
from repro.serve.shard.partition import (
    SHARD_MAP_SCHEMA,
    ShardIndex,
    ShardMap,
    build_shard_indexes,
    build_shard_map,
    item_root,
    load_shard_manifest,
    rule_root,
    write_shard_manifest,
)
from repro.serve.shard.pool import ShardPool, ShardWorker
from repro.serve.shard.rollout import (
    ROLLOUT_STATES,
    RolloutController,
    answer_digest,
)
from repro.serve.shard.router import ShardedQueryResult, ShardRouter
from repro.serve.shard.service import ShardedService

__all__ = [
    "BREAKER_STATES",
    "CircuitBreaker",
    "ROLLOUT_STATES",
    "RolloutController",
    "SHARD_MAP_SCHEMA",
    "ShardIndex",
    "ShardMap",
    "ShardPool",
    "ShardRouter",
    "ShardWorker",
    "ShardedQueryResult",
    "ShardedService",
    "answer_digest",
    "build_shard_indexes",
    "build_shard_map",
    "item_root",
    "load_shard_manifest",
    "rule_root",
    "run_sharded_phase",
    "write_shard_manifest",
]
