"""Root-itemset partitioning of a snapshot's inverted index.

The paper's parallel miners partition candidate work across nodes; the
serving tier partitions *rules* across engine shards the same way —
by the classification hierarchy's root groups, which keeps every rule's
whole antecedent co-resident with the taxonomy subtree that triggers it.

Ownership and routing
---------------------
Every rule is owned by exactly one partition: the partition assigned
the **root ancestor of its smallest antecedent item**.  A query is
routed to the partitions owning the roots of its closure items.  This
is complete: a rule matches only when its antecedent is a subset of the
closure, so its smallest antecedent item — and therefore its owning
root — is always among the closure's roots.  Every matching rule is
found by exactly one consulted shard, which is what makes the union of
shard answers equal to the unsharded candidate set (pinned by
``tests/test_serve_shard.py`` over full query sweeps).

Determinism
-----------
Roots are assigned to partitions by greedy LPT bin-packing over their
rule counts: roots sorted by ``(-count, root)``, each placed on the
least-loaded partition (ties to the lowest id).  The resulting map is a
pure function of ``(snapshot.version, num_partitions)``; its sha256
digest is recorded in a sidecar manifest (``repro.serve.shardmap/v1``)
so a rolling rollout can verify both shard sets were built from the
shard map they claim.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.errors import ShardError, SnapshotFormatError
from repro.serve.snapshot import RuleSnapshot

#: Version tag of shard-map manifest files.
SHARD_MAP_SCHEMA = "repro.serve.shardmap/v1"


def item_root(snapshot: RuleSnapshot, item: int) -> int:
    """Root ancestor of an item (itself for roots and unknown items).

    Closure keys are ``ancestors_or_self`` tuples ordered nearest-first,
    so the root is the last element.
    """
    closure = snapshot.closures.get(item)
    return closure[-1] if closure else item


def rule_root(snapshot: RuleSnapshot, rule_id: int) -> int:
    """The root that owns a rule: root of its smallest antecedent item."""
    return item_root(snapshot, min(snapshot.rules[rule_id].antecedent))


class ShardMap:
    """Deterministic root → partition assignment for one snapshot."""

    __slots__ = ("num_partitions", "assignment", "snapshot_version", "loads", "digest")

    def __init__(
        self,
        num_partitions: int,
        assignment: dict[int, int],
        snapshot_version: str,
        loads: tuple[int, ...],
    ):
        if num_partitions < 1:
            raise ShardError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        for root, partition in assignment.items():
            if not 0 <= partition < num_partitions:
                raise ShardError(
                    f"root {root} assigned to partition {partition} "
                    f"outside [0, {num_partitions})"
                )
        self.num_partitions = num_partitions
        self.assignment = dict(assignment)
        self.snapshot_version = snapshot_version
        self.loads = loads
        self.digest = hashlib.sha256(
            json.dumps(
                {
                    "schema": SHARD_MAP_SCHEMA,
                    "partitions": num_partitions,
                    "snapshot": snapshot_version,
                    "assignment": sorted(assignment.items()),
                },
                sort_keys=True,
                separators=(",", ":"),
            ).encode("utf-8")
        ).hexdigest()

    # ------------------------------------------------------------------
    def partition_of_root(self, root: int) -> int | None:
        """Owning partition of a root (None: no rules under that root)."""
        return self.assignment.get(root)

    def involved_partitions(
        self, snapshot: RuleSnapshot, closure: tuple[int, ...]
    ) -> tuple[int, ...]:
        """Partitions a closure's query must consult, sorted."""
        involved: set[int] = set()
        assignment = self.assignment
        for item in closure:
            partition = assignment.get(item_root(snapshot, item))
            if partition is not None:
                involved.add(partition)
        return tuple(sorted(involved))

    def to_manifest(self) -> dict:
        """JSON-ready manifest (recorded next to the snapshot)."""
        return {
            "schema": SHARD_MAP_SCHEMA,
            "partitions": self.num_partitions,
            "snapshot": self.snapshot_version,
            "digest": self.digest,
            "roots": len(self.assignment),
            "loads": list(self.loads),
            "assignment": [
                [root, partition]
                for root, partition in sorted(self.assignment.items())
            ],
        }

    def __repr__(self) -> str:
        return (
            f"ShardMap(partitions={self.num_partitions}, "
            f"roots={len(self.assignment)}, digest={self.digest[:12]})"
        )


def build_shard_map(snapshot: RuleSnapshot, num_partitions: int) -> ShardMap:
    """Greedy LPT assignment of root groups to partitions.

    Pure function of the snapshot and the partition count; re-building
    from a reloaded snapshot yields the identical digest.
    """
    if num_partitions < 1:
        raise ShardError(f"num_partitions must be >= 1, got {num_partitions}")
    counts: dict[int, int] = {}
    for rule in snapshot.rules:
        root = item_root(snapshot, min(rule.antecedent))
        counts[root] = counts.get(root, 0) + 1
    loads = [0] * num_partitions
    assignment: dict[int, int] = {}
    for root in sorted(counts, key=lambda root: (-counts[root], root)):
        partition = min(range(num_partitions), key=lambda p: (loads[p], p))
        assignment[root] = partition
        loads[partition] += counts[root]
    return ShardMap(num_partitions, assignment, snapshot.version, tuple(loads))


def write_shard_manifest(shard_map: ShardMap, path: str | Path) -> Path:
    """Write the shard-map manifest (sorted keys, byte-stable)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(shard_map.to_manifest(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_shard_manifest(path: str | Path) -> dict:
    """Load + validate a shard-map manifest; verifies the digest."""
    try:
        manifest = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise SnapshotFormatError(
            f"{path}: shard manifest is not JSON: {error}"
        ) from None
    if not isinstance(manifest, dict) or manifest.get("schema") != SHARD_MAP_SCHEMA:
        raise SnapshotFormatError(
            f"{path}: not a shard-map manifest (expected {SHARD_MAP_SCHEMA!r})"
        )
    rebuilt = ShardMap(
        int(manifest["partitions"]),
        {int(root): int(partition) for root, partition in manifest["assignment"]},
        manifest["snapshot"],
        tuple(int(load) for load in manifest["loads"]),
    )
    if rebuilt.digest != manifest.get("digest"):
        raise SnapshotFormatError(
            f"{path}: shard-map digest mismatch (recorded "
            f"{str(manifest.get('digest'))[:12]}…, content hashes to "
            f"{rebuilt.digest[:12]}…)"
        )
    return manifest


class ShardIndex:
    """One partition's slice of the antecedent inverted index.

    Holds postings only for rules the partition owns; the bitmask subset
    test reuses the snapshot's global ``rule_masks``, so a shard match
    is exactly the engine's match restricted to owned rules.
    ``match`` returns sorted rule ids only — scores and ranking are the
    router's job, computed once over the merged candidate set with
    :func:`repro.serve.engine.rank_matches`.
    """

    __slots__ = ("partition", "snapshot", "index", "num_rules")

    def __init__(self, partition: int, snapshot: RuleSnapshot, shard_map: ShardMap):
        self.partition = partition
        self.snapshot = snapshot
        postings: dict[int, list[int]] = {}
        owned = 0
        for rule in snapshot.rules:
            if shard_map.assignment.get(rule_root(snapshot, rule.rule_id)) != partition:
                continue
            owned += 1
            for item in rule.antecedent:
                postings.setdefault(item, []).append(rule.rule_id)
        self.index = {
            item: tuple(sorted(rule_ids))
            for item, rule_ids in sorted(postings.items())
        }
        self.num_rules = owned

    def match(self, closure: tuple[int, ...], closure_mask: int) -> tuple[int, ...]:
        """Sorted ids of owned rules whose antecedent ⊆ closure."""
        index = self.index
        candidates: set[int] = set()
        for item in closure:
            postings = index.get(item)
            if postings:
                candidates.update(postings)
        masks = self.snapshot.rule_masks
        return tuple(
            rule_id
            for rule_id in sorted(candidates)
            if not masks[rule_id] & ~closure_mask
        )


def build_shard_indexes(
    snapshot: RuleSnapshot, shard_map: ShardMap
) -> tuple[ShardIndex, ...]:
    """One :class:`ShardIndex` per partition (empty partitions allowed)."""
    return tuple(
        ShardIndex(partition, snapshot, shard_map)
        for partition in range(shard_map.num_partitions)
    )
