"""Sharded load-generation phase: open-loop replay through the router.

``repro-serve loadgen --shards N`` adds a third phase to the benchmark:
the same deterministic Zipf workload replayed through a
(partitions × replication) shard grid.  Two arrival modes:

* ``rate == 0`` (default) — **closed-loop lockstep**: one query at a
  time, so the answer transcript is strictly ordered and
  digest-comparable against the direct phase (``results_identical``
  covers all three phases);
* ``rate > 0`` — **open-loop**: arrival ``i`` fires at
  ``start + i/rate`` regardless of completions, the honest way to load
  a bounded-queue tier (a closed loop would hide overload as client
  slowdown — coordinated omission).  Overload shows up as shed
  requests, counted in the phase stats and traced as first-class
  ``shed`` records.

Shed queries have no transcript entry; the phase records how many were
shed so a digest mismatch from shedding is attributable, never silent.
"""

from __future__ import annotations

import asyncio
import time

from repro.errors import OverloadShedError
from repro.obs.registry import MetricsRegistry
from repro.obs.requests import RequestTracer
from repro.serve.loadgen import _phase_stats
from repro.serve.shard.partition import build_shard_map
from repro.serve.shard.pool import ShardPool
from repro.serve.shard.router import ShardRouter
from repro.serve.snapshot import RuleSnapshot


def run_sharded_phase(
    snapshot: RuleSnapshot,
    workload: list[tuple[int, ...]],
    scoring: str,
    top_k: int,
    registry: MetricsRegistry,
    shards: int = 4,
    replication: int = 2,
    rate: float = 0.0,
    queue_depth: int = 256,
    max_inflight: int = 4096,
    deadline_seconds: float = 5.0,
    hedge_after: float = 0.05,
    clock=time.perf_counter,
    tracer: RequestTracer | None = None,
) -> tuple[dict, list[dict]]:
    """Replay a workload through a sharded router; see module docstring.

    Returns ``(stats, transcript)`` shaped like the other phases;
    ``stats`` additionally carries the shard topology and the
    shed/hedge/failover/degraded tallies.
    """
    if tracer is None:
        tracer = RequestTracer(registry=registry, clock=clock, namespace="shard")
    shard_map = build_shard_map(snapshot, shards)
    results: list[dict | None] = [None] * len(workload)
    latencies: list[float | None] = [None] * len(workload)
    shed = 0
    collect_timeout = deadline_seconds + 5.0

    async def one(router: ShardRouter, position: int, basket: tuple[int, ...]) -> None:
        nonlocal shed
        started = clock()
        try:
            result = await router.query(basket, request_id=position)
        except OverloadShedError:
            shed += 1
            return
        latencies[position] = clock() - started
        results[position] = result.to_dict()

    async def drive() -> float:
        pool = ShardPool(
            snapshot,
            shard_map,
            replication=replication,
            queue_depth=queue_depth,
            registry=registry,
            clock_ns=tracer.now_ns,
        )
        pool.start()
        router = ShardRouter(
            pool,
            tracer,
            scoring=scoring,
            top_k=top_k,
            max_inflight=max_inflight,
            deadline_seconds=deadline_seconds,
            hedge_after=hedge_after,
            closure_cache_size=0,
            result_cache_size=0,
            registry=registry,
        )
        start = clock()
        if rate > 0:
            loop = asyncio.get_running_loop()
            tasks = []
            for position, basket in enumerate(workload):
                delay = (start + position / rate) - clock()
                if delay > 0:
                    await asyncio.sleep(delay)
                tasks.append(loop.create_task(one(router, position, basket)))
            for task in tasks:
                await asyncio.wait_for(task, timeout=collect_timeout)
        else:
            for position, basket in enumerate(workload):
                await asyncio.wait_for(
                    one(router, position, basket), timeout=collect_timeout
                )
        wall = clock() - start
        await pool.close()
        return wall

    wall = asyncio.run(drive())
    stats = _phase_stats([value for value in latencies if value is not None], wall)
    stats["shards"] = shards
    stats["replication"] = replication
    stats["rate"] = rate
    stats["shed"] = shed
    stats["hedges"] = int(registry.value("shard.hedges"))
    stats["failovers"] = int(registry.value("shard.failovers"))
    stats["degraded"] = int(registry.value("shard.degraded"))
    stats["subqueries"] = int(registry.total("shard.subqueries"))
    return stats, [entry for entry in results if entry is not None]
