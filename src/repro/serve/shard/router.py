"""Query routing over a :class:`~repro.serve.shard.pool.ShardPool`.

The router is the tier's robustness policy, in one place:

* **admission control** — at most ``max_inflight`` requests in flight;
  past that (or when every replica of an involved partition has a full
  queue) the request is *shed* with
  :class:`~repro.errors.OverloadShedError` carrying ``retry_after`` —
  the HTTP front end renders it as ``429`` + ``Retry-After``.  Shedding
  protects the admitted requests' deadlines; queue depth is bounded by
  construction, never by luck;
* **deadline propagation** — every request gets an absolute
  integer-nanosecond deadline (``deadline_seconds`` from submission);
  sub-queries carry it into the worker queues, and a request whose
  deadline expires fails with
  :class:`~repro.errors.DeadlineExceededError` as a first-class error
  span (the phase accounting still reconciles exactly);
* **bounded hedged retry** — if a partition's primary has not answered
  within ``hedge_after`` seconds, *one* hedge is dispatched to the next
  replica and the first answer wins (duplicates are cancelled).  A
  failed replica (dead, saturated, timed out) fails over to the next,
  consulting each worker's circuit breaker before dispatch;
* **graceful degradation** — when every replica of a partition is down
  past the retry budget, the request completes as a *partial* answer:
  ``degraded: true`` with the unavailable partitions listed, matches
  merged from the shards that did answer.

Because shards return only matched rule ids and the router ranks the
merged candidate set with the engine's own
:func:`~repro.serve.engine.rank_matches`, a non-degraded sharded answer
is byte-identical to the unsharded engine's answer for the same basket
— the property the chaos harness (``repro-chaos serve``) proves under
injected kill/stall/drop faults.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import Iterable

from repro.errors import (
    DeadlineExceededError,
    OverloadShedError,
    PartitionUnavailableError,
    ReproError,
    ServingError,
    ShardSaturatedError,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.requests import RequestContext, RequestTracer
from repro.obs.sink import EventSink
from repro.serve.cache import MISSING, BoundedLRUCache
from repro.serve.engine import (
    SCORINGS,
    MatchedRule,
    QueryResult,
    Recommendation,
    basket_closure,
    rank_matches,
)
from repro.serve.shard.pool import ShardPool, ShardWorker


@dataclass(frozen=True)
class ShardedQueryResult:
    """A :class:`QueryResult` plus the shard tier's serving evidence.

    ``to_dict`` of a non-degraded result is byte-identical to the
    unsharded engine's rendering (no extra keys), so transcripts can be
    digest-compared across paths; a degraded result carries the marker
    and the partition sets.
    """

    inner: QueryResult
    degraded: bool
    served: tuple[int, ...]
    unavailable: tuple[int, ...]

    @property
    def basket(self) -> tuple[int, ...]:
        return self.inner.basket

    @property
    def scoring(self) -> str:
        return self.inner.scoring

    @property
    def version(self) -> str:
        return self.inner.version

    @property
    def matches(self) -> tuple[MatchedRule, ...]:
        return self.inner.matches

    @property
    def recommendations(self) -> tuple[Recommendation, ...]:
        return self.inner.recommendations

    def to_dict(self, snapshot=None) -> dict:
        record = self.inner.to_dict(snapshot)
        if self.degraded:
            record["degraded"] = True
            record["shards"] = {
                "served": list(self.served),
                "unavailable": list(self.unavailable),
            }
        return record


def _swallow(task: asyncio.Task) -> None:
    """Done-callback retrieving abandoned results/exceptions."""
    if not task.cancelled():
        task.exception()


class ShardRouter:
    """Routes queries across a shard pool (policy in module docstring).

    Construct over a started :class:`ShardPool`; all methods must run
    on the pool's event loop (the :class:`ShardedService` facade owns
    the loop-per-thread plumbing for synchronous callers).
    """

    def __init__(
        self,
        pool: ShardPool,
        tracer: RequestTracer,
        scoring: str = "confidence",
        top_k: int = 5,
        max_inflight: int = 256,
        deadline_seconds: float = 2.0,
        hedge_after: float = 0.05,
        subquery_timeout: float = 1.0,
        closure_cache_size: int = 1024,
        result_cache_size: int = 1024,
        registry: MetricsRegistry | None = None,
        sink: EventSink | None = None,
        injector=None,
    ):
        if scoring not in SCORINGS:
            raise ServingError(
                f"unknown scoring {scoring!r}; expected one of {', '.join(SCORINGS)}"
            )
        if top_k < 1:
            raise ServingError(f"top_k must be >= 1, got {top_k}")
        if max_inflight < 1:
            raise ServingError(f"max_inflight must be >= 1, got {max_inflight}")
        if deadline_seconds <= 0:
            raise ServingError(
                f"deadline_seconds must be > 0, got {deadline_seconds}"
            )
        if hedge_after <= 0:
            raise ServingError(f"hedge_after must be > 0, got {hedge_after}")
        if subquery_timeout <= 0:
            raise ServingError(
                f"subquery_timeout must be > 0, got {subquery_timeout}"
            )
        self.pool = pool
        self.snapshot = pool.snapshot
        self.tracer = tracer
        self.scoring = scoring
        self.top_k = top_k
        self.max_inflight = max_inflight
        self.deadline_seconds = deadline_seconds
        self.hedge_after = hedge_after
        self.subquery_timeout = subquery_timeout
        self.registry = registry if registry is not None else pool.registry
        self.sink = sink
        self.injector = injector
        self.closure_cache: BoundedLRUCache = BoundedLRUCache(closure_cache_size)
        self.result_cache: BoundedLRUCache = BoundedLRUCache(result_cache_size)
        self._inflight = 0
        self._seq = 0

    # ------------------------------------------------------------------
    @property
    def version(self) -> str:
        return self.snapshot.version

    def _now_ns(self) -> int:
        return self.tracer.now_ns()

    # ------------------------------------------------------------------
    async def query(
        self,
        basket: Iterable[int],
        top_k: int | None = None,
        scoring: str | None = None,
        request_id: int | None = None,
        ctx: RequestContext | None = None,
        deadline_seconds: float | None = None,
    ) -> ShardedQueryResult:
        """Serve one basket through the sharded tier (one traced request)."""
        if ctx is None:
            with self.tracer.request("shard", request_id=request_id) as ctx:
                return await self._admit(basket, top_k, scoring, ctx, deadline_seconds)
        return await self._admit(basket, top_k, scoring, ctx, deadline_seconds)

    async def _admit(
        self,
        basket: Iterable[int],
        top_k: int | None,
        scoring: str | None,
        ctx: RequestContext,
        deadline_seconds: float | None,
    ) -> ShardedQueryResult:
        registry = self.registry
        registry.counter("shard.requests").inc()
        if self._inflight >= self.max_inflight:
            ctx.shed = "inflight"
            registry.counter("shard.sheds", reason="inflight").inc()
            raise OverloadShedError(
                f"in-flight budget exhausted ({self.max_inflight}); retry later",
                retry_after=self.hedge_after,
            )
        seq = self._seq
        self._seq += 1
        self._apply_fault_events(seq)
        self._inflight += 1
        try:
            return await self._execute(basket, top_k, scoring, ctx, deadline_seconds, seq)
        finally:
            self._inflight -= 1

    def _apply_fault_events(self, seq: int) -> None:
        """Fault-injection transitions scheduled at this admission seq."""
        if self.injector is None:
            return
        for event, partition, replica in self.injector.admitted(seq):
            worker = self.pool.worker(partition, replica)
            if event == "kill":
                worker.kill()
                self.registry.counter("shard.kills").inc()
                if self.sink is not None:
                    # ``seq`` is the sink's reserved event counter; the
                    # admission sequence travels as ``admitted``.
                    self.sink.emit(
                        "shard-kill", admitted=seq, shard=worker.name
                    )
            elif event == "restart":
                worker.restart()
                self.registry.counter("shard.recoveries").inc()
                if self.sink is not None:
                    # The recovery marker: chaos proofs assert this
                    # event exists and the post-recovery answers match.
                    self.sink.emit(
                        "shard-recovery", admitted=seq, shard=worker.name
                    )

    # ------------------------------------------------------------------
    async def _execute(
        self,
        basket: Iterable[int],
        top_k: int | None,
        scoring: str | None,
        ctx: RequestContext,
        deadline_seconds: float | None,
        seq: int,
    ) -> ShardedQueryResult:
        scoring = self.scoring if scoring is None else scoring
        if scoring not in SCORINGS:
            raise ServingError(
                f"unknown scoring {scoring!r}; expected one of {', '.join(SCORINGS)}"
            )
        top_k = self.top_k if top_k is None else top_k
        if top_k < 1:
            raise ServingError(f"top_k must be >= 1, got {top_k}")
        canonical = tuple(sorted(set(basket)))
        if not canonical:
            raise ServingError("empty basket")
        budget = self.deadline_seconds if deadline_seconds is None else deadline_seconds
        deadline_ns = ctx.t_submit + int(round(budget * 1e9))
        tracer = self.tracer
        registry = self.registry
        ctx.mark_dequeued()
        exec_begin = tracer.now_ns()
        ctx.mark_query_begin()
        registry.counter("shard.result_lookups").inc()
        key = (canonical, top_k, scoring)
        cached = self.result_cache.get(key)
        if cached is not MISSING:
            registry.counter("shard.result_cache_hits").inc()
            ctx.mark_cache_hit(self.snapshot.version)
            ctx.mark_exec(exec_begin, tracer.now_ns())
            tracer.finish_request(ctx, cached)
            return cached
        registry.counter("shard.result_cache_misses").inc()
        ctx.mark_exec_begin()
        ctx.mark_lookup_begin()
        closure = self._closure(canonical)
        closure_mask = self.snapshot.closure_mask(closure)
        partitions = self.pool.shard_map.involved_partitions(self.snapshot, closure)
        ctx.mark_lookup_end()

        matched, unavailable, served = await self._fan_out(
            partitions, closure, closure_mask, deadline_ns, ctx, seq
        )
        matches, recommendations = rank_matches(
            self.snapshot, closure, closure_mask, matched, top_k, scoring
        )
        result = ShardedQueryResult(
            inner=QueryResult(
                basket=canonical,
                scoring=scoring,
                version=self.snapshot.version,
                matches=matches,
                recommendations=recommendations,
            ),
            degraded=bool(unavailable),
            served=served,
            unavailable=unavailable,
        )
        ctx.mark_query_end(self.snapshot.version)
        ctx.mark_exec(exec_begin, tracer.now_ns())
        if unavailable:
            ctx.degraded = True
            registry.counter("shard.degraded").inc()
        else:
            self.result_cache.put(key, result)
        tracer.finish_request(ctx, result)
        return result

    def _closure(self, canonical: tuple[int, ...]) -> tuple[int, ...]:
        self.registry.counter("shard.closure_lookups").inc()
        cached = self.closure_cache.get(canonical)
        if cached is not MISSING:
            return cached
        closure = basket_closure(self.snapshot, canonical)
        self.closure_cache.put(canonical, closure)
        return closure

    # ------------------------------------------------------------------
    async def _fan_out(
        self,
        partitions: tuple[int, ...],
        closure: tuple[int, ...],
        closure_mask: int,
        deadline_ns: int,
        ctx: RequestContext,
        seq: int,
    ) -> tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]]:
        """Query every involved partition; returns (matched ids,
        unavailable partitions, served partitions)."""
        if not partitions:
            return (), (), ()
        outcomes = await asyncio.gather(
            *(
                self._partition_query(
                    partition, closure, closure_mask, deadline_ns, ctx, seq
                )
                for partition in partitions
            ),
            return_exceptions=True,
        )
        matched: set[int] = set()
        unavailable: list[int] = []
        served: list[int] = []
        shed: ReproError | None = None
        fatal: BaseException | None = None
        for partition, outcome in zip(partitions, outcomes):
            if isinstance(outcome, tuple):
                matched.update(outcome)
                served.append(partition)
            elif isinstance(outcome, PartitionUnavailableError):
                unavailable.append(partition)
            elif isinstance(outcome, (OverloadShedError, ShardSaturatedError)):
                shed = outcome
            else:
                fatal = outcome
        if fatal is not None:
            raise fatal
        if shed is not None:
            ctx.shed = "queue_depth"
            self.registry.counter("shard.sheds", reason="queue_depth").inc()
            raise OverloadShedError(
                f"shard queues saturated ({shed}); retry later",
                retry_after=self.hedge_after,
            )
        return tuple(sorted(matched)), tuple(unavailable), tuple(served)

    async def _partition_query(
        self,
        partition: int,
        closure: tuple[int, ...],
        closure_mask: int,
        deadline_ns: int,
        ctx: RequestContext,
        seq: int,
    ) -> tuple[int, ...]:
        """One partition's sub-query with failover + bounded hedging."""
        replicas = self.pool.replicas(partition)
        queue = list(replicas)
        tasks: dict[asyncio.Task, ShardWorker] = {}
        saturated = 0
        failures = 0
        hedged = False
        loop = asyncio.get_running_loop()

        def dispatch() -> bool:
            while queue:
                worker = queue.pop(0)
                if not worker.breaker.allow():
                    continue
                remaining = (deadline_ns - self._now_ns()) / 1e9
                if remaining <= 0:
                    raise DeadlineExceededError(
                        f"deadline expired before partition {partition} answered"
                    )
                stall, drop = (0.0, False)
                if self.injector is not None:
                    stall, drop = self.injector.directives(
                        seq, partition, worker.replica
                    )
                timeout = min(self.subquery_timeout, remaining)
                task = loop.create_task(
                    worker.run(
                        closure,
                        closure_mask,
                        deadline_ns,
                        timeout,
                        stall=stall,
                        drop=drop,
                    )
                )
                tasks[task] = worker
                return True
            return False

        def cancel_pending() -> None:
            for task in tasks:
                task.add_done_callback(_swallow)
                task.cancel()

        try:
            if not dispatch():
                raise PartitionUnavailableError(
                    f"partition {partition}: every replica refused (breakers open)"
                )
            while True:
                remaining = (deadline_ns - self._now_ns()) / 1e9
                if remaining <= 0:
                    raise DeadlineExceededError(
                        f"deadline expired before partition {partition} answered"
                    )
                if not hedged and queue:
                    timeout = min(self.hedge_after, remaining)
                else:
                    timeout = remaining
                done, _pending = await asyncio.wait(
                    set(tasks), timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    if not hedged and queue:
                        # Primary slow past the hedge budget: race one
                        # replica against it, first answer wins.
                        hedged = True
                        if dispatch():
                            ctx.hedged += 1
                            self.registry.counter("shard.hedges").inc()
                        continue
                    continue
                for task in done:
                    worker = tasks.pop(task)
                    error = task.exception()
                    if error is None:
                        worker.breaker.record_success()
                        return task.result()
                    worker.breaker.record_failure()
                    if isinstance(error, ShardSaturatedError):
                        saturated += 1
                    else:
                        failures += 1
                if not tasks:
                    if dispatch():
                        ctx.failovers += 1
                        self.registry.counter("shard.failovers").inc()
                        continue
                    break
        finally:
            cancel_pending()
        if failures == 0 and saturated > 0:
            raise ShardSaturatedError(
                f"partition {partition}: all {len(replicas)} replica queues full"
            )
        raise PartitionUnavailableError(
            f"partition {partition}: {failures + saturated} replica attempts "
            "failed past the retry budget"
        )

    # ------------------------------------------------------------------
    def status(self) -> dict:
        """JSON-ready router + worker health (the ``/shards`` endpoint)."""
        return {
            "version": self.snapshot.version,
            "partitions": self.pool.shard_map.num_partitions,
            "replication": self.pool.replication,
            "shard_map_digest": self.pool.shard_map.digest,
            "inflight": self._inflight,
            "admitted": self._seq,
            "max_inflight": self.max_inflight,
            "queued": self.pool.total_queued(),
            "workers": self.pool.status(),
        }


# Re-exported for callers that treat ±inf scores (interest) uniformly.
INF = math.inf
