"""Shard health: circuit breaker with closed / open / half-open states.

One :class:`CircuitBreaker` guards one shard worker.  The router asks
:meth:`~CircuitBreaker.allow` before dispatching and reports the
outcome back; the breaker turns repeated failures into fast local
refusals so a dead worker costs a dictionary lookup instead of a
timeout per request.

State machine (deterministic — driven entirely by reported outcomes
and the injected integer-nanosecond clock, pinned under a fake clock by
``tests/test_serve_shard_robustness.py``):

* **closed** — traffic flows; ``failure_threshold`` *consecutive*
  failures trip it open (any success resets the streak);
* **open** — every ``allow`` refuses until ``cooldown_seconds`` elapse
  from the trip time, then the breaker half-opens;
* **half-open** — exactly one probe request is let through; its success
  closes the breaker, its failure re-opens it (restarting the
  cooldown).

``reset`` force-closes the breaker — the hook for an external health
signal (the fault injector's restart schedule models a probe that saw
the worker come back).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ShardError

#: Breaker states, in trip order.
BREAKER_STATES: tuple[str, ...] = ("closed", "open", "half_open")


class CircuitBreaker:
    """Per-worker failure gate (see module docstring for the states)."""

    __slots__ = (
        "name", "failure_threshold", "cooldown_ns", "clock_ns",
        "state", "failures", "opened_at", "probes_inflight", "transitions",
    )

    def __init__(
        self,
        clock_ns: Callable[[], int],
        name: str = "",
        failure_threshold: int = 3,
        cooldown_seconds: float = 0.25,
    ):
        if failure_threshold < 1:
            raise ShardError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_seconds <= 0:
            raise ShardError(
                f"cooldown_seconds must be > 0, got {cooldown_seconds}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown_ns = int(round(cooldown_seconds * 1e9))
        self.clock_ns = clock_ns
        self.state = "closed"
        self.failures = 0
        self.opened_at: int | None = None
        self.probes_inflight = 0
        #: (from_state, to_state) transition log, for tests + /shards.
        self.transitions: list[tuple[str, str]] = []

    # ------------------------------------------------------------------
    def _move(self, state: str) -> None:
        if state != self.state:
            self.transitions.append((self.state, state))
            self.state = state

    def allow(self) -> bool:
        """May a request be dispatched to this worker right now?"""
        if self.state == "closed":
            return True
        if self.state == "open":
            opened = self.opened_at if self.opened_at is not None else 0
            if self.clock_ns() - opened < self.cooldown_ns:
                return False
            self._move("half_open")
            self.probes_inflight = 0
        # half-open: exactly one probe at a time.
        if self.probes_inflight >= 1:
            return False
        self.probes_inflight += 1
        return True

    def record_success(self) -> None:
        """A dispatched request completed: close and reset."""
        self._move("closed")
        self.failures = 0
        self.opened_at = None
        self.probes_inflight = 0

    def record_failure(self) -> None:
        """A dispatched request failed: trip when the budget is spent."""
        self.failures += 1
        if self.state == "half_open" or self.failures >= self.failure_threshold:
            self._move("open")
            self.opened_at = self.clock_ns()
            self.probes_inflight = 0

    def reset(self) -> None:
        """External health signal: force-close (restart observed)."""
        self.record_success()

    def status(self) -> dict:
        """JSON-ready health rendering (the ``/shards`` endpoint)."""
        return {
            "name": self.name,
            "state": self.state,
            "failures": self.failures,
            "transitions": len(self.transitions),
        }

    def __repr__(self) -> str:
        return f"CircuitBreaker({self.name or '?'}, {self.state})"
