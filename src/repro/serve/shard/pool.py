"""Async shard workers: bounded queues, backpressure, kill/stall hooks.

One :class:`ShardWorker` serves one ``(partition, replica)`` cell: a
bounded :class:`asyncio.Queue` in front of a single drain task that
matches queries against the partition's :class:`ShardIndex`.  The queue
bound *is* the backpressure mechanism — submission never blocks, a full
queue raises :class:`~repro.errors.ShardSaturatedError` immediately and
the router decides whether to fail over or shed.

A :class:`ShardPool` is the (partitions × replication) grid of workers
plus their circuit breakers; the router owns routing policy, the pool
owns worker lifecycle.

Fault surface (driven by :class:`repro.faults.serve.ShardFaultInjector`
through the router): ``kill`` makes a worker refuse every request with
:class:`~repro.errors.ShardDownError` until ``restart``; per-dispatch
``stall``/``drop`` directives inject slowness and response loss — a
stalled dispatch sleeps on the request path *before* enqueueing (so a
winning hedge cancels the sleep and leaves no backlog behind), a
dropped item computes and then never resolves its future (the response
is lost, the caller's hedge/timeout machinery must recover).

This module is the sanctioned home of untimed queue awaits (lint rule
RL012): the drain loop's ``queue.get`` is the *server* side of the
bound — it must park indefinitely between requests.  Everything
client-side (router, service) awaits with explicit timeouts.
"""

from __future__ import annotations

import asyncio
from typing import Callable

from repro.errors import ShardDownError, ShardError, ShardSaturatedError
from repro.obs.registry import MetricsRegistry
from repro.serve.shard.health import CircuitBreaker
from repro.serve.shard.partition import ShardIndex, ShardMap, build_shard_indexes
from repro.serve.snapshot import RuleSnapshot

#: Queue sentinel that stops a worker's drain task.
_CLOSE = object()


class ShardWorker:
    """One shard replica: bounded queue + single async drain task."""

    __slots__ = (
        "partition", "replica", "name", "index", "queue", "breaker",
        "clock_ns", "registry", "killed", "served", "_task",
    )

    def __init__(
        self,
        partition: int,
        replica: int,
        index: ShardIndex,
        queue_depth: int,
        clock_ns: Callable[[], int],
        breaker: CircuitBreaker,
        registry: MetricsRegistry,
    ):
        if queue_depth < 1:
            raise ShardError(f"queue_depth must be >= 1, got {queue_depth}")
        self.partition = partition
        self.replica = replica
        self.name = f"shard{partition}r{replica}"
        self.index = index
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_depth)
        self.breaker = breaker
        self.clock_ns = clock_ns
        self.registry = registry
        self.killed = False
        self.served = 0
        self._task: asyncio.Task | None = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the drain task (must run inside the serving loop)."""
        if self._task is None:
            self._task = asyncio.get_running_loop().create_task(
                self._drain(), name=f"drain-{self.name}"
            )

    async def close(self) -> None:
        """Stop the drain task after the queued tail is served."""
        if self._task is None:
            return
        await self.queue.put(_CLOSE)
        await self._task
        self._task = None

    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Fault hook: refuse everything until :meth:`restart`."""
        self.killed = True

    def restart(self) -> None:
        """Fault hook: come back healthy (breaker force-closed)."""
        self.killed = False
        self.breaker.reset()

    # ------------------------------------------------------------------
    async def _drain(self) -> None:
        """Serve queued items forever (until the close sentinel)."""
        queue = self.queue
        registry = self.registry
        while True:
            item = await queue.get()
            if item is _CLOSE:
                break
            future, closure, closure_mask, deadline_ns, drop = item
            if future.cancelled():
                continue
            if self.killed:
                future.set_exception(
                    ShardDownError(f"{self.name} is down")
                )
                continue
            if deadline_ns is not None and self.clock_ns() > deadline_ns:
                future.set_exception(
                    ShardDownError(
                        f"{self.name}: deadline expired in queue"
                    )
                )
                continue
            matched = self.index.match(closure, closure_mask)
            self.served += 1
            registry.counter("shard.subqueries", shard=self.name).inc()
            if drop:
                # Injected response loss: the answer was computed but
                # never leaves the worker; the router's hedge recovers.
                registry.counter("shard.dropped_responses").inc()
                continue
            if not future.done():
                future.set_result(matched)

    # ------------------------------------------------------------------
    async def run(
        self,
        closure: tuple[int, ...],
        closure_mask: int,
        deadline_ns: int | None,
        timeout: float,
        stall: float = 0.0,
        drop: bool = False,
    ) -> tuple[int, ...]:
        """Enqueue one sub-query and await its answer (bounded).

        Raises :class:`ShardDownError` when killed,
        :class:`ShardSaturatedError` when the queue is full, and
        :class:`asyncio.TimeoutError` when no answer arrives within
        ``timeout`` (a dropped response or a stall past the budget).
        """
        if stall > 0:
            # Injected dispatch-path slowness; cancellable with this
            # sub-query's task, so a hedged winner leaves no backlog.
            await asyncio.sleep(stall)
        if self.killed:
            raise ShardDownError(f"{self.name} is down")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        try:
            self.queue.put_nowait(
                (future, closure, closure_mask, deadline_ns, drop)
            )
        except asyncio.QueueFull:
            raise ShardSaturatedError(
                f"{self.name} queue full ({self.queue.maxsize} deep)"
            ) from None
        return await asyncio.wait_for(future, timeout)

    def __repr__(self) -> str:
        return f"ShardWorker({self.name}, killed={self.killed})"


class ShardPool:
    """The (partition × replica) worker grid over one snapshot."""

    __slots__ = (
        "snapshot", "shard_map", "replication", "queue_depth",
        "registry", "clock_ns", "indexes", "workers",
    )

    def __init__(
        self,
        snapshot: RuleSnapshot,
        shard_map: ShardMap,
        replication: int = 2,
        queue_depth: int = 64,
        registry: MetricsRegistry | None = None,
        clock_ns: Callable[[], int] | None = None,
        failure_threshold: int = 3,
        cooldown_seconds: float = 0.25,
    ):
        if replication < 1:
            raise ShardError(f"replication must be >= 1, got {replication}")
        if shard_map.snapshot_version != snapshot.version:
            raise ShardError(
                f"shard map was built for snapshot "
                f"{shard_map.snapshot_version[:12]}, serving "
                f"{snapshot.version[:12]}"
            )
        if clock_ns is None:
            raise ShardError("ShardPool needs an explicit clock_ns")
        self.snapshot = snapshot
        self.shard_map = shard_map
        self.replication = replication
        self.queue_depth = queue_depth
        self.registry = registry if registry is not None else MetricsRegistry()
        self.clock_ns = clock_ns
        self.indexes = build_shard_indexes(snapshot, shard_map)
        self.workers: dict[tuple[int, int], ShardWorker] = {}
        for partition in range(shard_map.num_partitions):
            for replica in range(replication):
                breaker = CircuitBreaker(
                    clock_ns,
                    name=f"shard{partition}r{replica}",
                    failure_threshold=failure_threshold,
                    cooldown_seconds=cooldown_seconds,
                )
                self.workers[(partition, replica)] = ShardWorker(
                    partition,
                    replica,
                    self.indexes[partition],
                    queue_depth,
                    clock_ns,
                    breaker,
                    self.registry,
                )

    # ------------------------------------------------------------------
    def start(self) -> None:
        for key in sorted(self.workers):
            self.workers[key].start()

    async def close(self) -> None:
        for key in sorted(self.workers):
            await self.workers[key].close()

    # ------------------------------------------------------------------
    def replicas(self, partition: int) -> list[ShardWorker]:
        """The partition's workers, replica order (primary first)."""
        return [
            self.workers[(partition, replica)]
            for replica in range(self.replication)
        ]

    def worker(self, partition: int, replica: int) -> ShardWorker:
        key = (partition, replica)
        if key not in self.workers:
            raise ShardError(
                f"no worker for partition {partition} replica {replica}"
            )
        return self.workers[key]

    def total_queued(self) -> int:
        """Items currently queued across every worker."""
        return sum(
            self.workers[key].queue.qsize() for key in sorted(self.workers)
        )

    def status(self) -> list[dict]:
        """JSON-ready per-worker health (the ``/shards`` endpoint)."""
        rows = []
        for key in sorted(self.workers):
            worker = self.workers[key]
            rows.append(
                {
                    "partition": worker.partition,
                    "replica": worker.replica,
                    "killed": worker.killed,
                    "queued": worker.queue.qsize(),
                    "served": worker.served,
                    "breaker": worker.breaker.status(),
                    "rules": worker.index.num_rules,
                }
            )
        return rows
