"""Request batching, worker pool, and atomic snapshot hot-swap.

:class:`ServeService` is the online front door.  It owns the current
:class:`~repro.serve.engine.QueryEngine` behind a lock and offers two
request paths:

* **direct** (:meth:`ServeService.query_direct`) — one engine call per
  request; the unbatched baseline the load generator benchmarks
  against;
* **batched** (:meth:`ServeService.submit` / :meth:`ServeService.query`)
  — requests land in a queue; worker threads drain up to
  ``batch_max`` of them at a time, group identical ``(basket, top_k,
  scoring)`` keys, execute each distinct query **once**, and fan the
  result out to every requester.  The per-batch engine reference is
  captured under the same lock that admits the batch, so one batch is
  served end-to-end by one snapshot version.

Hot swap (:meth:`ServeService.swap`) atomically replaces the engine —
and with it both LRU caches, which belong to the engine — under live
traffic.  In-flight batches keep the engine they captured; new batches
see the new one.  A query can therefore never observe a *torn* result:
every :class:`~repro.serve.engine.QueryResult` is computed against
exactly one immutable snapshot and carries that snapshot's version
(pinned by ``tests/test_serve_determinism.py``).

Instrumentation: ``serve.*`` counters and histograms land in the shared
:class:`~repro.obs.registry.MetricsRegistry`; when an event sink is
attached, every batch emits one ``serve-batch`` span event listing the
query ids it covered — the coverage is a partition (each query id in
exactly one batch span), which ``tests/test_serve_batch.py`` asserts.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Iterable

from repro.errors import ReproError, ServingError, error_label
from repro.obs.registry import MetricsRegistry
from repro.obs.requests import RequestContext, RequestTracer
from repro.obs.sink import EventSink
from repro.serve.engine import QueryEngine, QueryResult
from repro.serve.snapshot import RuleSnapshot

#: Histogram buckets for batch sizes (requests per drained batch).
BATCH_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


class PendingQuery:
    """A submitted query: blocks on :meth:`result` until served.

    Carries its request trace context through the queue — the batching
    worker stamps queue-wait/execution boundaries on it and finishes it
    *before* resolving the waiter, so a released caller always observes
    a closed request record.
    """

    __slots__ = ("query_id", "key", "ctx", "_event", "_result", "_error")

    def __init__(self, query_id: int, key: tuple, ctx: RequestContext | None = None):
        self.query_id = query_id
        self.key = key
        self.ctx = ctx
        self._event = threading.Event()
        self._result: QueryResult | None = None
        self._error: ReproError | None = None

    def resolve(self, result: QueryResult) -> None:
        self._result = result
        self._event.set()

    def fail(self, error: ReproError) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: float | None = None) -> QueryResult:
        if not self._event.wait(timeout):
            raise ServingError(f"query {self.query_id} timed out")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


class ServeService:
    """Thread-safe serving front end with micro-batching and hot swap.

    Parameters
    ----------
    snapshot:
        Initial snapshot to serve.
    scoring / top_k / closure_cache_size / result_cache_size:
        Engine construction parameters (also applied to every swapped-in
        engine).
    batch_max:
        Maximum requests coalesced into one batch.
    workers:
        Batch worker threads.  ``0`` starts none — only the direct path
        works, which the load generator uses for the unbatched baseline.
    registry:
        Shared metrics registry (a private one by default).
    sink:
        Optional JSONL event sink receiving ``serve-batch`` /
        ``serve-swap`` span events.
    clock:
        Injectable monotonic clock (``time.perf_counter`` by default;
        tests inject a fake for deterministic span durations).
    tracer:
        Request tracer producing per-request span trees and ``slo.*``
        series.  A private one (sharing the service's registry, sink
        and clock) is built when not provided, so every request is
        traced either way.
    """

    def __init__(
        self,
        snapshot: RuleSnapshot,
        scoring: str = "confidence",
        top_k: int = 5,
        closure_cache_size: int = 1024,
        result_cache_size: int = 1024,
        batch_max: int = 32,
        workers: int = 2,
        registry: MetricsRegistry | None = None,
        sink: EventSink | None = None,
        clock: Callable[[], float] = time.perf_counter,
        tracer: RequestTracer | None = None,
    ):
        if batch_max < 1:
            raise ServingError(f"batch_max must be >= 1, got {batch_max}")
        if workers < 0:
            raise ServingError(f"workers must be >= 0, got {workers}")
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink
        self.tracer = (
            tracer
            if tracer is not None
            else RequestTracer(sink=sink, registry=self.registry, clock=clock)
        )
        self.batch_max = batch_max
        self._clock = clock
        self._engine_kwargs = {
            "scoring": scoring,
            "top_k": top_k,
            "closure_cache_size": closure_cache_size,
            "result_cache_size": result_cache_size,
        }
        self._lock = threading.Lock()
        self._queue_ready = threading.Condition(self._lock)
        # Engine internals (LRU caches), the metrics registry and the
        # event sink are single-threaded structures; one execution lock
        # serializes query evaluation so counters reconcile exactly.
        # Workers still pipeline: batch assembly and result fan-out
        # overlap with the next batch's queueing.
        self._exec_lock = threading.Lock()
        self._pending: deque[PendingQuery] = deque()
        self._engine = QueryEngine(
            snapshot, registry=self.registry, **self._engine_kwargs
        )
        self._closed = False
        self._next_query_id = 0
        self._next_batch_id = 0
        self._workers = [
            threading.Thread(
                target=self._drain_loop, name=f"serve-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def version(self) -> str:
        with self._lock:
            return self._engine.snapshot.version

    @property
    def engine(self) -> QueryEngine:
        """The current engine (atomically read; treat as immutable)."""
        with self._lock:
            return self._engine

    @property
    def snapshot(self):
        """The current snapshot (the HTTP front end's render source)."""
        with self._lock:
            return self._engine.snapshot

    # ------------------------------------------------------------------
    # Hot swap
    # ------------------------------------------------------------------
    def swap(self, snapshot: RuleSnapshot) -> str:
        """Atomically serve ``snapshot`` from now on; returns its version.

        In-flight batches finish on the engine they captured; both LRU
        caches are replaced with the engine, so no cached result can
        outlive its snapshot.
        """
        engine = QueryEngine(snapshot, registry=self.registry, **self._engine_kwargs)
        with self._lock:
            if self._closed:
                raise ServingError("cannot swap a closed service")
            previous = self._engine.snapshot.version
            self._engine = engine
        with self._exec_lock:
            self.registry.counter("serve.swaps").inc()
            if self.sink is not None:
                self.sink.emit(
                    "serve-swap", previous=previous, version=snapshot.version
                )
        return snapshot.version

    # ------------------------------------------------------------------
    # Direct (unbatched) path
    # ------------------------------------------------------------------
    def query_direct(
        self,
        basket: Iterable[int],
        top_k: int | None = None,
        scoring: str | None = None,
        request_id: int | None = None,
    ) -> QueryResult:
        """Serve one query immediately on the caller's thread.

        The whole call is one traced request: queue wait is the time to
        acquire the execution lock, batch_exec is the engine call, and
        any failure closes the request as an error span.
        """
        tracer = self.tracer
        with tracer.request("direct", request_id=request_id) as ctx:
            with self._lock:
                if self._closed:
                    raise ServingError("service is closed")
                engine = self._engine
            with self._exec_lock:
                ctx.mark_dequeued()
                self.registry.counter("serve.requests", path="direct").inc()
                exec_begin = tracer.now_ns()
                result = engine.query(
                    basket, top_k=top_k, scoring=scoring, obs=ctx
                )
                ctx.mark_exec(exec_begin, tracer.now_ns())
                tracer.finish_request(ctx, result)
                return result

    # ------------------------------------------------------------------
    # Batched path
    # ------------------------------------------------------------------
    def submit(
        self,
        basket: Iterable[int],
        top_k: int | None = None,
        scoring: str | None = None,
        request_id: int | None = None,
        ctx: RequestContext | None = None,
    ) -> PendingQuery:
        """Enqueue one query for batched execution (non-blocking).

        ``ctx`` propagates an already-open trace context (the HTTP
        handler's) into the executor; otherwise a ``batched``-path
        context is opened here.
        """
        canonical = tuple(sorted(set(basket)))
        if ctx is None:
            # repro-lint: disable=RL010 — the context rides the queue;
            # the draining worker closes it before resolving the waiter,
            # and a rejected submission is failed in the except arm
            # below.
            ctx = self.tracer.begin_request("batched", request_id=request_id)
        try:
            with self._lock:
                if self._closed:
                    raise ServingError("service is closed")
                if not self._workers:
                    raise ServingError(
                        "service was started with workers=0; use query_direct"
                    )
                pending = PendingQuery(
                    self._next_query_id, (canonical, top_k, scoring), ctx=ctx
                )
                self._next_query_id += 1
                self._pending.append(pending)
                self.registry.counter("serve.requests", path="batched").inc()
                self._queue_ready.notify()
        except ReproError as error:
            self.tracer.fail_request(ctx, error_label(error))
            raise
        return pending

    def query(
        self,
        basket: Iterable[int],
        top_k: int | None = None,
        scoring: str | None = None,
        timeout: float | None = 30.0,
        request_id: int | None = None,
        ctx: RequestContext | None = None,
    ) -> QueryResult:
        """Batched query, blocking until the result is available."""
        return self.submit(
            basket, top_k=top_k, scoring=scoring, request_id=request_id, ctx=ctx
        ).result(timeout)

    # ------------------------------------------------------------------
    def _drain_loop(self) -> None:
        while True:
            with self._queue_ready:
                while not self._pending and not self._closed:
                    self._queue_ready.wait()
                if not self._pending and self._closed:
                    return
                batch = [
                    self._pending.popleft()
                    for _ in range(min(self.batch_max, len(self._pending)))
                ]
                engine = self._engine
                batch_id = self._next_batch_id
                self._next_batch_id += 1
            self._run_batch(batch_id, batch, engine)

    def _run_batch(
        self, batch_id: int, batch: list[PendingQuery], engine: QueryEngine
    ) -> None:
        started = self._clock()
        tracer = self.tracer
        admitted = tracer.now_ns()
        groups: dict[tuple, list[PendingQuery]] = {}
        for pending in batch:
            if pending.ctx is not None:
                pending.ctx.mark_dequeued(batch_id, at=admitted)
            groups.setdefault(pending.key, []).append(pending)
        with self._exec_lock:
            for key in sorted(groups, key=repr):
                canonical, top_k, scoring = key
                waiting = groups[key]
                # The group's first submitter observes the (single)
                # engine call; the other members adopt its stamps —
                # deduplicated requests share one execution interval.
                leader = waiting[0].ctx
                exec_begin = tracer.now_ns()
                try:
                    result = engine.query(
                        canonical, top_k=top_k, scoring=scoring, obs=leader
                    )
                except ReproError as error:
                    exec_end = tracer.now_ns()
                    kind = error_label(error)
                    for pending in waiting:
                        ctx = pending.ctx
                        if ctx is not None:
                            if ctx is not leader and leader is not None:
                                ctx.adopt_execution(leader)
                            ctx.mark_exec(exec_begin, exec_end)
                            tracer.fail_request(ctx, kind)
                        pending.fail(error)
                    continue
                exec_end = tracer.now_ns()
                for pending in waiting:
                    ctx = pending.ctx
                    if ctx is not None:
                        if ctx is not leader and leader is not None:
                            ctx.adopt_execution(leader)
                        ctx.mark_exec(exec_begin, exec_end)
                        # Finish before resolving: a released waiter must
                        # never race its own unfinished trace record.
                        tracer.finish_request(ctx, result)
                    pending.resolve(result)
            duration = self._clock() - started
            registry = self.registry
            registry.counter("serve.batches").inc()
            registry.counter("serve.batched_queries").inc(len(batch))
            registry.counter("serve.deduped_queries").inc(len(batch) - len(groups))
            registry.histogram("serve.batch_size", buckets=BATCH_BUCKETS).observe(
                len(batch)
            )
            registry.histogram(
                "serve.batch_distinct", buckets=BATCH_BUCKETS
            ).observe(len(groups))
            if self.sink is not None:
                self.sink.emit(
                    "serve-batch",
                    batch=batch_id,
                    queries=[pending.query_id for pending in batch],
                    distinct=len(groups),
                    version=engine.snapshot.version,
                    dur=duration,
                )

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain outstanding requests, then stop the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._queue_ready.notify_all()
        for worker in self._workers:
            worker.join()

    def __enter__(self) -> "ServeService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
