"""Query engine — match a basket against a snapshot, rank consequents.

Matching semantics
------------------
A basket (any iterable of item ids, typically leaves) is first expanded
to its **ancestor closure** using the snapshot's precomputed closure
keys.  A rule matches when its whole antecedent is contained in that
closure — so ``{Outerwear} => {Hiking Boots}`` fires for a basket
holding ``Jackets``, exactly the cross-level matching the paper mines
for.  Candidates come from the snapshot's antecedent inverted index
(union of the closure items' postings) and are confirmed with one
bitmask subset test per candidate — no per-query taxonomy walks, no
per-candidate set algebra.

Recommendations are the consequent items of matching rules that the
basket does not already imply (i.e. items outside the closure), each
scored by the best-scoring rule that proposes it.

Determinism contract: scores tie-break on ``(antecedent, consequent)``
and every emitted collection is sorted, so for a given snapshot version
the result of a query is **byte-identical** across processes and
``PYTHONHASHSEED`` values (pinned by ``tests/test_serve_determinism.py``).

Both hot-path caches — basket→closure and whole-query results — are
bounded LRUs (:class:`~repro.serve.cache.BoundedLRUCache`); their
hit/miss tallies feed the ``serve.*`` metrics and reconcile exactly
with the lookup counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.errors import ServingError
from repro.obs.registry import MetricsRegistry
from repro.serve.cache import MISSING, BoundedLRUCache
from repro.serve.snapshot import RuleSnapshot, ServedRule

#: Rule score selectors. ``interest`` treats ``None`` (no predicting
#: ancestor rule) as +inf — nothing explains the rule, rank it first.
SCORINGS: tuple[str, ...] = ("confidence", "support", "interest")

#: Histogram buckets for per-query match/recommendation counts.
COUNT_BUCKETS: tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512)


def rule_score(rule: ServedRule, scoring: str) -> float:
    if scoring == "confidence":
        return rule.confidence
    if scoring == "support":
        return rule.support
    if scoring == "interest":
        return math.inf if rule.interest is None else rule.interest
    raise ServingError(
        f"unknown scoring {scoring!r}; expected one of {', '.join(SCORINGS)}"
    )


@dataclass(frozen=True)
class MatchedRule:
    """One matching rule with its score under the query's scoring."""

    rule_id: int
    score: float

    def to_record(self, snapshot: RuleSnapshot) -> dict:
        rule = snapshot.rules[self.rule_id]
        return {
            "rule": self.rule_id,
            "ant": list(rule.antecedent),
            "cons": list(rule.consequent),
            "score": None if math.isinf(self.score) else self.score,
        }


@dataclass(frozen=True)
class Recommendation:
    """One recommended item, backed by its best-scoring rule."""

    item: int
    score: float
    rule_id: int


@dataclass(frozen=True)
class QueryResult:
    """Everything one query produced, tagged with the snapshot version.

    The version tag is load-bearing for hot swaps: a result is computed
    against exactly one immutable snapshot, so ``version`` names the
    complete provenance of every match and recommendation in it.
    """

    basket: tuple[int, ...]
    scoring: str
    version: str
    matches: tuple[MatchedRule, ...]
    recommendations: tuple[Recommendation, ...]

    def to_dict(self, snapshot: RuleSnapshot | None = None) -> dict:
        """JSON-ready rendering (byte-stable through sorted dumps)."""
        record = {
            "basket": list(self.basket),
            "scoring": self.scoring,
            "version": self.version,
            "matches": [
                {
                    "rule": match.rule_id,
                    "score": None if math.isinf(match.score) else match.score,
                }
                if snapshot is None
                else match.to_record(snapshot)
                for match in self.matches
            ],
            "recommendations": [
                {
                    "item": rec.item,
                    "score": None if math.isinf(rec.score) else rec.score,
                    "rule": rec.rule_id,
                }
                for rec in self.recommendations
            ],
        }
        return record


def rank_matches(
    snapshot: RuleSnapshot,
    closure: tuple[int, ...],
    closure_mask: int,
    candidate_ids: Iterable[int],
    top_k: int,
    scoring: str,
) -> tuple[tuple[MatchedRule, ...], tuple[Recommendation, ...]]:
    """Confirm + rank candidate rules against one closure.

    The single source of truth for result ordering: the bitmask subset
    test, the ``(-score, -confidence, -support, antecedent, consequent)``
    sort, and the best-rule-per-item recommendation cut all live here,
    shared by :meth:`QueryEngine._execute` and the shard router
    (:mod:`repro.serve.shard.router`) — which is what makes sharded
    answers provably byte-identical to unsharded ones.
    """
    masks = snapshot.rule_masks
    rules = snapshot.rules
    scored: list[tuple[float, ServedRule]] = []
    for rule_id in sorted(set(candidate_ids)):
        if masks[rule_id] & ~closure_mask:
            continue
        rule = rules[rule_id]
        scored.append((rule_score(rule, scoring), rule))
    scored.sort(
        key=lambda pair: (
            -pair[0],
            -pair[1].confidence,
            -pair[1].support,
            pair[1].antecedent,
            pair[1].consequent,
        )
    )
    matches = tuple(
        MatchedRule(rule_id=rule.rule_id, score=score) for score, rule in scored
    )

    in_closure = set(closure)
    best: dict[int, Recommendation] = {}
    for score, rule in scored:
        for item in rule.consequent:
            if item in in_closure or item in best:
                continue
            best[item] = Recommendation(item=item, score=score, rule_id=rule.rule_id)
    recommendations = tuple(
        sorted(
            best.values(),
            key=lambda rec: (-rec.score, rec.item),
        )[:top_k]
    )
    return matches, recommendations


def basket_closure(snapshot: RuleSnapshot, canonical: tuple[int, ...]) -> tuple[int, ...]:
    """Ancestor closure of a canonical basket (uncached form).

    Same expansion :meth:`QueryEngine.closure` performs, exposed for
    callers that manage their own cache (the shard router).
    """
    closures = snapshot.closures
    expanded: set[int] = set()
    for item in canonical:
        expanded.update(closures.get(item, (item,)))
    return tuple(sorted(expanded))


class QueryEngine:
    """Serve queries against one immutable :class:`RuleSnapshot`.

    One engine wraps one snapshot; swapping snapshots means swapping
    engines (see :class:`repro.serve.batch.ServeService`), which also
    swaps both caches — a cache can therefore never return a result
    computed against a different snapshot version.

    Parameters
    ----------
    snapshot:
        The compiled rule index to serve.
    scoring / top_k:
        Default scoring signal and recommendation cut for queries that
        do not override them.
    closure_cache_size / result_cache_size:
        Bounds of the two LRU caches (0 disables retention; lookups are
        still counted so the metrics reconcile either way).
    registry:
        Metrics registry receiving the ``serve.*`` series (a private
        one by default).
    """

    def __init__(
        self,
        snapshot: RuleSnapshot,
        scoring: str = "confidence",
        top_k: int = 5,
        closure_cache_size: int = 1024,
        result_cache_size: int = 1024,
        registry: MetricsRegistry | None = None,
    ):
        if scoring not in SCORINGS:
            raise ServingError(
                f"unknown scoring {scoring!r}; expected one of {', '.join(SCORINGS)}"
            )
        if top_k < 1:
            raise ServingError(f"top_k must be >= 1, got {top_k}")
        self.snapshot = snapshot
        self.scoring = scoring
        self.top_k = top_k
        self.registry = registry if registry is not None else MetricsRegistry()
        self.closure_cache: BoundedLRUCache = BoundedLRUCache(closure_cache_size)
        self.result_cache: BoundedLRUCache = BoundedLRUCache(result_cache_size)

    # ------------------------------------------------------------------
    def canonical_basket(self, basket: Iterable[int]) -> tuple[int, ...]:
        """Sorted, deduplicated basket (the cache/result key form)."""
        canonical = tuple(sorted(set(basket)))
        if not canonical:
            raise ServingError("empty basket")
        return canonical

    def closure(self, basket: tuple[int, ...]) -> tuple[int, ...]:
        """Ancestor closure of a canonical basket (sorted, cached)."""
        registry = self.registry
        registry.counter("serve.closure_lookups").inc()
        cached = self.closure_cache.get(basket)
        if cached is not MISSING:
            registry.counter("serve.closure_cache_hits").inc()
            return cached
        registry.counter("serve.closure_cache_misses").inc()
        closures = self.snapshot.closures
        expanded: set[int] = set()
        for item in basket:
            expanded.update(closures.get(item, (item,)))
        closure = tuple(sorted(expanded))
        self.closure_cache.put(basket, closure)
        return closure

    # ------------------------------------------------------------------
    def query(
        self,
        basket: Iterable[int],
        top_k: int | None = None,
        scoring: str | None = None,
        obs=None,
    ) -> QueryResult:
        """Match one basket; returns matches + ranked recommendations.

        ``obs`` is an optional query observation (duck-typed against
        :class:`repro.obs.requests.RequestContext`): the engine stamps
        the cache outcome and the snapshot-lookup interval on it so the
        request tracer can render ``cache``/``engine``/``snapshot_lookup``
        sub-spans without the engine knowing about request identity.
        """
        scoring = self.scoring if scoring is None else scoring
        if scoring not in SCORINGS:
            raise ServingError(
                f"unknown scoring {scoring!r}; expected one of {', '.join(SCORINGS)}"
            )
        top_k = self.top_k if top_k is None else top_k
        if top_k < 1:
            raise ServingError(f"top_k must be >= 1, got {top_k}")
        canonical = self.canonical_basket(basket)
        registry = self.registry
        registry.counter("serve.queries").inc()
        registry.counter("serve.result_lookups").inc()
        if obs is not None:
            obs.mark_query_begin()
        key = (canonical, top_k, scoring)
        cached = self.result_cache.get(key)
        if cached is not MISSING:
            registry.counter("serve.result_cache_hits").inc()
            if obs is not None:
                obs.mark_cache_hit(self.snapshot.version)
            return cached
        registry.counter("serve.result_cache_misses").inc()
        if obs is not None:
            obs.mark_exec_begin()
        result = self._execute(canonical, top_k, scoring, obs=obs)
        self.result_cache.put(key, result)
        if obs is not None:
            obs.mark_query_end(self.snapshot.version)
        return result

    def _execute(
        self, canonical: tuple[int, ...], top_k: int, scoring: str, obs=None
    ) -> QueryResult:
        snapshot = self.snapshot
        if obs is not None:
            obs.mark_lookup_begin()
        closure = self.closure(canonical)
        closure_mask = snapshot.closure_mask(closure)
        index = snapshot.index
        candidate_ids: set[int] = set()
        for item in closure:
            postings = index.get(item)
            if postings:
                candidate_ids.update(postings)
        if obs is not None:
            obs.mark_lookup_end()
        self.registry.counter("serve.candidates").inc(len(candidate_ids))

        matches, recommendations = rank_matches(
            snapshot, closure, closure_mask, candidate_ids, top_k, scoring
        )
        registry = self.registry
        registry.histogram("serve.match_count", buckets=COUNT_BUCKETS).observe(
            len(matches)
        )
        registry.histogram(
            "serve.recommendation_count", buckets=COUNT_BUCKETS
        ).observe(len(recommendations))
        return QueryResult(
            basket=canonical,
            scoring=scoring,
            version=snapshot.version,
            matches=matches,
            recommendations=recommendations,
        )
