"""Bounded LRU cache with explicit hit/miss accounting.

The serving layer's determinism contract forbids unbounded growth (lint
rule RL009 flags ``lru_cache`` without a ``maxsize`` and module-level
dict caches) and its metrics contract requires that every lookup is
countable: ``hits + misses == lookups`` must reconcile exactly in the
``serve.*`` metrics (``tests/test_serve_batch.py``).  A tiny explicit
class keeps both properties visible instead of buried in a decorator.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, Hashable, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")

_MISSING = object()


class BoundedLRUCache(Generic[K, V]):
    """A dict with least-recently-used eviction and lookup counters.

    Parameters
    ----------
    maxsize:
        Maximum number of retained entries.  ``0`` disables retention
        entirely — every lookup is a counted miss — which the load
        generator uses to benchmark the uncached query path without
        changing any code path shapes.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_entries")

    def __init__(self, maxsize: int = 1024):
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: OrderedDict[K, V] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        return key in self._entries

    @property
    def lookups(self) -> int:
        """Total counted lookups (``hits + misses`` by construction)."""
        return self.hits + self.misses

    def get(self, key: K) -> V | object:
        """Return the cached value (marking a hit) or :data:`MISSING`."""
        value = self._entries.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return _MISSING
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: K, value: V) -> None:
        """Insert/refresh an entry, evicting the LRU one when full."""
        if self.maxsize == 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        if len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()


#: Sentinel returned by :meth:`BoundedLRUCache.get` on a miss.
MISSING = _MISSING
