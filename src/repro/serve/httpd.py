"""Stdlib HTTP/JSON front end over :class:`~repro.serve.batch.ServeService`.

``repro-serve serve`` binds a :class:`ThreadingHTTPServer` whose
handlers delegate to one shared service:

* ``POST /query`` — body ``{"basket": [ids], "top_k"?, "scoring"?,
  "version"?}``; responds with the
  :class:`~repro.serve.engine.QueryResult` rendering (including the
  snapshot version every result was computed against).  A client that
  pins ``version`` gets ``409`` when the service has since swapped to a
  different snapshot — the stale-read guard for hot swaps;
* ``GET /healthz`` — liveness plus current snapshot version;
* ``GET /version`` — current snapshot version only;
* ``GET /metrics`` — the shared registry in Prometheus text format;
* ``GET /shards`` — shard-tier health (worker queues, breaker states,
  rollout progress) when the service is a
  :class:`~repro.serve.shard.service.ShardedService`;
* ``POST /rollout`` — operator control of the rolling rollout (sharded
  tier only): ``{"action": "begin", "snapshot": <path>, "window"?}``
  stands a new snapshot up in shadow mode, ``{"action": "status"}``
  reports progress, ``{"action": "rollback"}`` aborts the shadow.
  ``begin`` with a rollout already shadowing is ``409``; a non-sharded
  service or an unreadable snapshot is ``400``.

The handler serves either tier through one duck-typed surface
(``query``/``version``/``snapshot``/``registry``/``tracer``).  The
sharded tier's robustness outcomes map onto HTTP: a shed request is
``429`` with a ``Retry-After`` header, an expired deadline ``504``; a
degraded (partial) answer is still ``200`` — the body carries
``degraded: true`` plus the unavailable shard set, and refusing to
answer would be strictly worse than answering from the shards that are
up.

Every ``POST /query`` is one traced request (path ``http``) in the
service's :class:`~repro.obs.requests.RequestTracer`: the handler opens
the context, the batching executor stamps and closes it, and rejected
bodies (bad JSON, missing basket, version mismatch) are recorded as
error requests so the SLO error rate sees them.

No third-party frameworks: ``http.server`` is enough for a repro
serving endpoint, and keeping it stdlib honours the repo's
no-new-dependencies rule.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import (
    DeadlineExceededError,
    OverloadShedError,
    ReproError,
    ServingError,
)
from repro.serve.batch import ServeService


def _json_bytes(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def make_handler(service: ServeService) -> type[BaseHTTPRequestHandler]:
    """Build a request-handler class bound to ``service``."""

    class ServeHandler(BaseHTTPRequestHandler):
        server_version = "repro-serve/1"

        # Quiet by default: request logging goes through repro.obs, not
        # stderr line noise.
        def log_message(self, format: str, *args) -> None:  # noqa: A002
            pass

        # ----------------------------------------------------------
        def _respond(
            self,
            status: int,
            body: bytes,
            content_type: str,
            retry_after: float | None = None,
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            if retry_after is not None:
                self.send_header("Retry-After", f"{max(retry_after, 0.001):.3f}")
            self.end_headers()
            self.wfile.write(body)

        def _respond_json(
            self, status: int, payload: dict, retry_after: float | None = None
        ) -> None:
            self._respond(
                status, _json_bytes(payload), "application/json", retry_after
            )

        # ----------------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 - http.server API
            if self.path == "/healthz":
                self._respond_json(
                    200, {"status": "ok", "version": service.version}
                )
            elif self.path == "/version":
                self._respond_json(200, {"version": service.version})
            elif self.path == "/metrics":
                self._respond(
                    200,
                    service.registry.to_prometheus().encode("utf-8"),
                    "text/plain; version=0.0.4",
                )
            elif self.path == "/shards" and hasattr(service, "status"):
                self._respond_json(200, service.status())
            else:
                self._respond_json(404, {"error": f"no route {self.path}"})

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            tracer = service.tracer
            if self.path == "/rollout":
                self._handle_rollout()
                return
            if self.path != "/query":
                self._respond_json(404, {"error": f"no route {self.path}"})
                return
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length)
            try:
                request = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                tracer.reject("http", "bad_json")
                self._respond_json(400, {"error": f"bad JSON body: {error}"})
                return
            if not isinstance(request, dict) or "basket" not in request:
                tracer.reject("http", "bad_request")
                self._respond_json(
                    400, {"error": 'body must be an object with a "basket" list'}
                )
                return
            pinned = request.get("version")
            if pinned is not None and pinned != service.version:
                tracer.reject("http", "version_mismatch")
                self._respond_json(
                    409,
                    {
                        "error": f"snapshot version mismatch: "
                        f"pinned {pinned!r}, serving {service.version!r}"
                    },
                )
                return
            try:
                basket = [int(item) for item in request["basket"]]
                top_k = request.get("top_k")
                scoring = request.get("scoring")
            except (TypeError, ValueError) as error:
                tracer.reject("http", "bad_request")
                self._respond_json(400, {"error": f"bad request: {error}"})
                return
            try:
                # The handler's context propagates through submit() into
                # the batching executor, which stamps and finishes it;
                # the context manager only closes on the error exits.
                with tracer.request("http") as ctx:
                    result = service.query(
                        basket,
                        top_k=None if top_k is None else int(top_k),
                        scoring=scoring,
                        ctx=ctx,
                    )
            except (TypeError, ValueError) as error:
                self._respond_json(400, {"error": f"bad request: {error}"})
                return
            except OverloadShedError as error:
                self._respond_json(
                    429,
                    {"error": str(error), "retry_after": error.retry_after},
                    retry_after=error.retry_after,
                )
                return
            except DeadlineExceededError as error:
                self._respond_json(504, {"error": str(error)})
                return
            except ReproError as error:
                self._respond_json(400, {"error": str(error)})
                return
            self._respond_json(200, result.to_dict(service.snapshot))

        # ----------------------------------------------------------
        def _handle_rollout(self) -> None:
            """Operator surface over the rolling rollout (see module doc)."""
            if not hasattr(service, "begin_rollout"):
                self._respond_json(
                    400, {"error": "rollout needs the sharded tier"}
                )
                return
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length)
            try:
                request = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                self._respond_json(400, {"error": f"bad JSON body: {error}"})
                return
            action = request.get("action") if isinstance(request, dict) else None
            if action == "status":
                rollout = getattr(service, "rollout", None)
                if rollout is None:
                    self._respond_json(200, {"rollout": None})
                else:
                    self._respond_json(200, {"rollout": rollout.status()})
                return
            if action == "rollback":
                try:
                    status = service.abort_rollout()
                except ServingError as error:
                    self._respond_json(409, {"error": str(error)})
                    return
                self._respond_json(200, {"rollout": status})
                return
            if action == "begin":
                path = request.get("snapshot")
                if not path:
                    self._respond_json(
                        400, {"error": 'begin needs a "snapshot" path'}
                    )
                    return
                try:
                    from repro.serve.snapshot import load_snapshot

                    new_snapshot = load_snapshot(path)
                except (ReproError, OSError) as error:
                    self._respond_json(400, {"error": str(error)})
                    return
                window = request.get("window", 32)
                try:
                    controller = service.begin_rollout(
                        new_snapshot, window=int(window)
                    )
                except ServingError as error:
                    self._respond_json(409, {"error": str(error)})
                    return
                except (TypeError, ValueError) as error:
                    self._respond_json(400, {"error": f"bad request: {error}"})
                    return
                self._respond_json(200, {"rollout": controller.status()})
                return
            self._respond_json(
                400,
                {"error": 'action must be one of "begin", "status", "rollback"'},
            )

    return ServeHandler


def make_server(service: ServeService, host: str, port: int) -> ThreadingHTTPServer:
    """Bind (but do not start) the HTTP server for ``service``."""
    return ThreadingHTTPServer((host, port), make_handler(service))
