"""Snapshot compiler — the immutable artifact the query engine serves.

A *snapshot* freezes one mining run's rule set together with the
taxonomy into a schema-versioned, byte-stable JSONL document
(``{"schema": "repro.serve", "v": 1}``, mirroring the ``repro.obs``
sink convention).  It is the hand-off point of the offline→online
pipeline: miners write rules, the compiler indexes them, the serving
layer memory-maps the result and never touches mining code again.

Three derived structures are compiled in and serialized so the online
path performs **no taxonomy tree walks**:

* **ancestor-closure keys** — for every item, its ``ancestors_or_self``
  tuple.  A basket of leaf items expands to its closure by dictionary
  lookups only, which is what lets a rule stated at any hierarchy level
  (``{Outerwear} => {Hiking Boots}``) match a basket of leaves;
* **antecedent inverted index** — item → sorted rule ids whose
  antecedent contains the item.  Query candidates are the union of the
  postings of the basket's closure items;
* **antecedent bitmasks** — each rule's antecedent as a bitmask over a
  compact item→bit mapping (the ``repro.perf`` k=2 bitmask layer
  applied to serving): a candidate matches exactly when
  ``ant_mask & ~closure_mask == 0``.

Byte stability: every line is serialized with sorted keys and compact
separators, all collections are emitted in sorted order, and the header
records a SHA-256 over the body lines as the snapshot ``version``.
Loading re-derives the index from the rule lines and re-verifies the
digest, so *build → load → re-serialize* is byte-identical and a
corrupted or hand-edited snapshot is rejected
(:class:`~repro.errors.SnapshotFormatError`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.core.result import MiningResult, Rule
from repro.core.rules import rule_interest
from repro.errors import EmptyRuleSetError, SnapshotFormatError
from repro.taxonomy.hierarchy import Taxonomy

SCHEMA_NAME = "repro.serve"
SCHEMA_VERSION = 1


def _serialize(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ServedRule:
    """One compiled rule: canonical id plus its three scoring signals.

    ``interest`` is the R-interest ratio of
    :func:`repro.core.rules.rule_interest`; ``None`` means no close
    ancestor rule predicts this rule (maximally interesting).
    """

    rule_id: int
    antecedent: tuple[int, ...]
    consequent: tuple[int, ...]
    support: float
    confidence: float
    interest: float | None

    def to_record(self) -> dict:
        return {
            "type": "rule",
            "id": self.rule_id,
            "ant": list(self.antecedent),
            "cons": list(self.consequent),
            "sup": self.support,
            "conf": self.confidence,
            "interest": self.interest,
        }


class RuleSnapshot:
    """An immutable, versioned, query-ready rule index.

    Construct through :func:`compile_snapshot` or :func:`load_snapshot`;
    the constructor derives every index deterministically from the
    canonical rule list and parent map, so two snapshots built from the
    same rules are bit-identical regardless of construction path.
    """

    __slots__ = (
        "rules",
        "parents",
        "closures",
        "index",
        "item_bits",
        "rule_masks",
        "leaves",
        "source",
        "version",
    )

    def __init__(
        self,
        rules: tuple[ServedRule, ...],
        parents: dict[int, int | None],
        source: dict | None = None,
    ):
        if not rules:
            raise EmptyRuleSetError("a snapshot needs at least one rule")
        for position, rule in enumerate(rules):
            if rule.rule_id != position:
                raise SnapshotFormatError(
                    f"rule ids must be dense and ordered: position {position} "
                    f"holds id {rule.rule_id}"
                )
        self.rules = rules
        self.parents = dict(parents)
        self.source = dict(source) if source else {}

        taxonomy = Taxonomy(self.parents) if self.parents else None
        universe = set(self.parents)
        for rule in rules:
            universe.update(rule.antecedent)
            universe.update(rule.consequent)
        closures: dict[int, tuple[int, ...]] = {}
        for item in sorted(universe):
            if taxonomy is not None and item in taxonomy:
                closures[item] = taxonomy.ancestors_or_self(item)
            else:
                closures[item] = (item,)
        self.closures = closures

        postings: dict[int, list[int]] = {}
        for rule in rules:
            for item in rule.antecedent:
                postings.setdefault(item, []).append(rule.rule_id)
        self.index = {
            item: tuple(sorted(rule_ids))
            for item, rule_ids in sorted(postings.items())
        }

        # Bitmask layer: bits only for items that key the index — the
        # closure mask drops everything else, the subset test is exact.
        self.item_bits = {
            item: bit for bit, item in enumerate(sorted(self.index))
        }
        self.rule_masks = tuple(
            self._mask(rule.antecedent) for rule in rules
        )
        if taxonomy is not None:
            self.leaves = taxonomy.leaves
        else:
            self.leaves = tuple(sorted(universe))
        self.version = hashlib.sha256(
            "\n".join(self._body_lines()).encode("utf-8")
        ).hexdigest()

    # ------------------------------------------------------------------
    def _mask(self, items: tuple[int, ...]) -> int:
        mask = 0
        for item in items:
            mask |= 1 << self.item_bits[item]
        return mask

    def closure_mask(self, closure: tuple[int, ...]) -> int:
        """Bitmask of the closure items that key the index."""
        bits = self.item_bits
        mask = 0
        for item in closure:
            bit = bits.get(item)
            if bit is not None:
                mask |= 1 << bit
        return mask

    @property
    def num_rules(self) -> int:
        return len(self.rules)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _body_lines(self) -> list[str]:
        lines = [
            _serialize(
                {
                    "type": "taxonomy",
                    "parents": [
                        [item, parent]
                        for item, parent in sorted(self.parents.items())
                    ],
                }
            )
        ]
        for item, keys in sorted(self.closures.items()):
            lines.append(
                _serialize({"type": "closure", "item": item, "keys": list(keys)})
            )
        for rule in self.rules:
            lines.append(_serialize(rule.to_record()))
        for item, rule_ids in sorted(self.index.items()):
            lines.append(
                _serialize({"type": "index", "item": item, "rules": list(rule_ids)})
            )
        lines.append(_serialize({"type": "end", "rules": len(self.rules)}))
        return lines

    def to_jsonl(self) -> str:
        """The full byte-stable document (meta + header + body)."""
        body = self._body_lines()
        header = _serialize(
            {
                "type": "header",
                "version": self.version,
                "rules": len(self.rules),
                "items": len(self.closures),
                "index_keys": len(self.index),
                "source": {
                    key: self.source[key] for key in sorted(self.source)
                },
            }
        )
        meta = _serialize({"type": "meta", "schema": SCHEMA_NAME, "v": SCHEMA_VERSION})
        return "\n".join([meta, header, *body]) + "\n"

    def __repr__(self) -> str:
        return (
            f"RuleSnapshot(rules={len(self.rules)}, items={len(self.closures)}, "
            f"version={self.version[:12]})"
        )


def compile_snapshot(
    rules: list[Rule],
    taxonomy: Taxonomy | None,
    result: MiningResult | None = None,
    interests: list[float | None] | None = None,
    source: dict | None = None,
) -> RuleSnapshot:
    """Compile generated rules (+ taxonomy) into a :class:`RuleSnapshot`.

    Parameters
    ----------
    rules:
        Output of :func:`repro.core.rules.generate_rules` (or
        ``interesting_rules``).  Canonical rule ids are assigned in
        sorted ``(antecedent, consequent)`` order, independent of the
        input ordering.
    taxonomy:
        The classification hierarchy; ``None`` builds a flat snapshot
        (closures degenerate to the item itself).
    result:
        When given, each rule's R-interest ratio is computed from the
        mining result via :func:`repro.core.rules.rule_interest`.
    interests:
        Pre-computed interest ratios aligned with ``rules`` (used when
        building from an exported rules file); mutually exclusive with
        ``result``.
    """
    if not rules:
        raise EmptyRuleSetError(
            "cannot compile a snapshot from zero rules; lower the "
            "confidence/interest thresholds or mine a larger dataset"
        )
    if interests is not None and len(interests) != len(rules):
        raise SnapshotFormatError(
            f"{len(interests)} interest values for {len(rules)} rules"
        )
    by_rule: dict[tuple[tuple[int, ...], tuple[int, ...]], tuple[Rule, float | None]]
    by_rule = {}
    if interests is None and result is not None and taxonomy is not None:
        supports = result.large_itemsets()
        by_key = {(rule.antecedent, rule.consequent): rule for rule in rules}
        interests = [
            rule_interest(rule, by_key, supports, taxonomy) for rule in rules
        ]
    for position, rule in enumerate(rules):
        key = (tuple(rule.antecedent), tuple(rule.consequent))
        if key in by_rule:
            raise SnapshotFormatError(f"duplicate rule {key[0]} => {key[1]}")
        by_rule[key] = (
            rule,
            interests[position] if interests is not None else None,
        )
    served = tuple(
        ServedRule(
            rule_id=rule_id,
            antecedent=key[0],
            consequent=key[1],
            support=float(by_rule[key][0].support),
            confidence=float(by_rule[key][0].confidence),
            interest=by_rule[key][1],
        )
        for rule_id, key in enumerate(sorted(by_rule))
    )
    parents = taxonomy.parent_map() if taxonomy is not None else {}
    return RuleSnapshot(served, parents, source=source)


def write_snapshot(snapshot: RuleSnapshot, path: str | Path) -> Path:
    """Write the snapshot document atomically; returns the path written.

    The commit goes through :func:`repro.store.atomic.atomic_write_text`
    so a crashed writer never leaves a torn snapshot where a server (or
    the refresh driver's ``CURRENT`` pointer) could load it.
    """
    from repro.store.atomic import atomic_write_text

    return atomic_write_text(Path(path), snapshot.to_jsonl())


def parse_snapshot(text: str) -> RuleSnapshot:
    """Parse and verify a snapshot document (inverse of ``to_jsonl``)."""
    records: list[dict] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as error:
            raise SnapshotFormatError(
                f"snapshot line {number} is not JSON: {error}"
            ) from None
        if not isinstance(record, dict) or "type" not in record:
            raise SnapshotFormatError(f"snapshot line {number} is not a record")
        records.append(record)
    if len(records) < 4:
        raise SnapshotFormatError("truncated snapshot document")
    meta, header = records[0], records[1]
    if meta.get("type") != "meta" or meta.get("schema") != SCHEMA_NAME:
        raise SnapshotFormatError(
            "snapshot does not start with a repro.serve meta line"
        )
    if meta.get("v") != SCHEMA_VERSION:
        raise SnapshotFormatError(
            f"unsupported snapshot schema version {meta.get('v')!r} "
            f"(this reader understands v{SCHEMA_VERSION})"
        )
    if header.get("type") != "header" or "version" not in header:
        raise SnapshotFormatError("snapshot header line missing")
    if records[-1].get("type") != "end":
        raise SnapshotFormatError("snapshot end line missing (truncated file?)")

    parents: dict[int, int | None] = {}
    served: list[ServedRule] = []
    try:
        for record in records[2:-1]:
            kind = record["type"]
            if kind == "taxonomy":
                parents = {
                    int(item): (None if parent is None else int(parent))
                    for item, parent in record["parents"]
                }
            elif kind == "rule":
                interest = record["interest"]
                served.append(
                    ServedRule(
                        rule_id=int(record["id"]),
                        antecedent=tuple(int(i) for i in record["ant"]),
                        consequent=tuple(int(i) for i in record["cons"]),
                        support=float(record["sup"]),
                        confidence=float(record["conf"]),
                        interest=None if interest is None else float(interest),
                    )
                )
            elif kind not in ("closure", "index"):
                raise SnapshotFormatError(f"unknown snapshot record type {kind!r}")
    except (KeyError, TypeError, ValueError) as error:
        raise SnapshotFormatError(f"malformed snapshot record: {error}") from None
    if int(records[-1].get("rules", -1)) != len(served):
        raise SnapshotFormatError(
            f"end line declares {records[-1].get('rules')} rules, "
            f"found {len(served)}"
        )

    snapshot = RuleSnapshot(tuple(served), parents, source=header.get("source"))
    if snapshot.version != header["version"]:
        raise SnapshotFormatError(
            "snapshot digest mismatch: header records "
            f"{header['version'][:12]}…, content hashes to "
            f"{snapshot.version[:12]}… (corrupted or hand-edited file)"
        )
    return snapshot


def load_snapshot(path: str | Path) -> RuleSnapshot:
    """Load and verify a snapshot written by :func:`write_snapshot`."""
    return parse_snapshot(Path(path).read_text(encoding="utf-8"))
