"""ASCII line charts — terminal renderings of the paper's figures.

The experiment harness prints tables (exact numbers) *and* a chart (the
figure's shape at a glance).  Pure text, no plotting dependency; one
marker character per series, shared axes, optional sub-linear-friendly
scaling from zero.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from repro.errors import ReproError

_MARKERS = "*o+x#@%&"


def line_chart(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
    y_from_zero: bool = True,
) -> str:
    """Render (x, y) series as an ASCII chart.

    Parameters
    ----------
    series:
        Name → list of (x, y) points.  Up to eight series (one marker
        each); points need not be sorted.
    width / height:
        Plot-area size in characters.
    y_from_zero:
        Anchor the y axis at zero (the paper's figures all do).

    Returns
    -------
    The chart as a multi-line string, legend included.
    """
    if not series:
        raise ReproError("line_chart needs at least one series")
    if len(series) > len(_MARKERS):
        raise ReproError(f"at most {len(_MARKERS)} series supported")
    if width < 8 or height < 4:
        raise ReproError("chart area too small")

    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        raise ReproError("line_chart needs at least one point")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_low, x_high = min(xs), max(xs)
    y_low = 0.0 if y_from_zero else min(ys)
    y_high = max(ys)
    if x_high == x_low:
        x_high = x_low + 1.0
    if y_high == y_low:
        y_high = y_low + 1.0

    def column(x: float) -> int:
        return round((x - x_low) / (x_high - x_low) * (width - 1))

    def row(y: float) -> int:
        return (height - 1) - round((y - y_low) / (y_high - y_low) * (height - 1))

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, pts) in zip(_MARKERS, series.items()):
        for x, y in pts:
            r, c = row(y), column(x)
            grid[r][c] = marker if grid[r][c] == " " else "+"

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_high:.4g}"
    bottom_label = f"{y_low:.4g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for index, grid_row in enumerate(grid):
        if index == 0:
            label = top_label.rjust(gutter)
        elif index == height - 1:
            label = bottom_label.rjust(gutter)
        else:
            label = " " * gutter
        lines.append(f"{label}|" + "".join(grid_row))
    lines.append(" " * gutter + "+" + "-" * width)
    left = f"{x_low:.4g}"
    right = f"{x_high:.4g}"
    padding = width - len(left) - len(right)
    lines.append(
        " " * (gutter + 1) + left + " " * max(1, padding) + right
    )
    lines.append(" " * (gutter + 1) + f"{x_label}  (y: {y_label})")
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(" " * (gutter + 1) + legend)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    width: int = 48,
    title: str | None = None,
) -> str:
    """Horizontal bar chart (Figure 15's per-node bars, textually)."""
    if not values:
        raise ReproError("bar_chart needs at least one bar")
    peak = max(values.values())
    if peak < 0:
        raise ReproError("bar_chart needs non-negative values")
    label_width = max(len(str(label)) for label in values)
    lines: list[str] = []
    if title:
        lines.append(title)
    for label, value in values.items():
        length = 0 if peak == 0 else max(
            1 if value > 0 else 0, round(width * value / peak)
        )
        lines.append(
            f"{str(label).rjust(label_width)} |{'#' * length} {value:.4g}"
        )
    return "\n".join(lines)
