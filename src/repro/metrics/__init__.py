"""Load-balance and speedup metrics, plus text-table rendering.

These are the lenses the paper's evaluation looks through: Figure 15 is
a per-node workload distribution, Figure 16 a speedup curve.  The
balance metrics beyond the paper (coefficient of variation, max/mean)
quantify the flatness the paper shows graphically.
"""

from repro.metrics.balance import (
    balance_summary,
    coefficient_of_variation,
    max_mean_ratio,
)
from repro.metrics.charts import bar_chart, line_chart
from repro.metrics.speedup import efficiency_curve, speedup_curve
from repro.metrics.tables import format_table

__all__ = [
    "balance_summary",
    "bar_chart",
    "coefficient_of_variation",
    "efficiency_curve",
    "format_table",
    "line_chart",
    "max_mean_ratio",
    "speedup_curve",
]
