"""Workload-distribution metrics (Figure 15's flatness, quantified).

The paper compares per-node hash-probe counts visually; these helpers
reduce a per-node distribution to the numbers the benchmarks report:

* :func:`coefficient_of_variation` — stddev / mean; 0 for a perfectly
  flat distribution.
* :func:`max_mean_ratio` — the bulk-synchronous slowdown factor: a pass
  lasts as long as its most loaded node, so max/mean is exactly the
  time lost to skew.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from repro.errors import ReproError


def _require_values(values: Sequence[float]) -> None:
    if not values:
        raise ReproError("balance metrics need at least one value")
    if any(v < 0 for v in values):
        raise ReproError("balance metrics need non-negative values")


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Population stddev divided by mean (0.0 when the mean is 0)."""
    _require_values(values)
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance) / mean


def max_mean_ratio(values: Sequence[float]) -> float:
    """Most-loaded node relative to the average (1.0 = perfectly flat)."""
    _require_values(values)
    mean = sum(values) / len(values)
    if mean == 0:
        return 1.0
    return max(values) / mean


@dataclass(frozen=True)
class BalanceSummary:
    """Summary statistics of one per-node workload distribution."""

    minimum: float
    maximum: float
    mean: float
    cv: float
    max_mean: float

    def __str__(self) -> str:
        return (
            f"min={self.minimum:.0f} max={self.maximum:.0f} "
            f"mean={self.mean:.1f} cv={self.cv:.3f} max/mean={self.max_mean:.3f}"
        )


def balance_summary(values: Sequence[float]) -> BalanceSummary:
    """Compute the full balance summary of a per-node distribution."""
    _require_values(values)
    return BalanceSummary(
        minimum=min(values),
        maximum=max(values),
        mean=sum(values) / len(values),
        cv=coefficient_of_variation(values),
        max_mean=max_mean_ratio(values),
    )
