"""Aligned text tables for the benchmark harness output.

Every experiment prints its rows through :func:`format_table` so the
bench output reads like the paper's tables.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ReproError


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a right-aligned monospace table.

    Floats are formatted with 4 significant decimals; everything else
    through ``str``.  Column widths fit the widest cell.
    """
    if not headers:
        raise ReproError("a table needs at least one column")

    def render(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ReproError(
                f"row has {len(row)} cells for {len(headers)} columns"
            )
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in rendered), 1)
        if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
