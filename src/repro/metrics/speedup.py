"""Speedup and efficiency curves (Figure 16).

The paper normalises by the **4-node** execution time (not 1-node),
so :func:`speedup_curve` takes the baseline node count explicitly and
scales the curve so the baseline point equals its node count — e.g.
ideal linearity through (4, 4), (8, 8), (16, 16).
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.errors import ReproError


def speedup_curve(
    times: Mapping[int, float],
    baseline_nodes: int,
) -> dict[int, float]:
    """Node count → speedup, normalised like the paper's Figure 16.

    ``speedup(n) = baseline_nodes * time(baseline_nodes) / time(n)``,
    so the baseline point sits at ``baseline_nodes`` and an ideally
    linear algorithm follows ``speedup(n) = n``.
    """
    if baseline_nodes not in times:
        raise ReproError(
            f"baseline node count {baseline_nodes} missing from the sweep"
        )
    baseline_time = times[baseline_nodes]
    if baseline_time <= 0:
        raise ReproError("baseline time must be positive")
    curve: dict[int, float] = {}
    for nodes, elapsed in sorted(times.items()):
        if elapsed <= 0:
            raise ReproError(f"non-positive time at {nodes} nodes")
        curve[nodes] = baseline_nodes * baseline_time / elapsed
    return curve


def efficiency_curve(
    times: Mapping[int, float],
    baseline_nodes: int,
) -> dict[int, float]:
    """Node count → parallel efficiency (speedup / node count)."""
    return {
        nodes: speedup / nodes
        for nodes, speedup in speedup_curve(times, baseline_nodes).items()
    }
