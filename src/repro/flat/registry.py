"""Registry for the flat ([SK96]) algorithm family."""

from __future__ import annotations

from repro.cluster.machine import Cluster
from repro.errors import MiningError
from repro.flat.base import FlatParallelMiner
from repro.flat.hpa import HPA
from repro.flat.hpa_eld import HPAELD
from repro.flat.npa import NPA
from repro.flat.spa import SPA

#: Name → miner class, in [SK96]'s order.
FLAT_ALGORITHMS: dict[str, type[FlatParallelMiner]] = {
    "NPA": NPA,
    "SPA": SPA,
    "HPA": HPA,
    "HPA-ELD": HPAELD,
}


def make_flat_miner(algorithm: str, cluster: Cluster) -> FlatParallelMiner:
    """Instantiate a flat miner by name (case-insensitive)."""
    try:
        miner_class = FLAT_ALGORITHMS[algorithm.upper()]
    except KeyError:
        known = ", ".join(FLAT_ALGORITHMS)
        raise MiningError(
            f"unknown flat algorithm {algorithm!r}; known: {known}"
        ) from None
    return miner_class(cluster)
