"""HPA-ELD — HPA with Extremely Large itemset Duplication ([SK96]).

The skew handler of the flat family and the direct ancestor of the
paper's TGD/PGD/FGD: when the hash-partitioned candidates leave free
memory, the candidates built from the most frequent items are copied
to every node and counted locally, so the hottest itemsets neither
travel nor pile onto one owner.
"""

from __future__ import annotations

from repro.core.itemsets import Itemset
from repro.flat.hpa import HPA
from repro.parallel.duplication import GreedyPacker
from repro.parallel.allocation import itemset_owner


class HPAELD(HPA):
    """HPA plus frequent-itemset duplication into free memory."""

    name = "HPA-ELD"

    def _duplicate_candidates(
        self,
        k: int,
        candidates: list[Itemset],
        partition_sizes: list[int],
    ) -> set[Itemset]:
        item_counts = self._item_counts
        ordered = sorted(
            candidates,
            key=lambda c: (-sum(item_counts.get(i, 0) for i in c), c),
        )
        packer = GreedyPacker(partition_sizes, self.cluster.config.memory_per_node)
        num_nodes = self.cluster.num_nodes
        for candidate in ordered:
            packer.try_add([(candidate, itemset_owner(candidate, num_nodes))])
        return packer.duplicated
