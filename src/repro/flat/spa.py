"""SPA — Simply-Partitioned Apriori ([SK96]; Data-Distribution style).

Candidates are split round-robin over the nodes (exploiting aggregate
memory, no hash agreement needed), but since any node may own any
itemset of any transaction, every node must see every transaction:
each local transaction is broadcast to all other nodes.  The broadcast
is the cost the hash-based algorithms eliminate — SPA exists here as
that baseline.
"""

from __future__ import annotations

from repro.cluster.stats import PassStats
from repro.core.counting import SupportCounter
from repro.core.itemsets import Itemset
from repro.flat.base import FlatParallelMiner


class SPA(FlatParallelMiner):
    """Round-robin candidate split with full transaction broadcast."""

    name = "SPA"

    def _run_pass(
        self,
        k: int,
        candidates: list[Itemset],
        threshold: int,
    ) -> tuple[dict[Itemset, int], PassStats]:
        cluster = self.cluster
        num_nodes = cluster.num_nodes
        network = cluster.network
        node_stats = cluster.begin_pass()

        partitions: list[list[Itemset]] = [
            candidates[n::num_nodes] for n in range(num_nodes)
        ]
        # Strategy pinned to "dict": SPA's probe counts are part of the
        # flat-family comparison surface and must not move with the
        # "auto" density heuristic.
        counters = [
            SupportCounter(partition, k, strategy="dict") for partition in partitions
        ]
        for node, partition in zip(cluster.nodes, partitions):
            node.charge_candidates(len(partition))

        # Scan: count locally, broadcast the raw transaction.
        for node in cluster.nodes:
            me = node.node_id
            stats = node.stats
            counter = counters[me]
            for transaction in node.disk.scan(stats):
                counter.add_transaction(transaction)
                if len(transaction) < k:
                    continue
                for dest in range(num_nodes):
                    if dest != me:
                        network.send(
                            me, dest, transaction, stats, node_stats[dest]
                        )

        # Receive: count the broadcast transactions.
        for node in cluster.nodes:
            counter = counters[node.node_id]
            for payload in network.drain(node.node_id):
                counter.add_transaction(payload)

        large: dict[Itemset, int] = {}
        reduced = 0
        for node, counter in zip(cluster.nodes, counters):
            stats = node.stats
            stats.probes += counter.probes
            stats.itemsets_generated += counter.generated
            stats.increments += sum(counter.counts.values())
            local_large = {
                itemset: count
                for itemset, count in counter.counts.items()
                if count >= threshold
            }
            reduced += len(local_large)
            large.update(local_large)

        pass_stats = cluster.finish_pass(
            k=k,
            num_candidates=len(candidates),
            num_large=len(large),
            reduced_counts=reduced,
        )
        return large, pass_stats
