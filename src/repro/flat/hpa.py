"""HPA — Hash-Partitioned Apriori ([SK96], the paper's own precursor).

Candidates are placed by hashing the itemset; during the scan each
node enumerates the k-itemsets of its local transactions and ships
each one to the node owning its hash — exactly one destination per
itemset, no broadcast.  HPGM is this algorithm plus ancestor handling;
running both on the same simulator shows what the hierarchy costs.
"""

from __future__ import annotations

from itertools import combinations

from repro.cluster.stats import PassStats
from repro.core.itemsets import Itemset
from repro.flat.base import FlatParallelMiner
from repro.parallel.allocation import itemset_owner, partition_candidates_by_itemset


class HPA(FlatParallelMiner):
    """Hash-partitioned candidates with per-itemset routing."""

    name = "HPA"

    def _duplicate_candidates(
        self,
        k: int,
        candidates: list[Itemset],
        partition_sizes: list[int],
    ) -> set[Itemset]:
        """Hook for HPA-ELD; plain HPA duplicates nothing."""
        return set()

    def _run_pass(
        self,
        k: int,
        candidates: list[Itemset],
        threshold: int,
    ) -> tuple[dict[Itemset, int], PassStats]:
        cluster = self.cluster
        num_nodes = cluster.num_nodes
        network = cluster.network
        node_stats = cluster.begin_pass()

        partitions = partition_candidates_by_itemset(candidates, num_nodes)
        duplicated = self._duplicate_candidates(
            k, candidates, [len(p) for p in partitions]
        )
        if duplicated:
            partitions = [
                [c for c in partition if c not in duplicated]
                for partition in partitions
            ]
        counts: list[dict[Itemset, int]] = [
            dict.fromkeys(partition, 0) for partition in partitions
        ]
        dup_counts: list[dict[Itemset, int]] | None = (
            [dict.fromkeys(duplicated, 0) for _ in range(num_nodes)]
            if duplicated
            else None
        )
        for node, partition in zip(cluster.nodes, partitions):
            node.charge_candidates(len(partition) + len(duplicated))

        universe = {item for c in candidates for item in c}

        for node in cluster.nodes:
            me = node.node_id
            stats = node.stats
            my_counts = counts[me]
            my_dups = dup_counts[me] if dup_counts is not None else None
            for transaction in node.disk.scan(stats):
                relevant = tuple(i for i in transaction if i in universe)
                if len(relevant) < k:
                    continue
                batches: dict[int, list[int]] = {}
                for subset in combinations(relevant, k):
                    stats.itemsets_generated += 1
                    if my_dups is not None and subset in my_dups:
                        # ELD: frequent itemsets are counted locally and
                        # never travel.
                        stats.probes += 1
                        my_dups[subset] += 1
                        stats.increments += 1
                        continue
                    dest = itemset_owner(subset, num_nodes)
                    if dest == me:
                        stats.probes += 1
                        if subset in my_counts:
                            my_counts[subset] += 1
                            stats.increments += 1
                    else:
                        batches.setdefault(dest, []).extend(subset)
                for dest, flat in sorted(batches.items()):
                    network.send(me, dest, tuple(flat), stats, node_stats[dest])

        for node in cluster.nodes:
            me = node.node_id
            stats = node.stats
            my_counts = counts[me]
            for payload in network.drain(me):
                for start in range(0, len(payload), k):
                    subset = payload[start : start + k]
                    stats.probes += 1
                    if subset in my_counts:
                        my_counts[subset] += 1
                        stats.increments += 1

        large: dict[Itemset, int] = {}
        reduced = 0
        for per_node in counts:
            local_large = {
                itemset: count
                for itemset, count in per_node.items()
                if count >= threshold
            }
            reduced += len(local_large)
            large.update(local_large)
        if dup_counts is not None:
            aggregated: dict[Itemset, int] = {}
            for per_node in dup_counts:
                for itemset, count in per_node.items():
                    aggregated[itemset] = aggregated.get(itemset, 0) + count
            reduced += len(duplicated) * num_nodes
            large.update(
                {
                    itemset: count
                    for itemset, count in aggregated.items()
                    if count >= threshold
                }
            )

        pass_stats = cluster.finish_pass(
            k=k,
            num_candidates=len(candidates),
            num_large=len(large),
            reduced_counts=reduced,
            duplicated_candidates=len(duplicated),
        )
        return large, pass_stats
