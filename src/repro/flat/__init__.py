"""Flat (non-hierarchical) parallel association mining — the paper's lineage.

The paper builds directly on the authors' earlier HPA work (Shintani &
Kitsuregawa, PDIS '96, cited as [SK96]): *"In our previous study, we
proposed parallel algorithm for mining association rules on a
shared-nothing environment, named HPA (Hash Partitioned Apriori)"*.
This subpackage implements that flat family on the same cluster
simulator, both as the historical baseline and as the cleanest way to
see what the hierarchy adds:

* :class:`~repro.flat.npa.NPA` — Non-Partitioned Apriori: candidates
  replicated, counts reduced (Count-Distribution style); fragments and
  re-scans when candidates overflow one node's memory.
* :class:`~repro.flat.spa.SPA` — Simply-Partitioned Apriori:
  candidates split round-robin, every transaction broadcast to every
  node (Data-Distribution style).
* :class:`~repro.flat.hpa.HPA` — Hash-Partitioned Apriori: candidates
  and generated k-itemsets routed by the same hash; only the itemsets
  travel, to exactly one node each.
* :class:`~repro.flat.hpa_eld.HPAELD` — HPA with Extremely Large
  itemset Duplication: the frequently occurring candidates are copied
  to all nodes and counted locally — the direct ancestor of the
  paper's TGD/PGD/FGD skew handling.

All four return exactly :func:`repro.core.apriori`'s answer (tested).
"""

from repro.flat.base import FlatParallelMiner, mine_flat_parallel
from repro.flat.hpa import HPA
from repro.flat.hpa_eld import HPAELD
from repro.flat.npa import NPA
from repro.flat.registry import FLAT_ALGORITHMS, make_flat_miner
from repro.flat.spa import SPA

__all__ = [
    "FLAT_ALGORITHMS",
    "FlatParallelMiner",
    "HPA",
    "HPAELD",
    "NPA",
    "SPA",
    "make_flat_miner",
    "mine_flat_parallel",
]
