"""Shared skeleton of the flat parallel miners ([SK96] family).

Mirrors :class:`repro.parallel.base.ParallelMiner` without the
taxonomy: pass 1 counts plain items locally and reduces; pass k >= 2 is
algorithm-specific.  Kept separate rather than parameterising the
hierarchical base — the two families differ in every pass-k mechanism,
and sharing only the thin loop would couple them for no gain.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.cluster.stats import PassStats, RunStats
from repro.core.candidates import apriori_gen
from repro.core.itemsets import Itemset, minimum_count
from repro.core.result import MiningResult, PassResult
from repro.datagen.corpus import TransactionDatabase
from repro.errors import MiningError


@dataclass(frozen=True)
class FlatParallelRun:
    """Outcome of a flat parallel mining run."""

    result: MiningResult
    stats: RunStats

    @property
    def algorithm(self) -> str:
        return self.stats.algorithm


class FlatParallelMiner(ABC):
    """Base class for NPA / SPA / HPA / HPA-ELD."""

    name = "abstract-flat"

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self._item_counts: dict[int, int] = {}

    def mine(self, min_support: float, max_k: int | None = None) -> FlatParallelRun:
        """Run the pass loop; parameters as in the hierarchical miners."""
        num_transactions = self.cluster.num_transactions
        if num_transactions == 0:
            raise MiningError("cannot mine an empty cluster")
        threshold = minimum_count(min_support, num_transactions)

        result = MiningResult(
            min_support=min_support, num_transactions=num_transactions
        )
        run = RunStats(algorithm=self.name, num_nodes=self.cluster.num_nodes)

        large_1, pass1_stats = self._pass_one(threshold)
        result.passes.append(
            PassResult(k=1, num_candidates=pass1_stats.num_candidates, large=large_1)
        )
        run.passes.append(pass1_stats)

        previous: dict[Itemset, int] = large_1
        k = 2
        while previous and (max_k is None or k <= max_k):
            candidates = apriori_gen(previous.keys(), k)
            if not candidates:
                break
            large_k, pass_stats = self._run_pass(k, candidates, threshold)
            result.passes.append(
                PassResult(k=k, num_candidates=len(candidates), large=large_k)
            )
            run.passes.append(pass_stats)
            previous = large_k
            k += 1

        return FlatParallelRun(result=result, stats=run)

    def _pass_one(self, threshold: int) -> tuple[dict[Itemset, int], PassStats]:
        self.cluster.begin_pass()
        total: dict[int, int] = {}
        reduced = 0
        budget = self.cluster.config.memory_per_node
        for node in self.cluster.nodes:
            stats = node.stats
            local: dict[int, int] = {}
            for transaction in node.disk.scan(stats):
                stats.probes += len(transaction)
                stats.increments += len(transaction)
                for item in transaction:
                    local[item] = local.get(item, 0) + 1
            node.charge_candidates(
                len(local) if budget is None else min(len(local), budget)
            )
            reduced += len(local)
            for item, count in local.items():
                total[item] = total.get(item, 0) + count

        self._item_counts = total
        large_1 = {
            (item,): count for item, count in total.items() if count >= threshold
        }
        pass_stats = self.cluster.finish_pass(
            k=1,
            num_candidates=len(total),
            num_large=len(large_1),
            reduced_counts=reduced,
        )
        return large_1, pass_stats

    @abstractmethod
    def _run_pass(
        self,
        k: int,
        candidates: list[Itemset],
        threshold: int,
    ) -> tuple[dict[Itemset, int], PassStats]:
        """Count one pass; return the large k-itemsets and the pass stats."""


def mine_flat_parallel(
    database: TransactionDatabase,
    min_support: float,
    algorithm: str = "HPA",
    config: ClusterConfig | None = None,
    max_k: int | None = None,
) -> FlatParallelRun:
    """One-call entry point mirroring :func:`repro.parallel.mine_parallel`."""
    from repro.flat.registry import make_flat_miner

    config = config if config is not None else ClusterConfig.sp2_like()
    cluster = Cluster.from_database(config, database)
    return make_flat_miner(algorithm, cluster).mine(min_support, max_k=max_k)
