"""NPA — Non-Partitioned Apriori ([SK96]; Count-Distribution style).

Candidates replicated on every node; each node counts its local
partition; the coordinator reduces all counts.  When the candidates
exceed one node's memory they are fragmented and the partition is
re-scanned per fragment — NPGM's behaviour, minus the hierarchy.
"""

from __future__ import annotations

import math

from repro.cluster.stats import PassStats
from repro.core.counting import SupportCounter
from repro.core.itemsets import Itemset
from repro.flat.base import FlatParallelMiner


class NPA(FlatParallelMiner):
    """Replicated candidates, local counting, fragmenting re-scans."""

    name = "NPA"

    def _run_pass(
        self,
        k: int,
        candidates: list[Itemset],
        threshold: int,
    ) -> tuple[dict[Itemset, int], PassStats]:
        cluster = self.cluster
        cluster.begin_pass()
        memory = cluster.config.memory_per_node
        fragments = (
            1 if memory is None else max(1, math.ceil(len(candidates) / memory))
        )

        total: dict[Itemset, int] = {}
        for node in cluster.nodes:
            stats = node.stats
            # Pinned to "dict" so NPA's probe metrics stay independent
            # of the "auto" density heuristic.
            counter = SupportCounter(candidates, k, strategy="dict")
            for transaction in node.disk.scan(stats):
                counter.add_transaction(transaction)
            stats.io_items *= fragments
            stats.io_scans = fragments
            stats.itemsets_generated = counter.generated * fragments
            stats.probes = counter.probes * fragments
            stats.increments = sum(counter.counts.values())
            node.charge_candidates(
                len(candidates) if memory is None else min(len(candidates), memory)
            )
            for itemset, count in counter.counts.items():
                if count:
                    total[itemset] = total.get(itemset, 0) + count

        large = {
            itemset: count for itemset, count in total.items() if count >= threshold
        }
        pass_stats = cluster.finish_pass(
            k=k,
            num_candidates=len(candidates),
            num_large=len(large),
            reduced_counts=len(candidates) * cluster.num_nodes,
            fragments=fragments,
        )
        return large, pass_stats
