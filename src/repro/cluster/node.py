"""One simulated shared-nothing node.

A node bundles its local disk, its identity, and the per-pass
:class:`~repro.cluster.stats.NodeStats`.  The memory-budget check lives
here: algorithms call :meth:`Node.charge_candidates` when they build
their per-pass candidate tables, and the node either records the
residency (default) or raises under ``strict_memory``.
"""

from __future__ import annotations

import math

from repro.cluster.config import ClusterConfig
from repro.cluster.disk import LocalDisk, TransactionSource
from repro.cluster.stats import NodeStats
from repro.errors import MemoryBudgetError


class Node:
    """A shared-nothing node: id, local disk, per-pass counters."""

    def __init__(self, node_id: int, partition: TransactionSource, config: ClusterConfig):
        self.node_id = node_id
        self.disk = LocalDisk(partition)
        self.config = config
        self.stats = NodeStats()
        #: Optional trace/telemetry hook, set by ``Cluster`` attach calls.
        self.trace = None

    def begin_pass(self) -> NodeStats:
        """Reset and return this node's counters for a new pass."""
        self.stats = NodeStats()
        return self.stats

    def charge_candidates(self, count: int) -> None:
        """Record ``count`` resident candidates for this pass.

        Under ``strict_memory`` the call raises when the node's budget
        would be exceeded; otherwise residency is recorded as-is (the
        experiments read it to report overflow).  With a fault plan
        whose ``degrade_memory_overflow`` is set, a strict overflow
        degrades to the paper's multi-fragment re-scan instead of
        aborting: at most one budget's worth of candidates stays
        resident and every extra fragment re-reads the partition,
        charged to ``fault_overflow_fragments``/``fault_rescan_items``.
        """
        budget = self.config.memory_per_node
        if (
            self.config.strict_memory
            and budget is not None
            and self.stats.candidates_stored + count > budget
        ):
            plan = self.config.faults
            if plan is not None and plan.degrade_memory_overflow:
                self._degrade_overflow(count, budget)
                return
            raise MemoryBudgetError(
                f"node {self.node_id}: {self.stats.candidates_stored + count} "
                f"candidates exceed the {budget}-slot budget"
            )
        self.stats.candidates_stored += count
        if self.trace is not None:
            self.trace.record(
                "charge",
                node=self.node_id,
                count=count,
                resident=self.stats.candidates_stored,
            )

    def _degrade_overflow(self, count: int, budget: int) -> None:
        """Strict-memory overflow → NPGM-style fragmenting re-scan.

        ``⌈total / budget⌉`` fragments hold the table in turn; every
        fragment beyond the first re-reads the whole local partition.
        Counts are unaffected (the same candidates are still counted),
        so only the recovery tax is charged and residency is capped at
        the budget — the runtime memory invariant stays intact.
        """
        total = self.stats.candidates_stored + count
        fragments = math.ceil(total / budget)
        extra = fragments - 1
        self.stats.fault_overflow_fragments += extra
        self.stats.fault_rescan_items += extra * self.disk.stored_items
        self.stats.candidates_stored = budget
        if self.trace is not None:
            self.trace.record(
                "fault",
                fault="degrade",
                node=self.node_id,
                requested=total,
                budget=budget,
                fragments=fragments,
            )

    @property
    def free_slots(self) -> int | None:
        """Remaining candidate slots this pass (None when unbounded)."""
        budget = self.config.memory_per_node
        if budget is None:
            return None
        return max(0, budget - self.stats.candidates_stored)

    def __repr__(self) -> str:
        return f"Node(id={self.node_id}, transactions={len(self.disk)})"
