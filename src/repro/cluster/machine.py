"""The :class:`Cluster`: nodes + network + pass bookkeeping.

A cluster is built from a transaction database (partitioned evenly over
the nodes' local disks, as in the paper's experiments, or from explicit
per-node partitions for skew ablations).  The parallel algorithms drive
it in bulk-synchronous passes:

1. :meth:`begin_pass` resets every node's counters;
2. the algorithm scans disks, probes tables and exchanges messages
   through :attr:`network`, charging everything to the node stats;
3. :meth:`finish_pass` prices the counters through the cost model and
   appends a :class:`~repro.cluster.stats.PassStats` snapshot.

The coordinator is not a distinguished node — matching the paper, its
reduce/broadcast work is priced separately by the cost model and added
to the pass time.
"""

from __future__ import annotations

import os
import weakref
from collections.abc import Sequence

from repro.cluster.config import ClusterConfig
from repro.cluster.disk import TransactionSource
from repro.cluster.invariants import invariants_enabled_by_env, verify_pass_invariants
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.stats import NodeStats, PassStats
from repro.datagen.corpus import TransactionDatabase
from repro.datagen.partition import partition_evenly
from repro.errors import ClusterError
from repro.faults.recovery import FaultController


def _shared_memory_enabled() -> bool:
    """``REPRO_SHM=0`` opts process runs out of the shared-memory arena."""
    return os.environ.get("REPRO_SHM", "1") not in ("0", "false")


class Cluster:
    """A simulated shared-nothing machine loaded with data.

    When the config selects the ``process`` executor and the partitions
    are plain in-memory databases, they are packed once into a
    :class:`~repro.store.shm.SharedArena` and each node's disk scans a
    :class:`~repro.store.shm.ShmView` instead — worker tasks then carry
    a few-byte handle rather than a pickled partition (the BENCH_pr3
    bottleneck).  Scan results and statistics are identical either way;
    only task serialisation cost changes.  Set ``REPRO_SHM=0`` to keep
    the legacy pickled-partition behaviour.
    """

    def __init__(self, config: ClusterConfig, partitions: Sequence[TransactionSource]):
        if len(partitions) != config.num_nodes:
            raise ClusterError(
                f"{len(partitions)} partitions for {config.num_nodes} nodes"
            )
        self.config = config
        self.trace = None
        #: Optional :class:`repro.obs.telemetry.Telemetry` (duck-typed;
        #: this module never imports ``repro.obs``).
        self.telemetry = None
        #: The shared-memory arena backing the partitions, if any.
        self.arena = None
        self._finalizer = None
        if (
            getattr(config, "executor", "serial") == "process"
            and _shared_memory_enabled()
            and partitions
            and all(isinstance(p, TransactionDatabase) for p in partitions)
        ):
            from repro.store.shm import SharedArena

            arena = SharedArena.from_partitions(partitions)
            partitions = [arena.view(i) for i in range(arena.num_nodes)]
            self.arena = arena
            # The arena is a kernel object (POSIX shm segment), not
            # garbage-collectable memory — tie its unlink to this
            # cluster's lifetime in case close() is never called.
            self._finalizer = weakref.finalize(self, arena.destroy)
        self.nodes: list[Node] = [
            Node(node_id, partition, config)
            for node_id, partition in enumerate(partitions)
        ]
        self.network = Network(
            num_nodes=config.num_nodes,
            item_bytes=config.item_bytes,
            header_bytes=config.message_header_bytes,
        )
        #: Optional :class:`repro.faults.recovery.FaultController`,
        #: built when the config carries a fault plan.
        self.faults = (
            FaultController(config.faults, self) if config.faults is not None else None
        )
        self.network.faults = self.faults

    @classmethod
    def from_database(
        cls,
        config: ClusterConfig,
        database: TransactionDatabase,
    ) -> "Cluster":
        """Even horizontal partitioning, the paper's data placement."""
        return cls(config, partition_evenly(database, config.num_nodes))

    @classmethod
    def from_store(cls, config: ClusterConfig, store) -> "Cluster":
        """Load an on-disk :class:`~repro.store.reader.TransactionStore`.

        Each node gets a strided view (``start=node_id,
        step=num_nodes``) — row-for-row the same placement as
        :func:`~repro.datagen.partition.partition_evenly`, so store-
        backed runs produce byte-identical digests to list-backed ones.
        The views are what worker tasks carry: a path + range handle
        that re-opens the mmap inside the worker, no row data pickled.
        """
        views = [
            store.view(start=node_id, step=config.num_nodes)
            for node_id in range(config.num_nodes)
        ]
        return cls(config, views)

    def close(self) -> None:
        """Release the shared-memory arena, if one was created."""
        if self.arena is not None:
            if self._finalizer is not None:
                self._finalizer.detach()
            self.arena.destroy()
            self.arena = None

    @property
    def num_nodes(self) -> int:
        return self.config.num_nodes

    @property
    def num_transactions(self) -> int:
        return sum(len(node.disk) for node in self.nodes)

    def attach_trace(self, trace) -> None:
        """Attach a :class:`~repro.cluster.trace.SimulationTrace`.

        Subsequent sends and pass boundaries are recorded on it.  When a
        telemetry object is (or later gets) attached, the trace keeps
        receiving every event through it — attach order does not matter.
        """
        if self.telemetry is not None:
            self.telemetry.attach_trace(trace)
            return
        self._set_trace_hook(trace)

    def attach_telemetry(self, telemetry) -> None:
        """Attach a :class:`~repro.obs.telemetry.Telemetry`.

        The telemetry becomes the cluster's trace hook (hot paths keep
        their single ``is None`` check), adopts the cost model, and is
        fed per-node statistics at every pass boundary.
        """
        telemetry.bind(self)
        if self.trace is not None and self.trace is not telemetry:
            telemetry.attach_trace(self.trace)
        self.telemetry = telemetry
        self._set_trace_hook(telemetry)

    def _set_trace_hook(self, hook) -> None:
        self.trace = hook
        self.network.trace = hook
        for node in self.nodes:
            node.trace = hook

    # ------------------------------------------------------------------
    # Pass lifecycle
    # ------------------------------------------------------------------
    def begin_pass(self) -> list[NodeStats]:
        """Reset all node counters; returns them in node order."""
        if self.trace is not None:
            self.trace.record("pass-begin")
        self.network.start_pass()
        snapshots = [node.begin_pass() for node in self.nodes]
        if self.telemetry is not None:
            self.telemetry.on_begin_pass()
        # Fault injection runs last so recovery charges land after the
        # telemetry baselines reset — the recovery tax is then priced
        # into the pass's first region span, never lost.
        if self.faults is not None:
            self.faults.on_begin_pass()
        return snapshots

    def finish_pass(
        self,
        k: int,
        num_candidates: int,
        num_large: int,
        reduced_counts: int,
        duplicated_candidates: int = 0,
        fragments: int = 1,
    ) -> PassStats:
        """Price the pass and snapshot its statistics.

        Parameters
        ----------
        k:
            Pass number (itemset size).
        num_candidates:
            ``|Ck|`` cluster-wide.
        num_large:
            ``|Lk|`` found this pass.
        reduced_counts:
            (candidate, node) count pairs the coordinator merged — the
            reduce volume differs per algorithm (NPGM reduces every
            candidate from every node; the partitioned algorithms reduce
            only duplicated candidates plus per-node large sets).
        duplicated_candidates:
            ``|Ck^D|`` for the duplication variants.
        fragments:
            NPGM's ⌈|Ck| / M⌉ scan repetitions.
        """
        if self.network.total_pending() != 0:
            raise ClusterError("finish_pass with undelivered messages")
        if self.config.check_invariants or invariants_enabled_by_env():
            verify_pass_invariants(
                self.network,
                self.nodes,
                self.config.memory_per_node,
                k,
                trace=self.trace,
            )
        cost = self.config.cost
        node_times = [cost.node_time(node.stats) for node in self.nodes]
        coordinator = cost.coordinator_time(
            reduced_counts, num_large * self.config.num_nodes
        )
        pass_stats = PassStats(
            k=k,
            num_candidates=num_candidates,
            num_large=num_large,
            nodes=[node.stats for node in self.nodes],
            node_times=node_times,
            coordinator_time=coordinator,
            elapsed=(max(node_times) if node_times else 0.0) + coordinator,
            duplicated_candidates=duplicated_candidates,
            fragments=fragments,
        )
        if self.faults is not None:
            self.faults.on_finish_pass(pass_stats)
        if self.telemetry is not None:
            self.telemetry.on_finish_pass(pass_stats, reduced_counts)
        if self.trace is not None:
            self.trace.record(
                "pass-end",
                k=k,
                candidates=num_candidates,
                large=num_large,
                elapsed=pass_stats.elapsed,
            )
        return pass_stats

    def __repr__(self) -> str:
        return (
            f"Cluster(nodes={self.num_nodes}, "
            f"transactions={self.num_transactions}, "
            f"memory_per_node={self.config.memory_per_node})"
        )
