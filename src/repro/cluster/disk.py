"""Per-node local disk with read accounting.

Each node owns a horizontal partition of the transaction data on its
"local disk".  :meth:`LocalDisk.scan` iterates the partition and
charges the read volume to a :class:`~repro.cluster.stats.NodeStats`,
so NPGM's fragment loop — which re-reads the partition once per
candidate fragment — shows up as real I/O in the cost model.

The partition can be any :class:`TransactionSource`: an in-memory
:class:`~repro.datagen.corpus.TransactionDatabase`, a strided
:class:`~repro.store.reader.StoreView` over an on-disk columnar store,
or a :class:`~repro.store.shm.ShmView` into a shared-memory arena.  All
three yield the same sorted tuples, so the miners (and their digests)
cannot tell them apart; the store/shm views additionally pickle as tiny
handles, which is what makes the process backend zero-copy per pass.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Protocol, runtime_checkable

from repro.cluster.stats import NodeStats
from repro.datagen.corpus import Transaction


@runtime_checkable
class TransactionSource(Protocol):
    """Anything a :class:`LocalDisk` can scan.

    Implementations: :class:`~repro.datagen.corpus.TransactionDatabase`,
    :class:`~repro.store.reader.TransactionStore` /
    :class:`~repro.store.reader.StoreView`, and
    :class:`~repro.store.shm.ShmView`.  Iteration must yield sorted,
    deduplicated item tuples — the normalisation every implementation
    applies at construction/write time.
    """

    def __len__(self) -> int: ...

    def total_items(self) -> int: ...

    def __iter__(self) -> Iterator[Transaction]: ...


class LocalDisk:
    """One node's transaction partition.

    Parameters
    ----------
    partition:
        The transactions resident on this disk (any
        :class:`TransactionSource`).
    """

    __slots__ = ("_partition",)

    def __init__(self, partition: TransactionSource):
        self._partition = partition

    def __len__(self) -> int:
        return len(self._partition)

    @property
    def partition(self) -> TransactionSource:
        return self._partition

    @property
    def stored_items(self) -> int:
        """Total items resident on this disk (one scan's read volume)."""
        return self._partition.total_items()

    def scan(self, stats: NodeStats | None = None) -> Iterator[Transaction]:
        """Iterate the partition, charging the read to ``stats``.

        The scan is charged up front (``io_scans`` and the full
        ``io_items`` volume) because every algorithm in the paper reads
        partitions in full sequential scans.
        """
        if stats is not None:
            stats.io_scans += 1
            stats.io_items += self.stored_items
        return iter(self._partition)
