"""Per-node local disk with read accounting.

Each node owns a horizontal partition of the transaction database on
its "local disk".  :meth:`LocalDisk.scan` iterates the partition and
charges the read volume to a :class:`~repro.cluster.stats.NodeStats`,
so NPGM's fragment loop — which re-reads the partition once per
candidate fragment — shows up as real I/O in the cost model.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.cluster.stats import NodeStats
from repro.datagen.corpus import Transaction, TransactionDatabase


class LocalDisk:
    """One node's transaction partition.

    Parameters
    ----------
    partition:
        The transactions resident on this disk.
    """

    __slots__ = ("_partition",)

    def __init__(self, partition: TransactionDatabase):
        self._partition = partition

    def __len__(self) -> int:
        return len(self._partition)

    @property
    def partition(self) -> TransactionDatabase:
        return self._partition

    @property
    def stored_items(self) -> int:
        """Total items resident on this disk (one scan's read volume)."""
        return self._partition.total_items()

    def scan(self, stats: NodeStats | None = None) -> Iterator[Transaction]:
        """Iterate the partition, charging the read to ``stats``.

        The scan is charged up front (``io_scans`` and the full
        ``io_items`` volume) because every algorithm in the paper reads
        partitions in full sequential scans.
        """
        if stats is not None:
            stats.io_scans += 1
            stats.io_items += self.stored_items
        return iter(self._partition)
