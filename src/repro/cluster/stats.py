"""Per-node, per-pass and per-run statistics containers.

These are the measurement surface of the reproduction: Table 6 reads
``bytes_received``, Figure 15 reads ``probes``, Figures 13/14/16 read
the cost-model times derived from all counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass
class NodeStats:
    """Raw work counters of one node during one pass.

    Attributes
    ----------
    io_items:
        Transaction items read from the local disk (scan repetitions
        included — NPGM's fragment loop re-reads the partition).
    io_scans:
        Number of complete partition scans.
    extend_items:
        Items touched while extending / rewriting transactions.
    itemsets_generated:
        k-subsets produced from transactions before probing.
    probes:
        Candidate hash-table probes (Figure 15's metric).
    increments:
        Probes that hit and incremented a support count.
    bytes_sent / bytes_received:
        Payload bytes on the interconnect (Table 6's metric).
    messages_sent / messages_received:
        Message counts (per-destination transaction batches).
    candidates_stored:
        Candidate itemsets resident in this node's memory this pass
        (partition share plus any duplicated set).
    """

    io_items: int = 0
    io_scans: int = 0
    extend_items: int = 0
    itemsets_generated: int = 0
    probes: int = 0
    increments: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    candidates_stored: int = 0

    def merged_with(self, other: "NodeStats") -> "NodeStats":
        """Counter-wise sum (used when aggregating passes)."""
        merged = NodeStats()
        for spec in fields(NodeStats):
            setattr(
                merged,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return merged


@dataclass
class PassStats:
    """Cluster-wide statistics of one mining pass.

    ``node_times`` and ``elapsed`` are produced by the cost model:
    ``elapsed = max(node_times) + coordinator_time`` (bulk-synchronous
    pass with overlapped communication).
    """

    k: int
    num_candidates: int
    num_large: int
    nodes: list[NodeStats] = field(default_factory=list)
    node_times: list[float] = field(default_factory=list)
    coordinator_time: float = 0.0
    elapsed: float = 0.0
    duplicated_candidates: int = 0
    fragments: int = 1

    @property
    def total_bytes_received(self) -> int:
        return sum(n.bytes_received for n in self.nodes)

    @property
    def avg_bytes_received(self) -> float:
        if not self.nodes:
            return 0.0
        return self.total_bytes_received / len(self.nodes)

    @property
    def total_probes(self) -> int:
        return sum(n.probes for n in self.nodes)

    def probe_distribution(self) -> list[int]:
        """Per-node probe counts, node order (Figure 15's bars)."""
        return [n.probes for n in self.nodes]


@dataclass
class RunStats:
    """Statistics of a complete mining run (all passes)."""

    algorithm: str
    num_nodes: int
    passes: list[PassStats] = field(default_factory=list)

    @property
    def total_elapsed(self) -> float:
        return sum(p.elapsed for p in self.passes)

    def pass_stats(self, k: int) -> PassStats:
        for pass_stats in self.passes:
            if pass_stats.k == k:
                return pass_stats
        raise KeyError(f"no pass {k} in this run")

    @property
    def total_bytes_received(self) -> int:
        return sum(p.total_bytes_received for p in self.passes)
