"""Per-node, per-pass and per-run statistics containers.

These are the measurement surface of the reproduction: Table 6 reads
``bytes_received``, Figure 15 reads ``probes``, Figures 13/14/16 read
the cost-model times derived from all counters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, fields

from repro.errors import ClusterError

#: Version tag of the JSON serialization shared by :meth:`RunStats.to_json`,
#: the benchmark result files and the ``repro.obs`` event sink.
STATS_SCHEMA = "repro.stats/v1"


@dataclass
class NodeStats:
    """Raw work counters of one node during one pass.

    Attributes
    ----------
    io_items:
        Transaction items read from the local disk (scan repetitions
        included — NPGM's fragment loop re-reads the partition).
    io_scans:
        Number of complete partition scans.
    extend_items:
        Items touched while extending / rewriting transactions.
    itemsets_generated:
        k-subsets produced from transactions before probing.
    probes:
        Candidate hash-table probes (Figure 15's metric).
    increments:
        Probes that hit and incremented a support count.
    bytes_sent / bytes_received:
        Payload bytes on the interconnect (Table 6's metric).
    messages_sent / messages_received:
        Message counts (per-destination transaction batches).
    candidates_stored:
        Candidate itemsets resident in this node's memory this pass
        (partition share plus any duplicated set).
    fault_*:
        Fault-injection and recovery work (see :mod:`repro.faults`).
        These never overlap the canonical counters above: a dropped or
        duplicated message still charges ``bytes_sent``/``received``
        exactly once, and the retransmission/duplicate tax lands here.
        All zero when no :class:`~repro.faults.plan.FaultPlan` is
        attached, and then omitted from :meth:`to_dict` so fault-free
        serializations are byte-identical to the pre-fault format.
    """

    io_items: int = 0
    io_scans: int = 0
    extend_items: int = 0
    itemsets_generated: int = 0
    probes: int = 0
    increments: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    candidates_stored: int = 0
    fault_crashes: int = 0
    fault_retries: int = 0
    fault_retry_bytes: int = 0
    fault_backoff_units: int = 0
    fault_dropped_messages: int = 0
    fault_dup_messages: int = 0
    fault_dup_bytes: int = 0
    fault_rescan_items: int = 0
    fault_restored_bytes: int = 0
    fault_reassigned_candidates: int = 0
    fault_stall_units: int = 0
    fault_overflow_fragments: int = 0

    def merged_with(self, other: "NodeStats") -> "NodeStats":
        """Counter-wise sum (used when aggregating passes)."""
        merged = NodeStats()
        for spec in fields(NodeStats):
            setattr(
                merged,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return merged

    def to_dict(self) -> dict:
        """Counters as a dict in declaration order (stable key order).

        Fault counters appear only when non-zero, so fault-free runs
        serialize byte-identically to the pre-fault schema.
        """
        return {
            spec.name: getattr(self, spec.name)
            for spec in fields(NodeStats)
            if not spec.name.startswith("fault_") or getattr(self, spec.name)
        }

    @classmethod
    def from_dict(cls, data: dict) -> "NodeStats":
        known = {spec.name for spec in fields(cls)}
        return cls(
            **{key: value for key, value in sorted(data.items()) if key in known}
        )


@dataclass
class PassStats:
    """Cluster-wide statistics of one mining pass.

    ``node_times`` and ``elapsed`` are produced by the cost model:
    ``elapsed = max(node_times) + coordinator_time`` (bulk-synchronous
    pass with overlapped communication).
    """

    k: int
    num_candidates: int
    num_large: int
    nodes: list[NodeStats] = field(default_factory=list)
    node_times: list[float] = field(default_factory=list)
    coordinator_time: float = 0.0
    elapsed: float = 0.0
    duplicated_candidates: int = 0
    fragments: int = 1

    @property
    def total_bytes_received(self) -> int:
        return sum(n.bytes_received for n in self.nodes)

    @property
    def avg_bytes_received(self) -> float:
        if not self.nodes:
            return 0.0
        return self.total_bytes_received / len(self.nodes)

    @property
    def total_probes(self) -> int:
        return sum(n.probes for n in self.nodes)

    def probe_distribution(self) -> list[int]:
        """Per-node probe counts, node order (Figure 15's bars)."""
        return [n.probes for n in self.nodes]

    def to_dict(self) -> dict:
        """Pass statistics as a nested dict with stable key order."""
        return {
            "k": self.k,
            "num_candidates": self.num_candidates,
            "num_large": self.num_large,
            "coordinator_time": self.coordinator_time,
            "elapsed": self.elapsed,
            "duplicated_candidates": self.duplicated_candidates,
            "fragments": self.fragments,
            "node_times": list(self.node_times),
            "nodes": [node.to_dict() for node in self.nodes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PassStats":
        return cls(
            k=data["k"],
            num_candidates=data["num_candidates"],
            num_large=data["num_large"],
            nodes=[NodeStats.from_dict(node) for node in data.get("nodes", [])],
            node_times=list(data.get("node_times", [])),
            coordinator_time=data.get("coordinator_time", 0.0),
            elapsed=data.get("elapsed", 0.0),
            duplicated_candidates=data.get("duplicated_candidates", 0),
            fragments=data.get("fragments", 1),
        )


@dataclass
class RunStats:
    """Statistics of a complete mining run (all passes)."""

    algorithm: str
    num_nodes: int
    passes: list[PassStats] = field(default_factory=list)

    @property
    def total_elapsed(self) -> float:
        return sum(p.elapsed for p in self.passes)

    def pass_stats(self, k: int) -> PassStats:
        for pass_stats in self.passes:
            if pass_stats.k == k:
                return pass_stats
        raise KeyError(f"no pass {k} in this run")

    @property
    def total_bytes_received(self) -> int:
        return sum(p.total_bytes_received for p in self.passes)

    # ------------------------------------------------------------------
    # Serialization — one format shared by the benchmark result files
    # and the repro.obs event sink (``run-end`` events embed to_dict()).
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": STATS_SCHEMA,
            "algorithm": self.algorithm,
            "num_nodes": self.num_nodes,
            "passes": [pass_stats.to_dict() for pass_stats in self.passes],
        }

    def to_json(self, indent: int | None = 2) -> str:
        """Stable-key-order JSON; byte-identical for identical runs."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict) -> "RunStats":
        schema = data.get("schema", STATS_SCHEMA)
        if schema != STATS_SCHEMA:
            raise ClusterError(
                f"unsupported run-stats schema {schema!r} (expected {STATS_SCHEMA})"
            )
        return cls(
            algorithm=data["algorithm"],
            num_nodes=data["num_nodes"],
            passes=[PassStats.from_dict(entry) for entry in data.get("passes", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "RunStats":
        return cls.from_dict(json.loads(text))
