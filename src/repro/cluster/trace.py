"""Optional event tracing for the cluster simulator.

Attach a :class:`SimulationTrace` to a cluster to record a structured
event stream — message sends, pass boundaries — alongside the counter
summaries.  Useful for debugging routing decisions ("which node sent
what to whom for this transaction batch?") and for the network tests.

Tracing is off unless attached; the hot paths pay one ``is None`` check.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceEvent:
    """One simulator event.

    ``kind`` is a short tag (``"send"``, ``"pass-begin"``,
    ``"pass-end"``); ``detail`` carries the kind-specific payload.
    """

    kind: str
    detail: dict

    def __str__(self) -> str:
        # repro-lint: disable=RL001 — ``detail`` holds record() kwargs, whose
        # order is the event's schema order (fixed per call site), not hash
        # order; sorting would scramble the documented trace format.
        rendered = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.kind}] {rendered}"


@dataclass
class SimulationTrace:
    """Append-only event log with small query helpers.

    ``limit`` bounds memory: beyond it, events are dropped and only the
    per-kind counters keep growing.  The drop is never silent — the
    exact number of lost events is kept in :attr:`dropped` and surfaced
    by :meth:`__str__` (``truncated`` remains as the boolean view).
    """

    limit: int = 100_000
    events: list[TraceEvent] = field(default_factory=list)
    dropped: int = 0
    _counts: Counter = field(default_factory=Counter)

    def record(self, kind: str, **detail) -> None:
        self._counts[kind] += 1
        if len(self.events) < self.limit:
            self.events.append(TraceEvent(kind=kind, detail=detail))
        else:
            self.dropped += 1

    @property
    def truncated(self) -> bool:
        """True when at least one event fell beyond ``limit``."""
        return self.dropped > 0

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def count(self, kind: str) -> int:
        """Total events of a kind (including dropped ones)."""
        return self._counts[kind]

    def kinds(self) -> dict[str, int]:
        return dict(self._counts)

    @property
    def total(self) -> int:
        """Total events ever recorded (stored plus dropped)."""
        return len(self.events) + self.dropped

    def __str__(self) -> str:
        rendered = " ".join(
            f"{kind}={self._counts[kind]}" for kind in sorted(self._counts)
        )
        suffix = f" dropped={self.dropped}" if self.dropped else ""
        return f"SimulationTrace({self.total} events: {rendered}{suffix})"

    def clear(self) -> None:
        self.events.clear()
        self._counts.clear()
        self.dropped = 0
