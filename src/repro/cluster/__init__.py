"""Shared-nothing cluster simulator — the repo's IBM SP-2 substitute.

The paper runs on a 16-node IBM SP-2 (POWER2 CPUs, 256 MB RAM and a
2 GB local disk per node, HPS interconnect).  This subpackage builds the
equivalent substrate as a deterministic simulator:

* :class:`~repro.cluster.config.ClusterConfig` — node count, per-node
  candidate memory budget, wire/record sizes, cost coefficients.
* :class:`~repro.cluster.disk.LocalDisk` — each node's transaction
  partition with read-volume and scan-count accounting.
* :class:`~repro.cluster.network.Network` — point-to-point mailboxes
  with exact per-node byte/message accounting (what Table 6 reports).
* :class:`~repro.cluster.node.Node` — per-node counters and memory
  checks.
* :class:`~repro.cluster.machine.Cluster` — wires the above together
  and aggregates per-pass statistics.
* :mod:`~repro.cluster.invariants` — optional pass-boundary runtime
  checks (message conservation, stats/network cross-checks, memory
  bound); the dynamic counterpart of the ``repro-lint`` static rules.
* :class:`~repro.cluster.cost.CostModel` — converts counted work (I/O
  items, hash probes, bytes moved) into a simulated wall-clock time per
  pass: the bulk-synchronous maximum over nodes plus the coordinator's
  reduce/broadcast.  Only the *constants* are SP-2-flavoured; every
  relative result (who wins, crossovers, skew, speedup shape) follows
  from the counted quantities alone.

Why simulate instead of mpi4py: the paper's conclusions are about
relative communication volume and load balance.  A Python MPI port
would drown those signals in interpreter overhead; counting them
exactly and pricing them with a cost model preserves the phenomena the
paper measures (see DESIGN.md §2).
"""

from repro.cluster.config import ClusterConfig
from repro.cluster.cost import CostModel
from repro.cluster.disk import LocalDisk
from repro.cluster.invariants import verify_pass_invariants
from repro.cluster.machine import Cluster
from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.cluster.stats import NodeStats, PassStats, RunStats
from repro.cluster.trace import SimulationTrace, TraceEvent

__all__ = [
    "Cluster",
    "ClusterConfig",
    "CostModel",
    "LocalDisk",
    "Network",
    "Node",
    "NodeStats",
    "PassStats",
    "RunStats",
    "SimulationTrace",
    "TraceEvent",
    "verify_pass_invariants",
]
