"""Point-to-point message passing with exact traffic accounting.

The network models the SP-2's High-Performance Switch as mailboxes: a
send appends the payload to the destination's queue and charges wire
bytes (items × ``item_bytes`` + a fixed header) to both endpoints'
:class:`~repro.cluster.stats.NodeStats`.  Delivery of *logical*
messages is exact — the quantity under study is *volume* (Table 6) —
but when a :class:`~repro.faults.recovery.FaultController` is attached
(``ClusterConfig.faults``) individual transmissions may fail
transiently, be dropped, or arrive twice: the canonical counters still
record exactly one delivery per logical message, while the
retransmission/duplicate tax is charged to the ``fault_*`` counters.

Payloads are tuples of item ids (a routed transaction fragment t″ or a
batch of hashed k-itemsets).  Mailbox entries carry a per-network
sequence number so duplicated transmissions are recognised — and
discarded, with the receiver charged — at drain time.  A per-link
traffic matrix is kept for diagnostics and the network tests.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.cluster.stats import NodeStats
from repro.errors import RoutingError

Payload = tuple[int, ...]


class Network:
    """Mailbox network between ``num_nodes`` nodes.

    Parameters
    ----------
    num_nodes:
        Number of endpoints (node ids ``0 .. num_nodes - 1``).
    item_bytes:
        Wire size of one item id.
    header_bytes:
        Fixed per-message overhead.
    """

    def __init__(self, num_nodes: int, item_bytes: int = 4, header_bytes: int = 8):
        if num_nodes <= 0:
            raise RoutingError(f"num_nodes must be positive, got {num_nodes}")
        self.num_nodes = num_nodes
        self.item_bytes = item_bytes
        self.header_bytes = header_bytes
        #: Optional :class:`repro.cluster.trace.SimulationTrace`.
        self.trace = None
        #: Optional :class:`repro.faults.recovery.FaultController`,
        #: attached by the cluster when a fault plan is configured.
        self.faults = None
        #: Current pass number (0 before the first pass), for error
        #: context and the fault layer's schedule.
        self.pass_index = 0
        self._mailboxes: list[deque[tuple[int, Payload]]] = [
            deque() for _ in range(num_nodes)
        ]
        self._next_seq = 0
        self._traffic: dict[tuple[int, int], int] = {}
        #: Ground-truth per-pass tallies for the invariant checker
        #: (:mod:`repro.cluster.invariants`); reset by :meth:`start_pass`.
        self.pass_sends = 0
        self.pass_send_bytes = 0
        self.pass_drained = 0

    def start_pass(self) -> None:
        """Zero the per-pass send/drain tallies (called at pass begin)."""
        self.pass_index += 1
        self.pass_sends = 0
        self.pass_send_bytes = 0
        self.pass_drained = 0

    def _context(self) -> str:
        """Shared error context: where in the run, how much is in flight."""
        return (
            f"pass {self.pass_index}, {self.total_pending()} messages pending"
        )

    def _check(self, node: int, role: str = "node") -> None:
        if not 0 <= node < self.num_nodes:
            raise RoutingError(
                f"{role} id {node} outside cluster of {self.num_nodes} nodes "
                f"({self._context()})"
            )

    def message_bytes(self, payload: Sequence[int]) -> int:
        """Wire size of one payload."""
        return self.header_bytes + len(payload) * self.item_bytes

    def send(
        self,
        src: int,
        dst: int,
        payload: Payload,
        src_stats: NodeStats | None = None,
        dst_stats: NodeStats | None = None,
    ) -> None:
        """Enqueue ``payload`` for ``dst``, charging both endpoints.

        Self-sends are rejected: local work must never be accounted as
        communication (that would corrupt Table 6).

        With a fault controller attached, this transmission may retry
        transiently, be dropped-and-retransmitted, or be duplicated;
        whatever happens, the canonical accounting below runs exactly
        once per logical message (a duplicate adds a second mailbox
        copy under the same sequence number, discarded at drain).
        """
        self._check(src, "source node")
        self._check(dst, "destination node")
        if src == dst:
            raise RoutingError(
                f"node {src} attempted to send to itself ({self._context()})"
            )
        size = self.message_bytes(payload)
        copies = (
            self.faults.on_send(self, src, dst, size, src_stats)
            if self.faults is not None
            else 1
        )
        seq = self._next_seq
        self._next_seq += 1
        mailbox = self._mailboxes[dst]
        for _ in range(copies):
            mailbox.append((seq, payload))
        self._traffic[(src, dst)] = self._traffic.get((src, dst), 0) + size
        self.pass_sends += 1
        self.pass_send_bytes += size
        if self.trace is not None:
            self.trace.record("send", src=src, dst=dst, bytes=size, items=len(payload))
        if src_stats is not None:
            src_stats.bytes_sent += size
            src_stats.messages_sent += 1
        if dst_stats is not None:
            dst_stats.bytes_received += size
            dst_stats.messages_received += 1

    def drain(self, node: int) -> list[Payload]:
        """Remove and return everything queued for ``node``.

        Duplicated transmissions (same sequence number) are delivered
        once; each discarded copy is charged to the receiving node's
        ``fault_dup_*`` counters through the fault controller.
        """
        self._check(node)
        mailbox = self._mailboxes[node]
        entries = list(mailbox)
        mailbox.clear()
        payloads: list[Payload] = []
        seen: set[int] = set()
        for seq, payload in entries:
            if seq in seen:
                if self.faults is not None:
                    self.faults.on_duplicate(node, self.message_bytes(payload))
                continue
            seen.add(seq)
            payloads.append(payload)
        self.pass_drained += len(payloads)
        if self.trace is not None and payloads:
            self.trace.record(
                "drain",
                node=node,
                messages=len(payloads),
                items=sum(len(payload) for payload in payloads),
            )
        return payloads

    def pending(self, node: int) -> int:
        """Messages currently queued for ``node``."""
        self._check(node)
        return len(self._mailboxes[node])

    def total_pending(self) -> int:
        """Messages queued anywhere in the cluster."""
        return sum(len(mailbox) for mailbox in self._mailboxes)

    def traffic_matrix(self) -> dict[tuple[int, int], int]:
        """Cumulative (src, dst) → bytes since construction."""
        return dict(self._traffic)

    def total_traffic(self) -> int:
        """Total bytes ever sent across the interconnect."""
        return sum(self._traffic.values())

    def reset_traffic(self) -> None:
        """Zero the traffic matrix (mailboxes must already be empty)."""
        if any(self._mailboxes):
            raise RoutingError(
                f"cannot reset traffic with undelivered messages "
                f"({self._context()})"
            )
        self._traffic.clear()
