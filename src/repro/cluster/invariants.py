"""Runtime invariants of the shared-nothing simulator.

The static pass (:mod:`repro.analysis`, rule RL006) checks the
*protocol shape* at review time; this module checks the *accounting* at
run time.  When enabled, :meth:`repro.cluster.machine.Cluster.finish_pass`
verifies at every pass boundary:

* **message conservation** — every payload enqueued by
  ``Network.send`` was removed by exactly one ``Network.drain`` before
  the pass ended (no lost or double-drained messages);
* **statistics honesty** — the per-node ``messages_sent`` /
  ``messages_received`` / byte counters, which every reported number is
  derived from, sum to the network's own ground-truth tallies (catches
  an algorithm forgetting to pass ``stats`` into ``send``);
* **memory bound** — no node's ``candidates_stored`` exceeds
  ``memory_per_node``.

Enable via ``ClusterConfig(check_invariants=True)`` or the
``REPRO_CHECK_INVARIANTS=1`` environment variable (handy for test
subprocesses).  Leave off for the skew experiments that deliberately
record candidate-memory overflow (the paper's non-strict reading).
"""

from __future__ import annotations

import os
from collections.abc import Iterable

from repro.cluster.network import Network
from repro.cluster.node import Node
from repro.errors import InvariantViolationError

_ENV_FLAG = "REPRO_CHECK_INVARIANTS"


def invariants_enabled_by_env() -> bool:
    """True when ``REPRO_CHECK_INVARIANTS`` requests checking."""
    return os.environ.get(_ENV_FLAG, "").strip() not in {"", "0", "false", "no"}


def verify_pass_invariants(
    network: Network,
    nodes: Iterable[Node],
    memory_per_node: int | None,
    k: int,
    trace=None,
) -> None:
    """Raise :class:`InvariantViolationError` on any accounting breach.

    Called by ``Cluster.finish_pass`` after the undelivered-message
    check, so mailboxes are known to be empty; what remains is to prove
    the tallies agree.  When a trace/telemetry hook is given, the
    verdict is recorded as an ``invariants`` event (and thereby lands in
    an attached observability sink) before any failure is raised.
    """
    node_list = list(nodes)
    failures: list[str] = []

    if network.pass_sends != network.pass_drained:
        failures.append(
            f"message conservation: {network.pass_sends} sends but "
            f"{network.pass_drained} drained payloads"
        )

    stats_sent = sum(node.stats.messages_sent for node in node_list)
    stats_received = sum(node.stats.messages_received for node in node_list)
    if stats_sent != network.pass_sends:
        failures.append(
            f"stats cross-check: nodes recorded {stats_sent} messages_sent, "
            f"network performed {network.pass_sends} sends"
        )
    if stats_received != network.pass_sends:
        failures.append(
            f"stats cross-check: nodes recorded {stats_received} "
            f"messages_received, network performed {network.pass_sends} sends"
        )

    stats_bytes_sent = sum(node.stats.bytes_sent for node in node_list)
    stats_bytes_received = sum(node.stats.bytes_received for node in node_list)
    if stats_bytes_sent != network.pass_send_bytes:
        failures.append(
            f"stats cross-check: nodes recorded {stats_bytes_sent} bytes_sent, "
            f"network carried {network.pass_send_bytes} bytes"
        )
    if stats_bytes_received != network.pass_send_bytes:
        failures.append(
            f"stats cross-check: nodes recorded {stats_bytes_received} "
            f"bytes_received, network carried {network.pass_send_bytes} bytes"
        )

    if memory_per_node is not None:
        for node in node_list:
            if node.stats.candidates_stored > memory_per_node:
                failures.append(
                    f"memory bound: node {node.node_id} holds "
                    f"{node.stats.candidates_stored} candidates over the "
                    f"{memory_per_node}-slot budget"
                )

    if trace is not None:
        trace.record("invariants", k=k, ok=not failures, failures=len(failures))
    if failures:
        detail = "; ".join(failures)
        raise InvariantViolationError(f"pass {k} invariant violation: {detail}")
