"""Cluster configuration.

Memory is budgeted in *candidate slots* rather than raw bytes: the unit
of allocation in every algorithm is one candidate itemset (itemset +
support counter + hash-table bookkeeping), so a slot budget states the
paper's constraint — "the size of the candidate itemsets is larger than
the size of local memory of a single node but smaller than the sum of
the memory space of all the nodes" — directly.  ``candidate_bytes``
converts slots to bytes for reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.cluster.cost import CostModel
from repro.errors import ClusterError
from repro.faults.plan import FaultPlan


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of the simulated shared-nothing machine.

    Attributes
    ----------
    num_nodes:
        Number of nodes (the paper uses 4–16).
    memory_per_node:
        Candidate slots available per node.  ``None`` means unbounded —
        useful for correctness tests where memory pressure is noise.
    candidate_bytes:
        Bytes per stored candidate (for byte-denominated reporting).
    item_bytes:
        Wire size of one item id.
    message_header_bytes:
        Fixed bytes per message on the wire.
    count_bytes:
        Wire size of one support counter (reduce phase).
    cost:
        The :class:`~repro.cluster.cost.CostModel` pricing counted work.
    strict_memory:
        When True, a candidate partition that exceeds a node's budget
        raises :class:`~repro.errors.MemoryBudgetError`; when False (the
        default) the overflow is recorded in the pass statistics, which
        matches the paper's reading (placement skew degrades, it does
        not abort).
    check_invariants:
        When True, every ``finish_pass`` runs the runtime invariant
        checker (:mod:`repro.cluster.invariants`): message conservation,
        statistics/network cross-checks, and the candidate-memory bound.
        Off by default — the skew experiments deliberately record
        memory overflow.  The ``REPRO_CHECK_INVARIANTS=1`` environment
        variable enables checking regardless of this field.
    executor:
        How per-node scan work is executed on the *host*: ``"serial"``
        (inline, the default) or ``"process"`` (a process pool mapping
        simulated nodes onto host cores).  Purely a wall-clock choice —
        results, statistics and telemetry are byte-identical (see
        :mod:`repro.perf.executor`).
    workers:
        Host processes for the ``process`` executor; ``None`` means one
        per available CPU.  Ignored by the serial executor.
    faults:
        Optional :class:`~repro.faults.plan.FaultPlan`.  When set, the
        cluster builds a :class:`~repro.faults.recovery.FaultController`
        that injects the plan's seeded crashes, stalls and message
        faults and charges all recovery work to the ``fault_*``
        counters.  ``None`` (the default) leaves the simulator's
        behaviour — results, statistics, traces and sinks —
        byte-identical to a machine without a fault layer.
    """

    num_nodes: int = 16
    memory_per_node: int | None = 4096
    candidate_bytes: int = 32
    item_bytes: int = 4
    message_header_bytes: int = 8
    count_bytes: int = 8
    cost: CostModel = field(default_factory=CostModel)
    strict_memory: bool = False
    check_invariants: bool = False
    executor: str = "serial"
    workers: int | None = None
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ClusterError(f"num_nodes must be positive, got {self.num_nodes}")
        if self.memory_per_node is not None and self.memory_per_node <= 0:
            raise ClusterError("memory_per_node must be positive or None")
        for name in ("candidate_bytes", "item_bytes", "message_header_bytes", "count_bytes"):
            if getattr(self, name) <= 0:
                raise ClusterError(f"{name} must be positive")
        if self.executor not in ("serial", "process"):
            raise ClusterError(
                f"unknown executor {self.executor!r}; known: serial, process"
            )
        if self.workers is not None and self.workers <= 0:
            raise ClusterError("workers must be positive or None")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ClusterError(
                f"faults must be a FaultPlan or None, got {type(self.faults).__name__}"
            )

    @property
    def total_memory(self) -> int | None:
        """Aggregate candidate capacity of the machine (None if unbounded)."""
        if self.memory_per_node is None:
            return None
        return self.memory_per_node * self.num_nodes

    def with_nodes(self, num_nodes: int) -> "ClusterConfig":
        """Same machine with a different node count (speedup sweeps)."""
        return replace(self, num_nodes=num_nodes)

    def with_memory(self, memory_per_node: int | None) -> "ClusterConfig":
        """Same machine with a different per-node memory budget."""
        return replace(self, memory_per_node=memory_per_node)

    @classmethod
    def sp2_like(
        cls,
        num_nodes: int = 16,
        memory_per_node: int | None = 4096,
    ) -> "ClusterConfig":
        """A 16-node SP-2-flavoured preset (defaults of the experiments)."""
        return cls(num_nodes=num_nodes, memory_per_node=memory_per_node)
