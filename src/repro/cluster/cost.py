"""Analytic cost model: counted work → simulated seconds.

The simulator counts four kinds of per-node work during a pass:

* items read from the local disk (times the number of scans — NPGM's
  fragmenting re-reads the partition);
* items touched while extending / rewriting transactions;
* candidate hash probes (the quantity Figure 15 plots);
* bytes and messages sent and received.

:meth:`CostModel.node_time` prices a node's counters; a pass lasts as
long as its slowest node (bulk-synchronous execution with overlapped
communication), plus a small coordinator term for the support-count
reduce and the large-itemset broadcast.

The default coefficients are sized like mid-90s hardware (tens of
MB/s disk and interconnect, about a microsecond of CPU per probe).
They set the absolute scale only — every comparison in the paper's
evaluation is reproduced by the *ratios* of counted work, so any
sane coefficient set yields the same relative picture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.stats import NodeStats
from repro.errors import ClusterError


@dataclass(frozen=True)
class CostModel:
    """Cost coefficients, all in seconds per unit.

    Attributes
    ----------
    io_item:
        Reading one transaction item from the local disk (sequential
        scan, amortised).
    extend_item:
        Touching one item while building the extended / rewritten
        transaction.
    probe:
        One candidate hash-table lookup.  A miss is an early-out hash
        comparison, so this is cheaper than…
    increment:
        …a hit: locating the counter and bumping it.  Splitting the two
        matters for the duplication variants, whose whole point is to
        *move* the hot candidates' increments from their overloaded
        owner onto every transaction's home node.
    generate_itemset:
        Producing one k-subset from a transaction (before probing).
    byte_send / byte_recv:
        Wire cost per byte on the sending / receiving side.
    message:
        Fixed per-message overhead.  Modelled per (transaction,
        destination) batch but priced as bulk-buffered streaming — a
        production sender coalesces many such batches per wire packet.
    reduce_candidate:
        Coordinator-side merge cost per (candidate, node) count pair.
    broadcast_itemset:
        Coordinator-side cost per large itemset broadcast to one node.
    fault_backoff_unit:
        One unit of retry backoff wait (the fault layer charges
        ``2**attempt`` units per transient-send retry).
    fault_stall_unit:
        One unit of injected slow-node stall.
    """

    io_item: float = 2.0e-6
    extend_item: float = 8.0e-7
    probe: float = 4.0e-7
    increment: float = 1.6e-6
    generate_itemset: float = 4.0e-7
    # ~5 MB/s effective per side: the full software path of mid-90s
    # user-space message passing (copy, packetise, match, copy), not
    # the link's raw bandwidth.
    byte_send: float = 2.0e-7
    byte_recv: float = 2.0e-7
    message: float = 5.0e-6
    reduce_candidate: float = 1.5e-7
    broadcast_itemset: float = 1.5e-7
    fault_backoff_unit: float = 1.0e-3
    fault_stall_unit: float = 1.0e-2

    def __post_init__(self) -> None:
        for name in (
            "io_item",
            "extend_item",
            "probe",
            "increment",
            "generate_itemset",
            "byte_send",
            "byte_recv",
            "message",
            "reduce_candidate",
            "broadcast_itemset",
            "fault_backoff_unit",
            "fault_stall_unit",
        ):
            if getattr(self, name) < 0:
                raise ClusterError(f"cost coefficient {name} must be >= 0")

    def node_time(self, stats: NodeStats) -> float:
        """Simulated busy time of one node for one pass.

        The fault terms mirror the canonical ones (a retransmission
        pays wire cost, a recovery re-scan pays I/O cost) plus the two
        dedicated backoff/stall coefficients; with every fault counter
        at zero they contribute exactly ``+0.0`` and the sum is
        bit-identical to the fault-free pricing.
        """
        return (
            stats.io_items * self.io_item
            + stats.extend_items * self.extend_item
            + stats.probes * self.probe
            + stats.increments * self.increment
            + stats.itemsets_generated * self.generate_itemset
            + stats.bytes_sent * self.byte_send
            + stats.bytes_received * self.byte_recv
            + (stats.messages_sent + stats.messages_received) * self.message
            + stats.fault_retries * self.message
            + stats.fault_retry_bytes * self.byte_send
            + stats.fault_rescan_items * self.io_item
            + stats.fault_restored_bytes * self.byte_recv
            + stats.fault_dup_bytes * self.byte_recv
            + stats.fault_reassigned_candidates * self.reduce_candidate
            + stats.fault_backoff_units * self.fault_backoff_unit
            + stats.fault_stall_units * self.fault_stall_unit
        )

    def coordinator_time(self, reduced_counts: int, broadcast_itemsets: int) -> float:
        """Simulated time of the end-of-pass reduce + broadcast."""
        return (
            reduced_counts * self.reduce_candidate
            + broadcast_itemsets * self.broadcast_itemset
        )
