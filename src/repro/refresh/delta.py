"""Incremental maintainer: exact frequent itemsets under delta updates.

:class:`IncrementalMiner` holds the mining state of the active window:

* ``item_counts`` — the pass-1 census (every item and every ancestor,
  deduplicated per transaction), maintained by adding the census of new
  rows and subtracting the census of evicted rows;
* ``bands`` — per pass ``k``, exact counts for the full candidate set
  of the levelwise recurrence (large + negative border, see
  :mod:`repro.refresh.borderline`), maintained by one counting pass of
  each delta over the tracked candidates.

:meth:`apply_delta` is the whole protocol: update the censuses with one
pass over the new (and expiring) rows only, then re-run the levelwise
fixpoint over the band, scanning the window only for candidates that a
promotion just made reachable.  The resulting
:class:`~repro.core.result.MiningResult` equals a from-scratch batch
:func:`~repro.core.cumulate.cumulate` over the same window — the test
suite sweeps delta sizes (including empty and window-evicting deltas),
seeds and ``PYTHONHASHSEED`` to pin exactly that.

State is checkpointable: :meth:`to_payload` serialises the counters to
a canonical JSON document and :meth:`from_payload` restores them, which
is what lets the refresh driver recover a crash without replaying the
whole window.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.core.counting import count_items
from repro.core.itemsets import Itemset, minimum_count
from repro.core.result import MiningResult, PassResult
from repro.errors import MiningError
from repro.perf.config import CountingConfig, default_counting
from repro.refresh.borderline import count_over, levelwise_fixpoint
from repro.taxonomy.hierarchy import Taxonomy
from repro.taxonomy.ops import AncestorIndex

#: Schema tag of a serialised miner state (the checkpoint payload).
STATE_SCHEMA = "repro.refresh.miner/v1"


@dataclass(frozen=True)
class DeltaStats:
    """What one :meth:`IncrementalMiner.apply_delta` did."""

    rows_added: int
    rows_evicted: int
    promotions: int
    demotions: int
    rescanned: int
    tracked: int

    def to_json(self) -> dict:
        return {
            "rows_added": self.rows_added,
            "rows_evicted": self.rows_evicted,
            "promotions": self.promotions,
            "demotions": self.demotions,
            "rescanned": self.rescanned,
            "tracked": self.tracked,
        }


class IncrementalMiner:
    """Exact incremental Cumulate over a sliding window (see module doc)."""

    def __init__(
        self,
        taxonomy: Taxonomy,
        min_support: float,
        max_k: int | None = None,
        counting: CountingConfig | None = None,
    ):
        if not 0 < min_support <= 1:
            raise MiningError(
                f"min_support must be in (0, 1], got {min_support}"
            )
        self.taxonomy = taxonomy
        self.min_support = min_support
        self.max_k = max_k
        self.counting = counting if counting is not None else default_counting()
        self.n = 0
        self.item_counts: dict[int, int] = {}
        self.bands: dict[int, dict[Itemset, int]] = {}
        self.passes: list[PassResult] = [
            PassResult(k=1, num_candidates=0, large={})
        ]

    # ------------------------------------------------------------------
    @property
    def tracked_itemsets(self) -> int:
        """Band size across passes (large + negative border)."""
        return sum(len(band) for band in self.bands.values())

    @property
    def threshold(self) -> int:
        return minimum_count(self.min_support, self.n) if self.n else 1

    def result(self) -> MiningResult:
        """The window's mining result (batch-identical structure)."""
        if self.n <= 0:
            raise MiningError("cannot mine an empty window")
        return MiningResult(
            min_support=self.min_support,
            num_transactions=self.n,
            passes=list(self.passes),
        )

    def large_itemsets(self) -> dict[Itemset, int]:
        merged: dict[Itemset, int] = {}
        for pass_result in self.passes:
            merged.update(pass_result.large)
        return merged

    # ------------------------------------------------------------------
    def apply_delta(
        self,
        added: Iterable[tuple[int, ...]],
        evicted: Iterable[tuple[int, ...]],
        window: Callable[[], Iterable[tuple[int, ...]]],
    ) -> DeltaStats:
        """Fold one delta into the window state.

        Parameters
        ----------
        added:
            The new rows entering the window (sorted, deduplicated
            tuples — the log's normalised form).
        evicted:
            Rows leaving the window (the deltas this append expired).
        window:
            Zero-argument callable yielding the **post-delta** active
            window; only consumed when a borderline promotion needs
            counts for candidates the band never tracked.
        """
        added = [tuple(row) for row in added]
        evicted = [tuple(row) for row in evicted]

        before_large = self.large_itemsets()

        # Pass-1 census: add the new rows' item+ancestor counts,
        # subtract the expiring rows'.  Counter arithmetic over exact
        # integers — zero entries are dropped so the census never grows
        # past the window's live item universe.
        full_index = AncestorIndex(self.taxonomy)
        for rows, sign in ((added, 1), (evicted, -1)):
            if not rows:
                continue
            for item, count in count_items(rows, full_index).items():
                updated = self.item_counts.get(item, 0) + sign * count
                if updated:
                    self.item_counts[item] = updated
                else:
                    self.item_counts.pop(item, None)
        self.n += len(added) - len(evicted)
        if self.n < 0:
            raise MiningError(
                f"window row count went negative ({self.n}); "
                "evictions do not match the log"
            )

        # One pass of the delta rows over every tracked candidate: the
        # band stays an exact census of the new window.
        for k, band in sorted(self.bands.items()):
            candidates = sorted(band)
            for rows, sign in ((added, 1), (evicted, -1)):
                if not rows:
                    continue
                counts = count_over(
                    rows, candidates, k, self.taxonomy, self.counting
                )
                for candidate, hits in counts.items():
                    if hits:
                        band[candidate] += sign * hits

        # Levelwise fixpoint; unknown candidates fall back to a window
        # scan (the targeted partial re-mine).
        fix = levelwise_fixpoint(
            self.item_counts,
            self.n,
            self.min_support,
            self.taxonomy,
            self.bands,
            lambda unknown, k: count_over(
                window(), unknown, k, self.taxonomy, self.counting
            ),
            max_k=self.max_k,
        )
        self.bands = fix.bands
        self.passes = fix.passes

        after_large = self.large_itemsets()
        promotions = sum(
            1 for itemset in after_large if itemset not in before_large
        )
        demotions = sum(
            1 for itemset in before_large if itemset not in after_large
        )
        return DeltaStats(
            rows_added=len(added),
            rows_evicted=len(evicted),
            promotions=promotions,
            demotions=demotions,
            rescanned=fix.total_rescanned,
            tracked=self.tracked_itemsets,
        )

    # ------------------------------------------------------------------
    # Checkpoint serialisation
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """Canonical JSON document of the full miner state."""
        return {
            "schema": STATE_SCHEMA,
            "min_support": self.min_support,
            "max_k": self.max_k,
            "n": self.n,
            "items": [
                [item, count] for item, count in sorted(self.item_counts.items())
            ],
            "bands": [
                [
                    k,
                    [
                        [list(itemset), count]
                        for itemset, count in sorted(band.items())
                    ],
                ]
                for k, band in sorted(self.bands.items())
            ],
            "passes": [
                {
                    "k": pass_result.k,
                    "num_candidates": pass_result.num_candidates,
                    "large": [
                        [list(itemset), count]
                        for itemset, count in sorted(pass_result.large.items())
                    ],
                }
                for pass_result in self.passes
            ],
        }

    @classmethod
    def from_payload(
        cls,
        payload: dict,
        taxonomy: Taxonomy,
        counting: CountingConfig | None = None,
    ) -> "IncrementalMiner":
        """Restore a checkpointed miner (inverse of :meth:`to_payload`)."""
        if payload.get("schema") != STATE_SCHEMA:
            raise MiningError(
                f"not a miner checkpoint (expected schema {STATE_SCHEMA!r}, "
                f"got {payload.get('schema')!r})"
            )
        miner = cls(
            taxonomy,
            float(payload["min_support"]),
            max_k=payload["max_k"],
            counting=counting,
        )
        miner.n = int(payload["n"])
        miner.item_counts = {
            int(item): int(count) for item, count in payload["items"]
        }
        miner.bands = {
            int(k): {
                tuple(int(i) for i in itemset): int(count)
                for itemset, count in entries
            }
            for k, entries in payload["bands"]
        }
        miner.passes = [
            PassResult(
                k=int(entry["k"]),
                num_candidates=int(entry["num_candidates"]),
                large={
                    tuple(int(i) for i in itemset): int(count)
                    for itemset, count in entry["large"]
                },
            )
            for entry in payload["passes"]
        ]
        return miner
