"""Continuous mining: append-only log → incremental maintainer → publish.

This subpackage closes the mine→snapshot→serve loop: instead of a full
batch re-mine per rule update, transactions land in an append-only
:class:`~repro.refresh.log.TransactionLog` (sealed columnar delta
segments with a sliding retention window), an
:class:`~repro.refresh.delta.IncrementalMiner` maintains exact support
counters for the frequent itemsets *plus* their negative-border
borderline band with one pass over only the new and expiring rows, and
the :class:`~repro.refresh.driver.RefreshDriver` compiles every accepted
delta into a versioned :mod:`repro.serve` snapshot committed atomically
(manifest-last) behind a ``CURRENT`` pointer.

The correctness anchor is digest equivalence: after any delta sequence
the published snapshot is byte-identical to a from-scratch batch mine
over the same window (see ``docs/incremental.md``), and a crash at any
point between delta append and pointer flip recovers to exactly those
bytes — never a torn or stale-past-rollback snapshot.
"""

from repro.refresh.delta import DeltaStats, IncrementalMiner
from repro.refresh.driver import RefreshDriver, read_pointer, window_source
from repro.refresh.log import DeltaRecord, TransactionLog

__all__ = [
    "DeltaRecord",
    "DeltaStats",
    "IncrementalMiner",
    "RefreshDriver",
    "TransactionLog",
    "read_pointer",
    "window_source",
]
