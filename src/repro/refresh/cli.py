"""``repro-refresh`` — command-line front end of the refresh tier.

Four subcommands:

* ``init`` — create an empty refresh root (log + checkpoint), taking
  the taxonomy from a file or from a synthetic dataset preset;
* ``apply`` — ingest one delta of transactions (text format, as written
  by ``repro-mine generate``) and republish the window snapshot;
* ``status`` — print the root's state (window bounds, tracked
  itemsets, the ``CURRENT`` pointer) as JSON;
* ``run`` — end-to-end exercise: synthesize a dataset, ingest a base
  delta plus ``--deltas`` follow-ups, optionally verifying each
  published snapshot byte-for-byte against a from-scratch batch mine
  (``--verify``), timing refresh vs re-mine into a
  ``BENCH_<label>.json`` report (``--bench``), and probing the final
  snapshot through the traced serving path so ``repro-slo check`` can
  gate the publish pipeline (``--requests-out``).

Failures map to the repo-wide exit codes (``repro.errors``); a
``--verify`` divergence exits 3 (mining error — the incremental result
is wrong by definition).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.datagen import generate_dataset, load_transactions_text, preset
from repro.errors import MiningError, ReproError, error_label, exit_code_for
from repro.obs.registry import MetricsRegistry
from repro.obs.requests import RequestTracer
from repro.obs.sink import EventSink
from repro.perf.history import append_history, record_from_report
from repro.refresh.driver import RefreshDriver
from repro.serve.loadgen import (
    generate_workload,
    run_direct_phase,
    write_requests,
)
from repro.taxonomy.io import load_taxonomy

#: Schema tag of a ``repro-refresh run --bench`` report.
BENCH_SCHEMA = "repro.refresh.bench/v1"


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-refresh",
        description="Incremental mining over an append-only transaction log",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    init = sub.add_parser("init", help="create an empty refresh root")
    init.add_argument("--root", required=True)
    init.add_argument(
        "--taxonomy",
        default=None,
        help="taxonomy file (as written by `repro-mine generate`); "
        "mutually exclusive with --dataset",
    )
    init.add_argument(
        "--dataset",
        default=None,
        help="preset name (R30F5 | R30F3 | R30F10) to take the taxonomy from",
    )
    init.add_argument("--scale", type=float, default=0.01)
    init.add_argument("--seed", type=int, default=1998)
    init.add_argument("--min-support", type=float, default=0.15)
    init.add_argument("--min-confidence", type=float, default=0.6)
    init.add_argument("--max-k", type=int, default=None)
    init.add_argument("--window-deltas", type=int, default=8)

    apply_ = sub.add_parser("apply", help="ingest one delta and republish")
    apply_.add_argument("--root", required=True)
    apply_.add_argument(
        "--transactions",
        required=True,
        help="transactions text file (one space-separated row per line)",
    )
    apply_.add_argument(
        "--events", default=None, help="append refresh events to this JSONL file"
    )

    status = sub.add_parser("status", help="print the root's state as JSON")
    status.add_argument("--root", required=True)

    run = sub.add_parser(
        "run", help="end-to-end: base + N deltas, verify/bench/probe"
    )
    run.add_argument("--root", required=True)
    run.add_argument("--dataset", default="R30F5")
    run.add_argument("--scale", type=float, default=0.01)
    run.add_argument("--seed", type=int, default=1998)
    run.add_argument("--base-rows", type=int, default=2000)
    run.add_argument("--deltas", type=int, default=3)
    run.add_argument("--delta-rows", type=int, default=200)
    run.add_argument("--min-support", type=float, default=0.15)
    run.add_argument("--min-confidence", type=float, default=0.6)
    run.add_argument("--max-k", type=int, default=None)
    run.add_argument("--window-deltas", type=int, default=8)
    run.add_argument(
        "--verify",
        action="store_true",
        help="after every delta, batch-mine the window from scratch and "
        "require the published snapshot to match byte-for-byte",
    )
    run.add_argument(
        "--bench",
        action="store_true",
        help="time each delta refresh against a full batch re-mine and "
        "write BENCH_<label>.json",
    )
    run.add_argument("--label", default="pr10")
    run.add_argument("--out", default="benchmarks")
    run.add_argument(
        "--history",
        default=None,
        help="append the bench record to this HISTORY.jsonl (implies --bench)",
    )
    run.add_argument(
        "--probes",
        type=int,
        default=0,
        help="after the last delta, run this many traced probe queries "
        "against the published snapshot",
    )
    run.add_argument(
        "--requests-out",
        default=None,
        help="write probe request records (JSONL) for `repro-slo check`",
    )
    run.add_argument(
        "--events", default=None, help="write refresh events to this JSONL file"
    )
    return parser


def _taxonomy_for_init(args) -> "Taxonomy":
    if (args.taxonomy is None) == (args.dataset is None):
        raise MiningError("init needs exactly one of --taxonomy / --dataset")
    if args.taxonomy is not None:
        return load_taxonomy(args.taxonomy)
    params = preset(args.dataset, scale=args.scale, seed=args.seed)
    return generate_dataset(params).taxonomy


def _cmd_init(args) -> int:
    taxonomy = _taxonomy_for_init(args)
    driver = RefreshDriver.create(
        args.root,
        taxonomy,
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        max_k=args.max_k,
        window_deltas=args.window_deltas,
    )
    print(json.dumps(driver.status(), indent=2))
    return 0


def _cmd_apply(args) -> int:
    sink = EventSink(args.events) if args.events else None
    driver = RefreshDriver.open(args.root, sink=sink)
    database = load_transactions_text(args.transactions)
    summary = driver.ingest(database)
    print(json.dumps(summary, indent=2))
    return 0


def _cmd_status(args) -> int:
    driver = RefreshDriver.open(args.root)
    print(json.dumps(driver.status(), indent=2))
    return 0


def _verify_against_batch(driver: RefreshDriver, delta_index: int) -> None:
    batch = driver.batch_snapshot()
    current = driver.current()
    if batch is None and current is None:
        return
    if (batch is None) != (current is None):
        raise MiningError(
            f"delta {delta_index}: incremental and batch disagree on "
            f"whether the window publishes at all "
            f"(incremental={'yes' if current else 'no'}, "
            f"batch={'yes' if batch else 'no'})"
        )
    if batch.to_jsonl() != current.to_jsonl():
        raise MiningError(
            f"delta {delta_index}: published snapshot diverges from the "
            f"batch oracle (incremental {current.version[:12]}… vs "
            f"batch {batch.version[:12]}…)"
        )


def _cmd_run(args) -> int:
    bench = args.bench or args.history is not None
    sink = EventSink(args.events) if args.events else None
    registry = MetricsRegistry()

    params = preset(args.dataset, scale=args.scale, seed=args.seed)
    dataset = generate_dataset(params)
    rows = list(dataset.database)
    need = args.base_rows + args.deltas * args.delta_rows
    if len(rows) < need:
        raise MiningError(
            f"dataset yields {len(rows)} rows but the run needs {need}; "
            "raise --scale or shrink the deltas"
        )

    driver = RefreshDriver.create(
        args.root,
        dataset.taxonomy,
        min_support=args.min_support,
        min_confidence=args.min_confidence,
        max_k=args.max_k,
        window_deltas=args.window_deltas,
        registry=registry,
        sink=sink,
    )

    batches = [rows[: args.base_rows]]
    offset = args.base_rows
    for _ in range(args.deltas):
        batches.append(rows[offset : offset + args.delta_rows])
        offset += args.delta_rows

    delta_reports: list[dict] = []
    for position, batch_rows in enumerate(batches):
        started = time.perf_counter()
        summary = driver.ingest(batch_rows)
        refresh_seconds = time.perf_counter() - started
        entry = {
            "index": summary["delta"],
            "rows": summary["rows"],
            "window_rows": summary["window_rows"],
            "promotions": summary["promotions"],
            "demotions": summary["demotions"],
            "rescanned": summary["rescanned"],
            "published": summary["published"],
            "version": summary["version"],
            "refresh_seconds": round(refresh_seconds, 6),
        }
        if bench:
            started = time.perf_counter()
            driver.batch_result()
            entry["batch_seconds"] = round(time.perf_counter() - started, 6)
            entry["speedup"] = (
                round(entry["batch_seconds"] / refresh_seconds, 3)
                if refresh_seconds > 0
                else 0.0
            )
        if args.verify:
            _verify_against_batch(driver, summary["delta"])
            entry["verified"] = True
        delta_reports.append(entry)
        print(
            f"delta {entry['index']}: {entry['rows']} rows in, "
            f"window {entry['window_rows']}, "
            f"{entry['promotions']}+/{entry['demotions']}- itemsets, "
            f"refresh {entry['refresh_seconds']:.3f}s"
            + (f", batch {entry['batch_seconds']:.3f}s" if bench else "")
            + (", verified" if args.verify else ""),
            file=sys.stderr,
        )

    final = driver.current()
    if args.probes > 0 and final is not None:
        tracer = RequestTracer(
            sink=sink, registry=registry, namespace="refresh-probe"
        )
        workload = generate_workload(
            final, queries=args.probes, seed=args.seed
        )
        stats, _ = run_direct_phase(
            final,
            workload,
            scoring="confidence",
            top_k=5,
            registry=registry,
            tracer=tracer,
        )
        print(
            f"probes: {stats['queries']} queries, p99 {stats['p99_ms']:.3f}ms",
            file=sys.stderr,
        )
        if args.requests_out:
            write_requests(tracer.records, args.requests_out)

    status = driver.status()
    print(json.dumps(status, indent=2))

    if bench:
        refresh_deltas = delta_reports[1:] if len(delta_reports) > 1 else delta_reports
        total_refresh = sum(e["refresh_seconds"] for e in refresh_deltas)
        total_batch = sum(e.get("batch_seconds", 0.0) for e in refresh_deltas)
        report = {
            "schema": BENCH_SCHEMA,
            "label": args.label,
            "workload": {
                "dataset": args.dataset,
                "scale": args.scale,
                "seed": args.seed,
                "base_rows": args.base_rows,
                "deltas": args.deltas,
                "delta_rows": args.delta_rows,
                "window_deltas": args.window_deltas,
                "min_support": args.min_support,
                "min_confidence": args.min_confidence,
                "max_k": args.max_k,
            },
            "deltas": delta_reports,
            "refresh_seconds": round(total_refresh, 6),
            "batch_seconds": round(total_batch, 6),
            "speedup": (
                round(total_batch / total_refresh, 3) if total_refresh > 0 else 0.0
            ),
            "final_version": None if final is None else final.version,
        }
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
        bench_path = out_dir / f"BENCH_{args.label}.json"
        bench_path.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
        print(f"wrote {bench_path}", file=sys.stderr)
        if args.history:
            record = record_from_report(report, source=bench_path.name)
            append_history(args.history, record)
            print(f"appended {record.workload_key} to {args.history}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "init":
            return _cmd_init(args)
        if args.command == "apply":
            return _cmd_apply(args)
        if args.command == "status":
            return _cmd_status(args)
        return _cmd_run(args)
    except ReproError as error:
        print(f"repro-refresh: {error_label(error)}: {error}", file=sys.stderr)
        return exit_code_for(error)


if __name__ == "__main__":
    raise SystemExit(main())
