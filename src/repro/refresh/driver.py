"""Refresh driver: delta → checkpoint → snapshot → ``CURRENT`` pointer.

The driver owns a refresh **root** directory::

    root/
      log/                    append-only delta log (repro.refresh.log)
      snapshots/snap-NNNNN.jsonl   one snapshot per published delta
      state.json              checkpoint (config + miner counters)
      CURRENT                 pointer to the live snapshot (written last)

:meth:`RefreshDriver.ingest` runs the publish protocol in a strict,
crash-safe order:

1. **append** the delta to the log (delta store durable, log manifest
   replaced atomically);
2. **apply** it to the incremental miner (one pass over the new and
   expiring rows, window scan only for borderline promotions);
3. **checkpoint** the miner to ``state.json`` (atomic replace) —
   from here the delta is accepted;
4. **purge** expired delta files (their counts are checkpointed out);
5. **publish**: compile the window's rules into a versioned
   :mod:`repro.serve` snapshot, write it atomically, then flip the
   ``CURRENT`` pointer — the manifest-last commit.

Every artifact write is atomic, so a crash between any two steps leaves
a prefix of the protocol on disk.  :meth:`RefreshDriver.open` recovers
by replaying log deltas past the checkpoint (their files are still
present — purge runs only after the checkpoint that covers them) and
re-publishing deterministically: the republished snapshot is
byte-identical to what the crashed run would have published, so a
reader of ``CURRENT`` sees either the previous snapshot or the new one,
complete, and nothing else ever.

``refresh.*`` metrics land in the shared registry and ``refresh-*``
events in the event sink, mirroring the serving tier's conventions.
"""

from __future__ import annotations

import json
import random
from collections.abc import Callable, Iterable
from itertools import chain
from pathlib import Path

from repro.core.cumulate import cumulate
from repro.core.result import MiningResult
from repro.core.rules import generate_rules
from repro.errors import StoreFormatError
from repro.obs.registry import MetricsRegistry
from repro.obs.sink import EventSink
from repro.perf.config import CountingConfig, default_counting
from repro.refresh.delta import DeltaStats, IncrementalMiner
from repro.refresh.log import DeltaRecord, TransactionLog
from repro.serve.snapshot import (
    RuleSnapshot,
    compile_snapshot,
    load_snapshot,
    write_snapshot,
)
from repro.store.atomic import atomic_write_json
from repro.taxonomy.hierarchy import Taxonomy

#: Checkpoint schema tag (the root's ``state.json``).
DRIVER_SCHEMA = "repro.refresh.state/v1"

#: ``CURRENT`` pointer schema tag.
POINTER_SCHEMA = "repro.refresh.current/v1"

STATE_NAME = "state.json"
CURRENT_NAME = "CURRENT"
SNAPSHOT_DIR = "snapshots"

#: Crash-injection stages, in protocol order (see repro.faults.refresh).
STAGES: tuple[str, ...] = (
    "after-append",
    "after-apply",
    "after-checkpoint",
    "before-pointer",
)


def snapshot_name(index: int) -> str:
    """Canonical snapshot file name for delta ``index``."""
    return f"snap-{index:05d}.jsonl"


def window_source(
    log: TransactionLog,
    delta_index: int,
    min_support: float,
    min_confidence: float,
    max_k: int | None,
) -> dict:
    """The snapshot ``source`` record for one published window.

    Shared by the driver's publish step and every batch verifier
    (``repro-refresh run --verify``, the chaos harness): byte equality
    of incremental and batch snapshots requires the header's source to
    be derived from the window alone.
    """
    start, end = log.window_bounds()
    return {
        "refresh_delta": delta_index,
        "txn_start": start,
        "txn_end": end,
        "window_rows": log.window_rows,
        "min_support": min_support,
        "min_confidence": min_confidence,
        "max_k": max_k,
    }


def read_pointer(root: str | Path) -> dict | None:
    """Load the ``CURRENT`` pointer, or ``None`` when nothing published."""
    pointer_path = Path(root) / CURRENT_NAME
    if not pointer_path.exists():
        return None
    try:
        pointer = json.loads(pointer_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise StoreFormatError(
            f"{pointer_path}: pointer is not JSON: {exc}"
        ) from exc
    if pointer.get("schema") != POINTER_SCHEMA:
        raise StoreFormatError(
            f"{pointer_path}: schema {pointer.get('schema')!r} "
            f"(this reader understands {POINTER_SCHEMA!r})"
        )
    return pointer


def current_snapshot(root: str | Path) -> RuleSnapshot | None:
    """Load (and digest-verify) the snapshot ``CURRENT`` points at."""
    pointer = read_pointer(root)
    if pointer is None:
        return None
    return load_snapshot(Path(root) / pointer["snapshot"])


class RefreshDriver:
    """Continuous refresh over one root directory (see module doc)."""

    def __init__(
        self,
        root: Path,
        log: TransactionLog,
        miner: IncrementalMiner,
        min_confidence: float,
        applied_through: int,
        counting: CountingConfig,
        registry: MetricsRegistry | None = None,
        sink: EventSink | None = None,
        injector: Callable[[str], None] | None = None,
    ):
        self.root = root
        self.log = log
        self.miner = miner
        self.min_confidence = min_confidence
        self.applied_through = applied_through
        self.counting = counting
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sink = sink
        self._injector = injector

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        root: str | Path,
        taxonomy: Taxonomy,
        min_support: float,
        min_confidence: float = 0.5,
        max_k: int | None = None,
        window_deltas: int = 8,
        counting: CountingConfig | None = None,
        registry: MetricsRegistry | None = None,
        sink: EventSink | None = None,
        injector: Callable[[str], None] | None = None,
    ) -> "RefreshDriver":
        """Initialise an empty refresh root (refuses an existing one)."""
        root = Path(root)
        root.mkdir(parents=True, exist_ok=True)
        if (root / STATE_NAME).exists():
            raise StoreFormatError(
                f"{root} already holds refresh state; use RefreshDriver.open"
            )
        counting = counting if counting is not None else default_counting()
        log = TransactionLog.create(
            root / "log", taxonomy, window_deltas=window_deltas
        )
        miner = IncrementalMiner(
            taxonomy, min_support, max_k=max_k, counting=counting
        )
        driver = cls(
            root,
            log,
            miner,
            min_confidence,
            applied_through=-1,
            counting=counting,
            registry=registry,
            sink=sink,
            injector=injector,
        )
        driver._checkpoint()
        return driver

    @classmethod
    def open(
        cls,
        root: str | Path,
        counting: CountingConfig | None = None,
        registry: MetricsRegistry | None = None,
        sink: EventSink | None = None,
        injector: Callable[[str], None] | None = None,
    ) -> "RefreshDriver":
        """Open an existing root, recovering any interrupted ingest.

        Recovery replays log deltas past the checkpoint (their rows —
        including the rows they evicted — are still on disk because
        purge only runs after the covering checkpoint), re-checkpoints,
        then re-publishes when ``CURRENT`` trails the applied state.
        All three steps are deterministic, so recovery converges to the
        bytes the interrupted run would have produced.
        """
        root = Path(root)
        state_path = root / STATE_NAME
        try:
            state = json.loads(state_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise StoreFormatError(
                f"{state_path}: not a refresh root: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise StoreFormatError(
                f"{state_path}: checkpoint is not JSON: {exc}"
            ) from exc
        if state.get("schema") != DRIVER_SCHEMA:
            raise StoreFormatError(
                f"{state_path}: schema {state.get('schema')!r} "
                f"(this reader understands {DRIVER_SCHEMA!r})"
            )
        counting = counting if counting is not None else default_counting()
        log = TransactionLog.open(root / "log")
        miner = IncrementalMiner.from_payload(
            state["miner"], log.taxonomy, counting=counting
        )
        driver = cls(
            root,
            log,
            miner,
            float(state["min_confidence"]),
            applied_through=int(state["applied_through"]),
            counting=counting,
            registry=registry,
            sink=sink,
            injector=injector,
        )
        driver._recover()
        return driver

    # ------------------------------------------------------------------
    @property
    def taxonomy(self) -> Taxonomy:
        return self.log.taxonomy

    def _crash(self, stage: str) -> None:
        if self._injector is not None:
            self._injector(stage)

    def _emit(self, type_: str, **payload) -> None:
        if self.sink is not None:
            self.sink.emit(type_, **payload)

    def _checkpoint(self) -> None:
        payload = {
            "schema": DRIVER_SCHEMA,
            "applied_through": self.applied_through,
            "min_confidence": self.min_confidence,
            "miner": self.miner.to_payload(),
        }
        atomic_write_json(self.root / STATE_NAME, payload)

    # ------------------------------------------------------------------
    def ingest(self, transactions: Iterable[Iterable[int]]) -> dict:
        """Append one delta, fold it in, and republish (see module doc)."""
        record, evicted = self.log.append(transactions)
        self._emit(
            "refresh-append",
            delta=record.index,
            rows=record.rows,
            evicts=list(record.evicts),
            sha256=record.sha256,
        )
        self._crash("after-append")
        stats = self._apply(record, evicted)
        self._crash("after-apply")
        self.applied_through = record.index
        self._checkpoint()
        self._crash("after-checkpoint")
        self.log.purge()
        published = self._publish(record.index)
        summary = {
            "delta": record.index,
            "rows": record.rows,
            "evicted_rows": stats.rows_evicted,
            "window_rows": self.log.window_rows,
            "promotions": stats.promotions,
            "demotions": stats.demotions,
            "rescanned": stats.rescanned,
            "tracked": stats.tracked,
            "published": published is not None,
            "version": None if published is None else published.version,
        }
        return summary

    def _apply(
        self, record: DeltaRecord, evicted: list[DeltaRecord]
    ) -> DeltaStats:
        added = self.log.rows(record)
        expiring = chain.from_iterable(
            self.log.rows(old) for old in evicted
        )
        stats = self.miner.apply_delta(added, expiring, self.log.iter_window)
        counters = self.registry
        counters.counter("refresh.deltas").inc()
        counters.counter("refresh.rows_added").inc(stats.rows_added)
        counters.counter("refresh.rows_evicted").inc(stats.rows_evicted)
        counters.counter("refresh.promotions").inc(stats.promotions)
        counters.counter("refresh.demotions").inc(stats.demotions)
        counters.counter("refresh.rescanned_candidates").inc(stats.rescanned)
        counters.gauge("refresh.window_rows").set(self.log.window_rows)
        counters.gauge("refresh.tracked_itemsets").set(stats.tracked)
        self._emit(
            "refresh-apply",
            delta=record.index,
            rows_added=stats.rows_added,
            rows_evicted=stats.rows_evicted,
            promotions=stats.promotions,
            demotions=stats.demotions,
            rescanned=stats.rescanned,
            tracked=stats.tracked,
        )
        return stats

    def _publish(self, index: int) -> RuleSnapshot | None:
        """Compile + commit the window snapshot; ``None`` on zero rules.

        A window whose rule set is empty (thresholds filtered everything
        out) publishes nothing and leaves ``CURRENT`` at the previous
        snapshot — deterministic, so recovery re-derives the same skip.
        """
        result = self.miner.result()
        rules = generate_rules(result, self.min_confidence, self.taxonomy)
        if not rules:
            self._emit("refresh-publish-skipped", delta=index, reason="no-rules")
            return None
        snapshot = compile_snapshot(
            rules,
            self.taxonomy,
            result=result,
            source=window_source(
                self.log,
                index,
                self.miner.min_support,
                self.min_confidence,
                self.miner.max_k,
            ),
        )
        relative = f"{SNAPSHOT_DIR}/{snapshot_name(index)}"
        write_snapshot(snapshot, self.root / relative)
        self._crash("before-pointer")
        atomic_write_json(
            self.root / CURRENT_NAME,
            {
                "schema": POINTER_SCHEMA,
                "delta": index,
                "snapshot": relative,
                "version": snapshot.version,
            },
        )
        self.registry.counter("refresh.publishes").inc()
        self.registry.gauge("refresh.rules").set(snapshot.num_rules)
        self._emit(
            "refresh-publish",
            delta=index,
            snapshot=relative,
            version=snapshot.version,
            rules=snapshot.num_rules,
        )
        return snapshot

    # ------------------------------------------------------------------
    def _recover(self) -> None:
        replayed: list[int] = []
        for record in self.log.records():
            if record.index <= self.applied_through:
                continue
            evicted = [self.log.record(index) for index in record.evicts]
            self._apply(record, evicted)
            self.applied_through = record.index
            replayed.append(record.index)
        if replayed:
            self._checkpoint()
        self.log.purge()
        republished = None
        pointer = read_pointer(self.root)
        behind = pointer is None or int(pointer["delta"]) < self.applied_through
        if self.applied_through >= 0 and behind:
            republished = self._publish(self.applied_through)
        if replayed or republished is not None:
            self.registry.counter("refresh.recoveries").inc()
            self._emit(
                "refresh-recover",
                replayed=replayed,
                republished=(
                    None if republished is None else republished.version
                ),
            )

    # ------------------------------------------------------------------
    def current(self) -> RuleSnapshot | None:
        """The live snapshot (digest-verified), or ``None``."""
        return current_snapshot(self.root)

    def status(self) -> dict:
        pointer = read_pointer(self.root)
        start, end = self.log.window_bounds()
        return {
            "applied_through": self.applied_through,
            "deltas": self.log.next_index,
            "window_rows": self.log.window_rows,
            "window_deltas": len(self.log.active()),
            "txn_start": start,
            "txn_end": end,
            "min_support": self.miner.min_support,
            "min_confidence": self.min_confidence,
            "max_k": self.miner.max_k,
            "tracked_itemsets": self.miner.tracked_itemsets,
            "current": pointer,
        }

    # ------------------------------------------------------------------
    # Batch oracles (verification surface)
    # ------------------------------------------------------------------
    def batch_result(self) -> MiningResult:
        """From-scratch batch mine over the active window (the oracle)."""
        from repro.datagen.corpus import TransactionDatabase

        database = TransactionDatabase(self.log.iter_window())
        return cumulate(
            database,
            self.taxonomy,
            self.miner.min_support,
            max_k=self.miner.max_k,
            counting=self.counting,
        )

    def batch_snapshot(self) -> RuleSnapshot | None:
        """Snapshot a batch re-mine would publish for the current window."""
        result = self.batch_result()
        rules = generate_rules(result, self.min_confidence, self.taxonomy)
        if not rules:
            return None
        return compile_snapshot(
            rules,
            self.taxonomy,
            result=result,
            source=window_source(
                self.log,
                self.applied_through,
                self.miner.min_support,
                self.min_confidence,
                self.miner.max_k,
            ),
        )

    # ------------------------------------------------------------------
    def roll_forward(
        self, service, window: int = 16, seed: int = 7, max_probes: int | None = None
    ) -> dict:
        """Publish the current snapshot through a service's rolling rollout.

        Drives :meth:`~repro.serve.shard.service.ShardedService.begin_rollout`
        with seeded probe queries until the controller reaches a terminal
        state — the same shadow-compare digest gate an operator-driven
        ``POST /rollout`` uses.
        """
        snapshot = self.current()
        if snapshot is None:
            raise StoreFormatError(f"{self.root}: nothing published yet")
        controller = service.begin_rollout(snapshot, window=window)
        rng = random.Random(seed)
        leaves = list(snapshot.leaves)
        probes = 0
        budget = max_probes if max_probes is not None else window * 4
        while controller.state == "shadow" and probes < budget:
            size = min(len(leaves), 1 + rng.randrange(3))
            basket = sorted(rng.sample(leaves, size))
            service.query(basket)
            probes += 1
        status = controller.status()
        status["probes"] = probes
        self._emit(
            "refresh-rollout",
            version=snapshot.version,
            state=status["state"],
            probes=probes,
        )
        return status
