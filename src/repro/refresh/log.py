"""Append-only transaction log with a sliding retention window.

A log is a directory of sealed **delta** stores — each delta is one
complete :mod:`repro.store` columnar store directory (CSR segments +
digest-verified manifest) holding the transactions of one append — plus
a ``log.json`` manifest recording, per delta, the covered transaction
range ``[txn_start, txn_end)``, the row count, a combined sha256 over
the delta's segment digests, and whether the delta is still inside the
retention window.

Appends are the only mutation.  Sealing is inherited from the store
writer (segments are immutable once flushed; the delta's own manifest is
committed atomically last), and the log manifest itself is only ever
replaced atomically — a reader or a recovering driver never observes a
half-written log.

Retention is count-based: the window keeps the most recent
``window_deltas`` deltas *active*; older deltas are marked inactive at
append time (recording exactly which append evicted them) but their
files stay on disk until :meth:`TransactionLog.purge` — the two-phase
split the refresh driver needs, because an evicted delta's rows must
still be readable to subtract their counts (and to replay the append
after a crash) before the checkpoint makes the eviction durable.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StoreFormatError
from repro.store.atomic import atomic_write_json
from repro.store.format import MANIFEST_NAME, TAXONOMY_NAME
from repro.store.reader import TransactionStore
from repro.store.writer import write_store
from repro.taxonomy.hierarchy import Taxonomy
from repro.taxonomy.io import load_taxonomy, save_taxonomy

#: Log manifest schema tag (the directory's ``log.json``).
LOG_SCHEMA = "repro.refresh.log/v1"

LOG_MANIFEST_NAME = "log.json"

#: Default retention: at most this many active deltas.
DEFAULT_WINDOW_DELTAS = 8


@dataclass(frozen=True)
class DeltaRecord:
    """One sealed delta of the log (a manifest entry)."""

    index: int
    dir: str
    rows: int
    txn_start: int
    txn_end: int
    sha256: str
    active: bool
    evicts: tuple[int, ...]

    def to_json(self) -> dict:
        return {
            "index": self.index,
            "dir": self.dir,
            "rows": self.rows,
            "txn_start": self.txn_start,
            "txn_end": self.txn_end,
            "sha256": self.sha256,
            "active": self.active,
            "evicts": list(self.evicts),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "DeltaRecord":
        return cls(
            index=int(payload["index"]),
            dir=str(payload["dir"]),
            rows=int(payload["rows"]),
            txn_start=int(payload["txn_start"]),
            txn_end=int(payload["txn_end"]),
            sha256=str(payload["sha256"]),
            active=bool(payload["active"]),
            evicts=tuple(int(i) for i in payload.get("evicts", [])),
        )


def delta_dir_name(index: int) -> str:
    """Canonical directory name of delta ``index`` (``delta-00000``)."""
    return f"delta-{index:05d}"


def _delta_digest(store_dir: Path) -> str:
    """Combined sha256 over a delta store's segment digests.

    The store manifest already records one digest per segment; hashing
    the ordered digest list (plus the row count) gives one stable id for
    the whole delta without re-reading the segment bytes.
    """
    manifest = json.loads(
        (store_dir / MANIFEST_NAME).read_text(encoding="utf-8")
    )
    payload = {
        "rows": manifest["rows"],
        "segments": [entry["sha256"] for entry in manifest.get("segments", [])],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class TransactionLog:
    """Append-only delta log (see module docstring).

    Construct with :meth:`create` (new directory) or :meth:`open`
    (existing log; validates the manifest schema and the active deltas'
    store digests).
    """

    def __init__(self, path: Path, manifest: dict, taxonomy: Taxonomy):
        self.path = path
        self.window_deltas = int(manifest["window_deltas"])
        self.next_index = int(manifest["next_index"])
        self.rows_appended = int(manifest["rows_appended"])
        self.deltas = [
            DeltaRecord.from_json(entry) for entry in manifest["deltas"]
        ]
        self.taxonomy = taxonomy

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: str | Path,
        taxonomy: Taxonomy,
        window_deltas: int = DEFAULT_WINDOW_DELTAS,
    ) -> "TransactionLog":
        """Initialise an empty log directory (refuses an existing log)."""
        if window_deltas < 1:
            raise StoreFormatError(
                f"window_deltas must be >= 1, got {window_deltas}"
            )
        root = Path(path)
        root.mkdir(parents=True, exist_ok=True)
        if (root / LOG_MANIFEST_NAME).exists():
            raise StoreFormatError(
                f"{root} already holds a transaction log; refusing to overwrite"
            )
        save_taxonomy(taxonomy, root / TAXONOMY_NAME)
        manifest = {
            "schema": LOG_SCHEMA,
            "window_deltas": window_deltas,
            "next_index": 0,
            "rows_appended": 0,
            "deltas": [],
        }
        atomic_write_json(root / LOG_MANIFEST_NAME, manifest)
        return cls(root, manifest, taxonomy)

    @classmethod
    def open(cls, path: str | Path, verify: bool = True) -> "TransactionLog":
        """Open an existing log; optionally verify active delta digests."""
        root = Path(path)
        manifest_path = root / LOG_MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise StoreFormatError(
                f"{manifest_path}: not a transaction log: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise StoreFormatError(
                f"{manifest_path}: log manifest is not JSON: {exc}"
            ) from exc
        if manifest.get("schema") != LOG_SCHEMA:
            raise StoreFormatError(
                f"{manifest_path}: schema {manifest.get('schema')!r} "
                f"(this reader understands {LOG_SCHEMA!r})"
            )
        taxonomy = load_taxonomy(root / TAXONOMY_NAME)
        log = cls(root, manifest, taxonomy)
        if verify:
            for record in log.active():
                digest = _delta_digest(root / record.dir)
                if digest != record.sha256:
                    raise StoreFormatError(
                        f"{root / record.dir}: delta digest mismatch — log "
                        f"records {record.sha256[:12]}…, store hashes to "
                        f"{digest[:12]}…"
                    )
        return log

    # ------------------------------------------------------------------
    def _commit(self) -> None:
        manifest = {
            "schema": LOG_SCHEMA,
            "window_deltas": self.window_deltas,
            "next_index": self.next_index,
            "rows_appended": self.rows_appended,
            "deltas": [record.to_json() for record in self.deltas],
        }
        atomic_write_json(self.path / LOG_MANIFEST_NAME, manifest)

    def append(
        self, transactions: Iterable[Iterable[int]]
    ) -> tuple[DeltaRecord, list[DeltaRecord]]:
        """Seal one delta; returns ``(record, evicted_records)``.

        The delta store is written and made durable *first*; the log
        manifest (new delta active, expired deltas flipped inactive with
        ``evicts`` recording the flip) is replaced atomically *last* —
        a crash mid-append leaves either the previous log or the new
        one, never an orphan manifest entry.
        """
        index = self.next_index
        store_dir = self.path / delta_dir_name(index)
        write_store(transactions, store_dir, meta={"log_delta": index})
        store = TransactionStore(store_dir, verify=False)
        rows = len(store)

        active = [record for record in self.deltas if record.active]
        evict = (
            active[: len(active) + 1 - self.window_deltas]
            if len(active) + 1 > self.window_deltas
            else []
        )
        evicted_indices = tuple(record.index for record in evict)
        record = DeltaRecord(
            index=index,
            dir=delta_dir_name(index),
            rows=rows,
            txn_start=self.rows_appended,
            txn_end=self.rows_appended + rows,
            sha256=_delta_digest(store_dir),
            active=True,
            evicts=evicted_indices,
        )
        evicted: list[DeltaRecord] = []
        for position, existing in enumerate(self.deltas):
            if existing.index in evicted_indices:
                flipped = DeltaRecord(
                    **{**existing.to_json(), "active": False, "evicts": existing.evicts}
                )
                self.deltas[position] = flipped
                evicted.append(flipped)
        self.deltas.append(record)
        self.next_index = index + 1
        self.rows_appended += rows
        self._commit()
        return record, evicted

    # ------------------------------------------------------------------
    def records(self) -> list[DeltaRecord]:
        """Every manifest entry, in append order."""
        return list(self.deltas)

    def record(self, index: int) -> DeltaRecord:
        for entry in self.deltas:
            if entry.index == index:
                return entry
        raise StoreFormatError(f"{self.path}: no delta {index} in the log")

    def active(self) -> list[DeltaRecord]:
        """The deltas inside the retention window, oldest first."""
        return [record for record in self.deltas if record.active]

    @property
    def window_rows(self) -> int:
        return sum(record.rows for record in self.active())

    def window_bounds(self) -> tuple[int, int]:
        """``[txn_start, txn_end)`` covered by the active window."""
        active = self.active()
        if not active:
            return (self.rows_appended, self.rows_appended)
        return (active[0].txn_start, active[-1].txn_end)

    def rows(self, record: DeltaRecord) -> Iterator[tuple[int, ...]]:
        """Stream one delta's rows (digest-verified open)."""
        store = TransactionStore(self.path / record.dir, verify=False)
        return iter(store)

    def iter_window(self) -> Iterator[tuple[int, ...]]:
        """Stream every active row, in append order — the batch oracle's
        exact input, and the scan the borderline fallback re-counts."""
        for record in self.active():
            yield from self.rows(record)

    def purge(self) -> list[int]:
        """Delete the store files of inactive deltas; returns indices.

        Idempotent and crash-safe: purged state is "directory gone", the
        manifest is untouched, so a crash mid-purge just leaves fewer
        files for the next purge.
        """
        removed: list[int] = []
        for record in self.deltas:
            if record.active:
                continue
            store_dir = self.path / record.dir
            if not store_dir.exists():
                continue
            for child in sorted(store_dir.iterdir()):
                child.unlink()
            store_dir.rmdir()
            removed.append(record.index)
        return removed

    def __repr__(self) -> str:
        return (
            f"TransactionLog(path={str(self.path)!r}, deltas={len(self.deltas)}, "
            f"active={len(self.active())}, rows={self.window_rows})"
        )
