"""Borderline-band algebra: the negative border under ancestor closure.

The incremental maintainer tracks, per pass ``k``, an exact support
count for **every** candidate Cumulate would generate from the current
large (k-1)-itemsets — the large k-itemsets *and* the candidates that
fell short (the negative border).  That band is closed under the same
generation rules as the batch algorithm (`apriori-gen` join + prune,
pass-2 ancestor-pair filter), so as long as the tracked counts are
exact over the active window, re-filtering the band by the current
threshold reproduces the batch large sets without touching the data.

A delta can *promote* borderline itemsets into the large set, which
changes the candidate sets of later passes: candidates that were never
tracked have no count, and the only exact way to obtain one is to scan
the window.  :func:`levelwise_fixpoint` runs the batch levelwise
recurrence over the band, calling back to a window scan **only for the
unknown candidates of a pass** — the targeted partial re-mine.  In the
steady state (no promotion crossing a band boundary) no callback fires
and a delta costs one pass over its own rows.

Counting semantics are identical to the batch miner's: candidates are
counted over transactions extended with the candidate-referenced
ancestors only (:class:`~repro.taxonomy.ops.AncestorIndex` with a
``keep`` universe), through the same
:class:`~repro.perf.config.CountingConfig` kernels — a candidate's
count never depends on which other candidates share the counter, which
is what makes the incremental and batch counts interchangeable.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.core.candidates import candidate_item_universe, generate_candidates
from repro.core.itemsets import Itemset, minimum_count
from repro.core.result import PassResult
from repro.perf.config import CountingConfig
from repro.taxonomy.hierarchy import Taxonomy
from repro.taxonomy.ops import AncestorIndex

#: ``count_unknown(candidates, k)`` → exact counts over the full window.
CountUnknown = Callable[[list[Itemset], int], dict[Itemset, int]]


def count_over(
    rows: Iterable[tuple[int, ...]],
    candidates: list[Itemset],
    k: int,
    taxonomy: Taxonomy,
    counting: CountingConfig,
) -> dict[Itemset, int]:
    """Exact candidate supports over ``rows`` (batch counting semantics)."""
    universe = candidate_item_universe(candidates)
    index = AncestorIndex(taxonomy, keep=universe)
    counter = counting.support_counter(candidates, k)
    for row in rows:
        counter.add_transaction(index.extend(row))
    return counter.counts


@dataclass
class Fixpoint:
    """Result of one levelwise pass over the band after a delta."""

    #: k → exact counts for every candidate of that pass (the new band).
    bands: dict[int, dict[Itemset, int]] = field(default_factory=dict)
    #: Batch-identical pass results (``PassResult`` per level).
    passes: list[PassResult] = field(default_factory=list)
    #: Candidates that needed a window scan, per pass (the re-mine cost).
    rescanned: dict[int, int] = field(default_factory=dict)

    @property
    def total_rescanned(self) -> int:
        return sum(self.rescanned.values())


def levelwise_fixpoint(
    item_counts: dict[int, int],
    num_transactions: int,
    min_support: float,
    taxonomy: Taxonomy,
    known_bands: dict[int, dict[Itemset, int]],
    count_unknown: CountUnknown,
    max_k: int | None = None,
) -> Fixpoint:
    """Re-run the batch levelwise recurrence over the tracked bands.

    ``item_counts`` is the exact pass-1 census (items + ancestors) of
    the active window; ``known_bands[k]`` holds exact window counts for
    previously tracked candidates.  Candidates of the new recurrence
    that are not in the known band are counted via ``count_unknown``.

    The returned pass structure mirrors :func:`repro.core.cumulate`
    exactly — same candidates, same counts, same stopping rule — which
    is the induction step of the incremental == batch equivalence proof
    (see ``docs/incremental.md``).
    """
    threshold = minimum_count(min_support, num_transactions)
    fix = Fixpoint()

    large_1 = {
        (item,): count
        for item, count in sorted(item_counts.items())
        if count >= threshold
    }
    fix.passes.append(
        PassResult(k=1, num_candidates=len(item_counts), large=large_1)
    )

    previous: dict[Itemset, int] = large_1
    k = 2
    while previous and (max_k is None or k <= max_k):
        candidates = generate_candidates(sorted(previous), k, taxonomy)
        if not candidates:
            break
        known = known_bands.get(k, {})
        unknown = [c for c in candidates if c not in known]
        fresh: dict[Itemset, int] = {}
        if unknown:
            fresh = count_unknown(unknown, k)
            fix.rescanned[k] = len(unknown)
        band = {
            candidate: (
                known[candidate] if candidate in known else fresh[candidate]
            )
            for candidate in candidates
        }
        fix.bands[k] = band
        large_k = {
            itemset: count
            for itemset, count in sorted(band.items())
            if count >= threshold
        }
        fix.passes.append(
            PassResult(k=k, num_candidates=len(candidates), large=large_k)
        )
        previous = large_k
        k += 1

    return fix
