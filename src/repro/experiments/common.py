"""Shared experiment configuration: scaled datasets and run helpers.

Scaling map (paper → this harness)
----------------------------------
==============================  ==============  =====================
Quantity                        Paper           Here (default)
==============================  ==============  =====================
Transactions                    3 200 000       8 000  (×1/400)
Items                           30 000          1 500  (×1/20)
Potentially large itemsets      10 000          300
Roots / fanout / |T| / |I|      30 / {3,5,10}   unchanged
                                / 10 / 5
Minimum support grid            2 % … 0.3 %     3 % … 0.75 %
Per-node memory                 256 MB          60 000 candidate slots
==============================  ==============  =====================

Transactions shrink more than items, so the support grid shifts up to
keep the candidate-volume *regimes* of the paper: at the large-support
end |C2| fits a single node (NPGM healthy, plenty of free space for
duplication); at the small end |C2| spans several nodes' memories
(NPGM fragments, TGD cannot copy whole trees) while staying below the
aggregate memory, the paper's standing assumption.

The pattern weights are squared (``pattern_weight_exponent = 2``): at
1/400 of the paper's transaction volume the Quest generator's natural
frequency skew compresses, and the load imbalance that drives §3.4
("load skew is intrinsic to the data mining problem") would all but
vanish.  Squaring the exponential weights restores the hot-itemset
dynamic range the full-size datasets exhibit.

``REPRO_TX`` / ``REPRO_NODES`` / ``REPRO_MEMORY`` environment variables
override the defaults for larger (or quicker) runs.
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.cluster.config import ClusterConfig
from repro.cluster.machine import Cluster
from repro.datagen.generator import SyntheticDataset, generate_dataset
from repro.datagen.params import GeneratorParams
from repro.errors import DataGenerationError
from repro.obs.telemetry import Telemetry
from repro.parallel.base import ParallelRun
from repro.parallel.registry import make_miner
from repro.perf.config import CountingConfig


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name)
    return default if raw is None else int(raw)


DEFAULT_NUM_TRANSACTIONS = _env_int("REPRO_TX", 8_000)
DEFAULT_NUM_NODES = _env_int("REPRO_NODES", 16)
DEFAULT_MEMORY_PER_NODE = _env_int("REPRO_MEMORY", 60_000)
DEFAULT_SEED = 1998  # the paper's year

#: The scaled analogue of the paper's 2 % … 0.3 % sweep.
MINSUP_GRID: tuple[float, ...] = (0.03, 0.02, 0.015, 0.01, 0.0075)

#: Scaled analogue of Table 6 / Figure 15's 0.3 % operating point.
SKEW_POINT_MINSUP = 0.01

#: Figure 16's two operating points (paper: 0.5 % and 0.3 %).
SPEEDUP_MINSUPS: tuple[float, ...] = (0.015, 0.01)
SPEEDUP_NODE_COUNTS: tuple[int, ...] = (4, 6, 8, 12, 16)

_STRUCTURES = {
    "R30F5": (30, 5.0),
    "R30F3": (30, 3.0),
    "R30F10": (30, 10.0),
}

DATASET_NAMES = tuple(_STRUCTURES)


def experiment_params(
    dataset: str,
    num_transactions: int | None = None,
    seed: int = DEFAULT_SEED,
) -> GeneratorParams:
    """Scaled generator parameters for one of the paper's datasets."""
    try:
        num_roots, fanout = _STRUCTURES[dataset.upper()]
    except KeyError:
        known = ", ".join(_STRUCTURES)
        raise DataGenerationError(
            f"unknown dataset {dataset!r}; known: {known}"
        ) from None
    return GeneratorParams(
        num_transactions=(
            num_transactions
            if num_transactions is not None
            else DEFAULT_NUM_TRANSACTIONS
        ),
        avg_transaction_size=10.0,
        avg_pattern_size=5.0,
        num_patterns=300,
        num_items=1_500,
        num_roots=num_roots,
        fanout=fanout,
        pattern_weight_exponent=2.0,
        seed=seed,
    )


@lru_cache(maxsize=8)
def _cached_dataset(params: GeneratorParams) -> SyntheticDataset:
    return generate_dataset(params)


def experiment_dataset(
    dataset: str,
    num_transactions: int | None = None,
    seed: int = DEFAULT_SEED,
) -> SyntheticDataset:
    """The (cached) scaled dataset; pure function of its arguments."""
    return _cached_dataset(experiment_params(dataset, num_transactions, seed))


def run_algorithm(
    dataset: SyntheticDataset,
    algorithm: str,
    min_support: float,
    num_nodes: int = DEFAULT_NUM_NODES,
    memory_per_node: int | None = DEFAULT_MEMORY_PER_NODE,
    max_k: int | None = 2,
    telemetry: Telemetry | None = None,
    counting: CountingConfig | None = None,
    executor: str = "serial",
    workers: int | None = None,
    store=None,
) -> ParallelRun:
    """Run one algorithm on a freshly built cluster.

    ``max_k`` defaults to 2 because the paper's evaluation reports
    pass 2 ("the results of the other passes are also very similar").
    When no ``telemetry`` is given a fresh one is attached, so callers
    can always read the run's metrics off ``ParallelRun.telemetry``
    instead of reaching into raw counters.  ``counting`` / ``executor``
    / ``workers`` tune host wall-clock only; results and statistics are
    independent of them.  ``store`` (an opened
    :class:`~repro.store.reader.TransactionStore`) replaces
    ``dataset.database`` as the scanned partitions — the taxonomy still
    comes from ``dataset``; digests are identical either way.
    """
    config = ClusterConfig(
        num_nodes=num_nodes,
        memory_per_node=memory_per_node,
        executor=executor,
        workers=workers,
    )
    if store is not None:
        cluster = Cluster.from_store(config, store)
    else:
        cluster = Cluster.from_database(config, dataset.database)
    cluster.attach_telemetry(telemetry if telemetry is not None else Telemetry())
    miner = make_miner(algorithm, cluster, dataset.taxonomy, counting=counting)
    try:
        return miner.mine(min_support, max_k=max_k)
    finally:
        cluster.close()
