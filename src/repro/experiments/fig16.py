"""Figure 16 — speedup ratio over node counts, normalised at 4 nodes.

Paper setting: dataset R30F5, nodes in {4, 6, 8, 12, 16}, minimum
support 0.5 % and 0.3 %, curves normalised by the 4-node time.

Expected shape: H-HPGM-FGD and H-HPGM-PGD near-linear; H-HPGM clearly
sub-linear (skew concentrates the routed fragments on few nodes and the
pass lasts as long as its hottest node); TGD in between — when free
memory is tight its whole-tree grain cannot duplicate and it tracks
H-HPGM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    DEFAULT_MEMORY_PER_NODE,
    SPEEDUP_MINSUPS,
    SPEEDUP_NODE_COUNTS,
    experiment_dataset,
    run_algorithm,
)
from repro.metrics.speedup import speedup_curve
from repro.metrics.tables import format_table

ALGORITHMS: tuple[str, ...] = (
    "H-HPGM",
    "H-HPGM-TGD",
    "H-HPGM-PGD",
    "H-HPGM-FGD",
)


@dataclass(frozen=True)
class Fig16Curve:
    algorithm: str
    min_support: float
    times: dict[int, float]
    speedups: dict[int, float]


@dataclass(frozen=True)
class Fig16Result:
    dataset: str
    baseline_nodes: int
    curves: tuple[Fig16Curve, ...]

    def to_chart(self) -> str:
        """ASCII speedup curves with the ideal-linearity reference."""
        from repro.metrics.charts import line_chart

        blocks = []
        for min_support in dict.fromkeys(c.min_support for c in self.curves):
            selected = [c for c in self.curves if c.min_support == min_support]
            series: dict[str, list[tuple[float, float]]] = {
                "ideal": [
                    (float(n), float(n)) for n in sorted(selected[0].speedups)
                ]
            }
            for curve in selected:
                series[curve.algorithm] = sorted(curve.speedups.items())
            blocks.append(
                line_chart(
                    series,
                    title=(
                        f"Figure 16 ({self.dataset}, minsup={min_support:.2%}): "
                        "speedup vs nodes"
                    ),
                    x_label="nodes",
                    y_label="speedup",
                )
            )
        return "\n\n".join(blocks)

    def to_table(self) -> str:
        blocks = []
        for min_support in dict.fromkeys(c.min_support for c in self.curves):
            selected = [c for c in self.curves if c.min_support == min_support]
            node_counts = sorted(selected[0].speedups)
            rows = []
            for nodes in node_counts:
                row: list[object] = [nodes, float(nodes)]
                for curve in selected:
                    row.append(curve.speedups[nodes])
                rows.append(row)
            blocks.append(
                format_table(
                    ["nodes", "ideal"] + [c.algorithm for c in selected],
                    rows,
                    title=(
                        f"Figure 16 — speedup ratio, {self.dataset}, "
                        f"minsup={min_support:.2%} "
                        f"(normalised at {self.baseline_nodes} nodes)"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run(
    dataset: str = "R30F5",
    min_supports: tuple[float, ...] = SPEEDUP_MINSUPS,
    node_counts: tuple[int, ...] = SPEEDUP_NODE_COUNTS,
    memory_per_node: int | None = DEFAULT_MEMORY_PER_NODE,
    algorithms: tuple[str, ...] = ALGORITHMS,
) -> Fig16Result:
    """Sweep node counts at each support level; normalise at the smallest."""
    data = experiment_dataset(dataset)
    baseline = min(node_counts)
    curves = []
    for min_support in min_supports:
        for algorithm in algorithms:
            times: dict[int, float] = {}
            for num_nodes in node_counts:
                outcome = run_algorithm(
                    data,
                    algorithm,
                    min_support,
                    num_nodes=num_nodes,
                    memory_per_node=memory_per_node,
                )
                times[num_nodes] = outcome.stats.pass_stats(2).elapsed
            curves.append(
                Fig16Curve(
                    algorithm=algorithm,
                    min_support=min_support,
                    times=times,
                    speedups=speedup_curve(times, baseline),
                )
            )
    return Fig16Result(
        dataset=dataset, baseline_nodes=baseline, curves=tuple(curves)
    )


def main() -> None:
    result = run()
    print(result.to_table())
    print()
    print(result.to_chart())


if __name__ == "__main__":
    main()
