"""Experiment harness: one module per table/figure of the evaluation.

Every module exposes a ``run(...)`` function returning a result object
with the measured rows and a ``main()`` that prints the same rows the
paper reports (via :func:`repro.metrics.format_table`):

* :mod:`~repro.experiments.table6` — average received message volume
  per node, HPGM vs H-HPGM (Table 6).
* :mod:`~repro.experiments.fig13`  — pass-2 execution time, HPGM vs
  H-HPGM, varying minimum support (Figure 13).
* :mod:`~repro.experiments.fig14`  — pass-2 execution time of NPGM and
  the H-HPGM family, varying minimum support (Figure 14).
* :mod:`~repro.experiments.fig15`  — per-node hash-probe distribution
  (Figure 15).
* :mod:`~repro.experiments.fig16`  — speedup ratio over node counts
  (Figure 16).
* :mod:`~repro.experiments.report` — runs everything and emits the
  markdown that EXPERIMENTS.md records.

Scaling: the paper's datasets (3.2 M transactions, 30 000 items) are
shrunk to laptop size (default 8 000 transactions, 1 500 items, same
root count / fanout structure) and the minimum-support grid is shifted
accordingly; :mod:`~repro.experiments.common` documents the mapping.
"""

from repro.experiments.common import (
    DEFAULT_MEMORY_PER_NODE,
    DEFAULT_NUM_NODES,
    DEFAULT_NUM_TRANSACTIONS,
    MINSUP_GRID,
    experiment_dataset,
    experiment_params,
    run_algorithm,
)

__all__ = [
    "DEFAULT_MEMORY_PER_NODE",
    "DEFAULT_NUM_NODES",
    "DEFAULT_NUM_TRANSACTIONS",
    "MINSUP_GRID",
    "experiment_dataset",
    "experiment_params",
    "run_algorithm",
]
