"""Figure 14 — pass-2 execution time of the proposed algorithms.

Paper setting: NPGM, H-HPGM, H-HPGM-TGD, H-HPGM-PGD, H-HPGM-FGD on 16
nodes, minimum support swept downward, per-node memory bounded.

Expected shape:

* NPGM degrades sharply once |C2| overflows one node's memory (its
  fragment count multiplies I/O and probing);
* the duplication variants beat H-HPGM wherever free memory exists;
* TGD converges to H-HPGM at small support (whole trees no longer fit);
* FGD is the best performer across the whole range.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    DEFAULT_MEMORY_PER_NODE,
    DEFAULT_NUM_NODES,
    MINSUP_GRID,
    experiment_dataset,
    run_algorithm,
)
from repro.metrics.tables import format_table

ALGORITHMS: tuple[str, ...] = (
    "NPGM",
    "H-HPGM",
    "H-HPGM-TGD",
    "H-HPGM-PGD",
    "H-HPGM-FGD",
)


@dataclass(frozen=True)
class Fig14Point:
    dataset: str
    min_support: float
    algorithm: str
    elapsed: float
    fragments: int
    duplicated: int
    num_candidates: int

    @property
    def duplicated_fraction(self) -> float:
        """|Ck^D| / |Ck| — how much of the candidate set was copied."""
        if self.num_candidates == 0:
            return 0.0
        return self.duplicated / self.num_candidates


@dataclass(frozen=True)
class Fig14Result:
    num_nodes: int
    memory_per_node: int | None
    points: tuple[Fig14Point, ...]

    def series(self, dataset: str, algorithm: str) -> list[tuple[float, float]]:
        return [
            (p.min_support, p.elapsed)
            for p in self.points
            if p.dataset == dataset and p.algorithm == algorithm
        ]

    def point(self, dataset: str, min_support: float, algorithm: str) -> Fig14Point:
        for p in self.points:
            if (
                p.dataset == dataset
                and p.min_support == min_support
                and p.algorithm == algorithm
            ):
                return p
        raise KeyError((dataset, min_support, algorithm))

    def to_chart(self) -> str:
        """ASCII rendering of the figure (one chart per dataset)."""
        from repro.metrics.charts import line_chart

        blocks = []
        for dataset in dict.fromkeys(p.dataset for p in self.points):
            blocks.append(
                line_chart(
                    {
                        algorithm: [
                            (support * 100, elapsed)
                            for support, elapsed in self.series(dataset, algorithm)
                        ]
                        for algorithm in ALGORITHMS
                    },
                    title=f"Figure 14 ({dataset}): pass-2 time vs minsup",
                    x_label="minsup (%)",
                    y_label="simulated s",
                )
            )
        return "\n\n".join(blocks)

    def to_table(self) -> str:
        blocks = []
        for dataset in dict.fromkeys(p.dataset for p in self.points):
            rows = []
            for min_support in dict.fromkeys(
                p.min_support for p in self.points if p.dataset == dataset
            ):
                row: list[object] = [f"{min_support:.2%}"]
                for algorithm in ALGORITHMS:
                    try:
                        row.append(self.point(dataset, min_support, algorithm).elapsed)
                    except KeyError:
                        row.append(float("nan"))
                rows.append(row)
            blocks.append(
                format_table(
                    ["minsup"] + [f"{a} (s)" for a in ALGORITHMS],
                    rows,
                    title=(
                        f"Figure 14 — pass-2 execution time, {dataset}, "
                        f"{self.num_nodes} nodes, M={self.memory_per_node}"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run(
    datasets: tuple[str, ...] = ("R30F5", "R30F3", "R30F10"),
    min_supports: tuple[float, ...] = MINSUP_GRID,
    num_nodes: int = DEFAULT_NUM_NODES,
    memory_per_node: int | None = DEFAULT_MEMORY_PER_NODE,
    algorithms: tuple[str, ...] = ALGORITHMS,
) -> Fig14Result:
    """Sweep min_support for the five proposed algorithms."""
    points = []
    for dataset in datasets:
        data = experiment_dataset(dataset)
        for min_support in min_supports:
            for algorithm in algorithms:
                outcome = run_algorithm(
                    data,
                    algorithm,
                    min_support,
                    num_nodes=num_nodes,
                    memory_per_node=memory_per_node,
                )
                pass2 = outcome.stats.pass_stats(2)
                points.append(
                    Fig14Point(
                        dataset=dataset,
                        min_support=min_support,
                        algorithm=algorithm,
                        elapsed=pass2.elapsed,
                        fragments=pass2.fragments,
                        duplicated=pass2.duplicated_candidates,
                        num_candidates=pass2.num_candidates,
                    )
                )
    return Fig14Result(
        num_nodes=num_nodes, memory_per_node=memory_per_node, points=tuple(points)
    )


def main() -> None:
    result = run()
    print(result.to_table())
    print()
    print(result.to_chart())


if __name__ == "__main__":
    main()
