"""Figure 15 — per-node hash-probe distribution (workload skew).

Paper setting: R30F5, minimum support 0.3 %, 16 nodes, pass 2; one bar
chart per algorithm showing each node's probe count.

Expected shape: H-HPGM "largely fractured" (strong skew); TGD flatter
but limited by its coarse grain; PGD flatter still; FGD the flattest.
Beyond the bars, the reproduction reports the coefficient of variation
and max/mean ratio of each distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    DEFAULT_MEMORY_PER_NODE,
    DEFAULT_NUM_NODES,
    SKEW_POINT_MINSUP,
    experiment_dataset,
    run_algorithm,
)
from repro.metrics.balance import BalanceSummary, balance_summary
from repro.metrics.tables import format_table

ALGORITHMS: tuple[str, ...] = (
    "H-HPGM",
    "H-HPGM-TGD",
    "H-HPGM-PGD",
    "H-HPGM-FGD",
)


@dataclass(frozen=True)
class Fig15Series:
    algorithm: str
    probes_per_node: tuple[int, ...]
    balance: BalanceSummary


@dataclass(frozen=True)
class Fig15Result:
    dataset: str
    min_support: float
    num_nodes: int
    series: tuple[Fig15Series, ...]

    def to_chart(self) -> str:
        """Per-algorithm bar charts of the node distribution."""
        from repro.metrics.charts import bar_chart

        blocks = []
        for series in self.series:
            blocks.append(
                bar_chart(
                    {
                        f"node {node}": probes
                        for node, probes in enumerate(series.probes_per_node)
                    },
                    title=f"{series.algorithm} — probes per node",
                )
            )
        return "\n\n".join(blocks)

    def to_table(self) -> str:
        per_node_rows = []
        for node in range(self.num_nodes):
            row: list[object] = [node]
            for series in self.series:
                row.append(series.probes_per_node[node])
            per_node_rows.append(row)
        distribution = format_table(
            ["node"] + [s.algorithm for s in self.series],
            per_node_rows,
            title=(
                f"Figure 15 — candidate probes per node "
                f"({self.dataset}, minsup={self.min_support:.2%}, pass 2)"
            ),
        )
        summary = format_table(
            ["algorithm", "min", "max", "mean", "cv", "max/mean"],
            [
                [
                    s.algorithm,
                    s.balance.minimum,
                    s.balance.maximum,
                    s.balance.mean,
                    s.balance.cv,
                    s.balance.max_mean,
                ]
                for s in self.series
            ],
            title="Workload balance summary",
        )
        return distribution + "\n\n" + summary


def run(
    dataset: str = "R30F5",
    min_support: float = SKEW_POINT_MINSUP,
    num_nodes: int = DEFAULT_NUM_NODES,
    memory_per_node: int | None = DEFAULT_MEMORY_PER_NODE,
    algorithms: tuple[str, ...] = ALGORITHMS,
) -> Fig15Result:
    """Measure the per-node probe distribution of each algorithm.

    The distribution is read from the telemetry registry
    (``probe.count{k=2, node=n}``), the same series a live dashboard
    would plot; the reconciliation tests pin it to the raw counters.
    """
    data = experiment_dataset(dataset)
    series = []
    for algorithm in algorithms:
        outcome = run_algorithm(
            data,
            algorithm,
            min_support,
            num_nodes=num_nodes,
            memory_per_node=memory_per_node,
        )
        registry = outcome.telemetry.registry
        probes = tuple(
            int(registry.value("probe.count", k=2, node=node))
            for node in range(num_nodes)
        )
        series.append(
            Fig15Series(
                algorithm=algorithm,
                probes_per_node=probes,
                balance=balance_summary(probes),
            )
        )
    return Fig15Result(
        dataset=dataset,
        min_support=min_support,
        num_nodes=num_nodes,
        series=tuple(series),
    )


def main() -> None:
    result = run()
    print(result.to_table())
    print()
    print(result.to_chart())


if __name__ == "__main__":
    main()
