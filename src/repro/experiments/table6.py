"""Table 6 — average received message volume per node, HPGM vs H-HPGM.

Paper setting: dataset R30F5, minimum support 0.3 %, pass 2, nodes in
{8, 12, 16}.  Reported quantity: mean bytes received per node.  The
paper's numbers (MB): HPGM 360.7 / 251.9 / 193.3 vs H-HPGM 12.5 / 9.6 /
7.8 — H-HPGM receives 25–30× less.  The reproduction checks the
*ratio*, not the absolute megabytes (the data is scaled down).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.cluster.stats import RunStats
from repro.experiments.common import (
    DEFAULT_MEMORY_PER_NODE,
    SKEW_POINT_MINSUP,
    experiment_dataset,
    run_algorithm,
)
from repro.metrics.tables import format_table

#: Paper values for reference rows (MB received per node).
PAPER_TABLE6 = {
    8: {"HPGM": 360.7, "H-HPGM": 12.5},
    12: {"HPGM": 251.9, "H-HPGM": 9.6},
    16: {"HPGM": 193.3, "H-HPGM": 7.8},
}


@dataclass(frozen=True)
class Table6Row:
    """One (node count) row of the table."""

    num_nodes: int
    hpgm_bytes_per_node: float
    hhpgm_bytes_per_node: float

    @property
    def ratio(self) -> float:
        """HPGM volume relative to H-HPGM (paper: 25–30×)."""
        if self.hhpgm_bytes_per_node == 0:
            return float("inf")
        return self.hpgm_bytes_per_node / self.hhpgm_bytes_per_node


@dataclass(frozen=True)
class Table6Result:
    dataset: str
    min_support: float
    rows: tuple[Table6Row, ...]
    #: Full per-run statistics in run order (HPGM then H-HPGM per node
    #: count), for the benchmark baseline and regression diffing.
    runs: tuple[RunStats, ...] = ()

    def to_dict(self) -> dict:
        return {
            "experiment": "table6",
            "dataset": self.dataset,
            "min_support": self.min_support,
            "rows": [
                {
                    "num_nodes": row.num_nodes,
                    "hpgm_bytes_per_node": row.hpgm_bytes_per_node,
                    "hhpgm_bytes_per_node": row.hhpgm_bytes_per_node,
                    "ratio": row.ratio,
                }
                for row in self.rows
            ],
            "runs": [run.to_dict() for run in self.runs],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_table(self) -> str:
        headers = [
            "# of nodes",
            "HPGM (KB/node)",
            "H-HPGM (KB/node)",
            "ratio",
            "paper ratio",
        ]
        body = []
        for row in self.rows:
            paper = PAPER_TABLE6.get(row.num_nodes)
            paper_ratio = (
                paper["HPGM"] / paper["H-HPGM"] if paper is not None else float("nan")
            )
            body.append(
                [
                    row.num_nodes,
                    row.hpgm_bytes_per_node / 1024.0,
                    row.hhpgm_bytes_per_node / 1024.0,
                    row.ratio,
                    paper_ratio,
                ]
            )
        return format_table(
            headers,
            body,
            title=(
                f"Table 6 — avg received message volume per node "
                f"({self.dataset}, minsup={self.min_support:.2%}, pass 2)"
            ),
        )


def run(
    dataset: str = "R30F5",
    min_support: float = SKEW_POINT_MINSUP,
    node_counts: tuple[int, ...] = (8, 12, 16),
    memory_per_node: int | None = DEFAULT_MEMORY_PER_NODE,
) -> Table6Result:
    """Measure pass-2 received bytes for HPGM and H-HPGM.

    The reported quantity is read from the telemetry registry
    (``net.bytes_received{k=2}`` summed over nodes) rather than from the
    raw ``NodeStats`` counters; the reconciliation tests pin the two
    views to each other.
    """
    data = experiment_dataset(dataset)
    rows = []
    runs = []
    for num_nodes in node_counts:
        per_algorithm = {}
        for algorithm in ("HPGM", "H-HPGM"):
            outcome = run_algorithm(
                data,
                algorithm,
                min_support,
                num_nodes=num_nodes,
                memory_per_node=memory_per_node,
            )
            registry = outcome.telemetry.registry
            per_algorithm[algorithm] = (
                registry.total("net.bytes_received", k=2) / num_nodes
            )
            runs.append(outcome.stats)
        rows.append(
            Table6Row(
                num_nodes=num_nodes,
                hpgm_bytes_per_node=per_algorithm["HPGM"],
                hhpgm_bytes_per_node=per_algorithm["H-HPGM"],
            )
        )
    return Table6Result(
        dataset=dataset,
        min_support=min_support,
        rows=tuple(rows),
        runs=tuple(runs),
    )


def main() -> None:
    print(run().to_table())


if __name__ == "__main__":
    main()
