"""Figure 13 — pass-2 execution time, HPGM vs H-HPGM, varying support.

Paper setting: all three datasets, 16 nodes, minimum support swept
downward.  Expected shape: H-HPGM beats HPGM at every support level
(the gap widens as support falls, since HPGM ships every k-itemset of
every extended transaction) and both grow as support shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    DEFAULT_MEMORY_PER_NODE,
    DEFAULT_NUM_NODES,
    MINSUP_GRID,
    experiment_dataset,
    run_algorithm,
)
from repro.metrics.tables import format_table

ALGORITHMS: tuple[str, ...] = ("HPGM", "H-HPGM")


@dataclass(frozen=True)
class Fig13Point:
    dataset: str
    min_support: float
    algorithm: str
    elapsed: float
    bytes_received: int


@dataclass(frozen=True)
class Fig13Result:
    num_nodes: int
    points: tuple[Fig13Point, ...]

    def series(self, dataset: str, algorithm: str) -> list[tuple[float, float]]:
        """(min_support, elapsed) points of one curve, support descending."""
        return [
            (p.min_support, p.elapsed)
            for p in self.points
            if p.dataset == dataset and p.algorithm == algorithm
        ]

    def to_chart(self) -> str:
        """ASCII rendering of the figure (one chart per dataset)."""
        from repro.metrics.charts import line_chart

        blocks = []
        for dataset in dict.fromkeys(p.dataset for p in self.points):
            blocks.append(
                line_chart(
                    {
                        algorithm: [
                            (support * 100, elapsed)
                            for support, elapsed in self.series(dataset, algorithm)
                        ]
                        for algorithm in ALGORITHMS
                    },
                    title=f"Figure 13 ({dataset}): pass-2 time vs minsup",
                    x_label="minsup (%)",
                    y_label="simulated s",
                )
            )
        return "\n\n".join(blocks)

    def to_table(self) -> str:
        blocks = []
        for dataset in dict.fromkeys(p.dataset for p in self.points):
            rows = []
            for min_support in dict.fromkeys(
                p.min_support for p in self.points if p.dataset == dataset
            ):
                row: list[object] = [f"{min_support:.2%}"]
                for algorithm in ALGORITHMS:
                    match = [
                        p
                        for p in self.points
                        if p.dataset == dataset
                        and p.min_support == min_support
                        and p.algorithm == algorithm
                    ]
                    row.append(match[0].elapsed if match else float("nan"))
                rows.append(row)
            blocks.append(
                format_table(
                    ["minsup"] + [f"{a} (s)" for a in ALGORITHMS],
                    rows,
                    title=(
                        f"Figure 13 — pass-2 execution time, {dataset}, "
                        f"{self.num_nodes} nodes"
                    ),
                )
            )
        return "\n\n".join(blocks)


def run(
    datasets: tuple[str, ...] = ("R30F5", "R30F3", "R30F10"),
    min_supports: tuple[float, ...] = MINSUP_GRID,
    num_nodes: int = DEFAULT_NUM_NODES,
    memory_per_node: int | None = DEFAULT_MEMORY_PER_NODE,
) -> Fig13Result:
    """Sweep min_support for HPGM and H-HPGM on each dataset."""
    points = []
    for dataset in datasets:
        data = experiment_dataset(dataset)
        for min_support in min_supports:
            for algorithm in ALGORITHMS:
                outcome = run_algorithm(
                    data,
                    algorithm,
                    min_support,
                    num_nodes=num_nodes,
                    memory_per_node=memory_per_node,
                )
                pass2 = outcome.stats.pass_stats(2)
                points.append(
                    Fig13Point(
                        dataset=dataset,
                        min_support=min_support,
                        algorithm=algorithm,
                        elapsed=pass2.elapsed,
                        bytes_received=pass2.total_bytes_received,
                    )
                )
    return Fig13Result(num_nodes=num_nodes, points=tuple(points))


def main() -> None:
    result = run()
    print(result.to_table())
    print()
    print(result.to_chart())


if __name__ == "__main__":
    main()
