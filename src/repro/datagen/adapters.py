"""Real-dataset adapters: CSV files → taxonomy + transactions.

The synthetic generator covers the paper's experiments; these adapters
bring two common *real* dataset shapes into the same id space so every
downstream surface (mining, store, serving, refresh) runs on them
unchanged:

* :func:`load_attribute_csv` — attribute/value tables in the UCI style
  (e.g. the mushroom dataset): every column is a categorical attribute
  and every row one record.  The induced taxonomy is two-level —
  one root per **attribute** and one leaf per observed
  ``(attribute, value)`` pair — so a generalized rule can trade a
  specific value for "any value of this attribute".
* :func:`load_basket_csv` — market-basket exports of labelled items,
  one basket per line.  Labels of the form ``group/item`` induce one
  root per group and one leaf per distinct label; deeper paths
  (``a/b/c``) chain interior nodes the same way.

Both adapters are **deterministic**: ids are assigned by sorted label
order, never by first-seen or hash order, so the same file maps to the
same taxonomy and transactions on every run and under every
``PYTHONHASHSEED`` — the property all digest gates in this repo lean
on.  No third-party readers: the CSV dialects involved are plain
``str.split`` territory, and keeping the adapters stdlib honours the
no-new-dependencies rule.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path

from repro.datagen.corpus import TransactionDatabase
from repro.errors import DataGenerationError
from repro.taxonomy.hierarchy import Taxonomy


@dataclass(frozen=True)
class AdaptedDataset:
    """A real dataset lifted into the repo's integer id space."""

    #: The induced classification hierarchy.
    taxonomy: Taxonomy
    #: One transaction per input record, leaf ids only.
    database: TransactionDatabase
    #: id → human-readable label, for every node of the taxonomy.
    labels: dict[int, str]

    @property
    def ids(self) -> dict[str, int]:
        """label → id (inverse of :attr:`labels`)."""
        return {label: item for item, label in self.labels.items()}


def _read_rows(path: str | Path, delimiter: str) -> list[list[str]]:
    target = Path(path)
    try:
        text = target.read_text(encoding="utf-8")
    except OSError as exc:
        raise DataGenerationError(f"{target}: cannot read dataset: {exc}") from exc
    rows = [
        [cell.strip() for cell in row]
        for row in csv.reader(text.splitlines(), delimiter=delimiter)
        if row and any(cell.strip() for cell in row)
    ]
    if not rows:
        raise DataGenerationError(f"{target}: dataset is empty")
    return rows


def load_attribute_csv(
    path: str | Path,
    delimiter: str = ",",
    header: bool = True,
    missing: str = "?",
) -> AdaptedDataset:
    """Adapt a categorical attribute table (UCI mushroom shape).

    Every column becomes a root ("the attribute"), every observed
    ``(attribute, value)`` pair a leaf under it, and every row the
    transaction of its cells' leaves.  Cells equal to ``missing`` are
    skipped.  Without a header, attributes are named ``col0..colN``.
    """
    rows = _read_rows(path, delimiter)
    if header:
        attributes = rows[0]
        records = rows[1:]
        if not records:
            raise DataGenerationError(f"{path}: header but no data rows")
    else:
        attributes = [f"col{position}" for position in range(len(rows[0]))]
        records = rows
    if len(set(attributes)) != len(attributes):
        raise DataGenerationError(f"{path}: duplicate attribute names in header")

    width = len(attributes)
    pairs: set[tuple[str, str]] = set()
    for number, record in enumerate(records, start=1):
        if len(record) != width:
            raise DataGenerationError(
                f"{path}: row {number} has {len(record)} cells, "
                f"header declares {width}"
            )
        for attribute, value in zip(attributes, record):
            if value != missing:
                pairs.add((attribute, value))

    # Deterministic ids: sorted attribute names take 0..A-1, sorted
    # (attribute, value) pairs take A.. — never first-seen order.
    sorted_attributes = sorted(attributes)
    root_ids = {name: position for position, name in enumerate(sorted_attributes)}
    parents: dict[int, int | None] = {
        root_ids[name]: None for name in sorted_attributes
    }
    labels: dict[int, str] = {root_ids[name]: name for name in sorted_attributes}
    leaf_ids: dict[tuple[str, str], int] = {}
    for position, (attribute, value) in enumerate(sorted(pairs)):
        item = len(sorted_attributes) + position
        leaf_ids[(attribute, value)] = item
        parents[item] = root_ids[attribute]
        labels[item] = f"{attribute}={value}"

    transactions = [
        tuple(
            leaf_ids[(attribute, value)]
            for attribute, value in zip(attributes, record)
            if value != missing
        )
        for record in records
    ]
    return AdaptedDataset(
        taxonomy=Taxonomy(parents),
        database=TransactionDatabase(transactions),
        labels=labels,
    )


def load_basket_csv(
    path: str | Path,
    delimiter: str = ",",
    separator: str = "/",
) -> AdaptedDataset:
    """Adapt a basket file: one line per basket, labelled items as cells.

    A label's ``separator``-split path induces the hierarchy: the item
    ``dairy/milk`` is a leaf under the root ``dairy``; deeper paths
    chain interior nodes (``food/dairy/milk`` puts ``food/dairy`` under
    ``food``).  Ids are assigned over the sorted set of all path
    prefixes, so the mapping is independent of row order.
    """
    rows = _read_rows(path, delimiter)
    prefixes: set[str] = set()
    for row in rows:
        for label in row:
            parts = [part for part in label.split(separator) if part]
            if not parts:
                raise DataGenerationError(
                    f"{path}: empty item label in basket {row!r}"
                )
            for depth in range(1, len(parts) + 1):
                prefixes.add(separator.join(parts[:depth]))

    ids = {label: position for position, label in enumerate(sorted(prefixes))}
    parents: dict[int, int | None] = {}
    for label, item in ids.items():
        head, _, _tail = label.rpartition(separator)
        parents[item] = ids[head] if head else None
    labels = {item: label for label, item in ids.items()}

    transactions = [
        tuple(
            ids[separator.join(part for part in label.split(separator) if part)]
            for label in row
        )
        for row in rows
    ]
    return AdaptedDataset(
        taxonomy=Taxonomy(parents),
        database=TransactionDatabase(transactions),
        labels=labels,
    )
