"""Synthetic retail-transaction generation (Srikant–Agrawal method).

The paper evaluates on synthetic datasets "emulating retail transactions"
generated "based on the method described in [SA95]" — the classic Quest
generator extended with a classification hierarchy.  This subpackage
reimplements that recipe:

* :mod:`~repro.datagen.params` — :class:`GeneratorParams` plus the
  paper's named presets (R30F5, R30F3, R30F10) with a scale knob.
* :mod:`~repro.datagen.generator` — potentially-large-itemset driven
  transaction synthesis over the taxonomy's leaves.
* :mod:`~repro.datagen.corpus` — :class:`TransactionDatabase` container.
* :mod:`~repro.datagen.partition` — horizontal partitioning across the
  cluster's local disks, with optional placement skew for ablations.
* :mod:`~repro.datagen.io` — text and binary on-disk formats.
* :mod:`~repro.datagen.adapters` — real-dataset CSV loaders (attribute
  tables, labelled baskets) with deterministic taxonomy induction.
"""

from repro.datagen.adapters import (
    AdaptedDataset,
    load_attribute_csv,
    load_basket_csv,
)
from repro.datagen.corpus import TransactionDatabase
from repro.datagen.generator import SyntheticDataset, generate_dataset, generate_transactions
from repro.datagen.io import (
    load_transactions_binary,
    load_transactions_text,
    save_transactions_binary,
    save_transactions_text,
)
from repro.datagen.params import (
    DATASET_PRESETS,
    GeneratorParams,
    preset,
)
from repro.datagen.partition import partition_evenly, partition_weighted

__all__ = [
    "AdaptedDataset",
    "DATASET_PRESETS",
    "GeneratorParams",
    "SyntheticDataset",
    "TransactionDatabase",
    "generate_dataset",
    "generate_transactions",
    "load_attribute_csv",
    "load_basket_csv",
    "load_transactions_binary",
    "load_transactions_text",
    "partition_evenly",
    "partition_weighted",
    "preset",
    "save_transactions_binary",
    "save_transactions_text",
]
