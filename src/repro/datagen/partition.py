"""Horizontal partitioning of the transaction database over node disks.

The paper spreads transactions evenly over the local disks of all nodes
("The transaction data is evenly spread over the local disks of all the
nodes").  :func:`partition_evenly` reproduces that.  For the placement-
skew ablation, :func:`partition_weighted` distributes transactions
proportionally to arbitrary node weights instead.

Note this is *placement* skew (how many transactions each node reads);
the *data* skew the paper's load-balancing section targets — frequency
skew among itemsets — comes from the generator's exponential pattern
weights and is present regardless of placement.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.datagen.corpus import TransactionDatabase
from repro.errors import DataGenerationError


def partition_evenly(
    database: TransactionDatabase, num_nodes: int
) -> list[TransactionDatabase]:
    """Round-robin the transactions over ``num_nodes`` local databases.

    Round-robin (rather than contiguous splitting) decorrelates node
    assignment from generation order, matching an even bulk load.
    """
    if num_nodes <= 0:
        raise DataGenerationError(f"num_nodes must be positive, got {num_nodes}")
    buckets: list[list[tuple[int, ...]]] = [[] for _ in range(num_nodes)]
    for index, transaction in enumerate(database):
        buckets[index % num_nodes].append(transaction)
    return [TransactionDatabase(bucket) for bucket in buckets]


def partition_weighted(
    database: TransactionDatabase,
    weights: Sequence[float],
) -> list[TransactionDatabase]:
    """Distribute transactions proportionally to per-node ``weights``.

    Uses largest-remainder apportionment so the bucket sizes always sum
    to ``len(database)`` and are within one transaction of the exact
    proportional share.
    """
    if not weights:
        raise DataGenerationError("weights must be non-empty")
    if any(w < 0 for w in weights):
        raise DataGenerationError("weights must be non-negative")
    total = float(sum(weights))
    if total <= 0:
        raise DataGenerationError("weights must sum to a positive value")

    n = len(database)
    shares = [w / total * n for w in weights]
    counts = [int(share) for share in shares]
    remainders = sorted(
        range(len(weights)), key=lambda i: shares[i] - counts[i], reverse=True
    )
    for i in remainders[: n - sum(counts)]:
        counts[i] += 1

    parts: list[TransactionDatabase] = []
    cursor = 0
    for count in counts:
        parts.append(database.slice(cursor, cursor + count))
        cursor += count
    return parts
