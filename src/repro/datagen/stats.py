"""Dataset statistics — the skew and shape numbers behind the experiments.

Summarises a generated dataset the way the evaluation needs to reason
about it: transaction-size distribution, item-frequency skew (the fuel
of §3.4's load balancing), and per-tree volume concentration (what the
root-hash partitioning actually distributes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.corpus import TransactionDatabase
from repro.errors import DataGenerationError
from repro.metrics.balance import coefficient_of_variation
from repro.taxonomy.hierarchy import Taxonomy


@dataclass(frozen=True)
class DatasetStats:
    """Summary of one transaction database over its taxonomy.

    Attributes
    ----------
    num_transactions / avg_transaction_size:
        Volume and mean basket size.
    distinct_items:
        Items occurring at least once.
    top1_item_share / top10_item_share:
        Fraction of total item volume owned by the most frequent item /
        the ten most frequent items — the frequency-skew dial.
    item_frequency_cv:
        Coefficient of variation of the per-item occurrence counts.
    tree_volume_cv:
        Coefficient of variation of per-root transaction-item volume —
        the skew root-hash placement is exposed to.
    """

    num_transactions: int
    avg_transaction_size: float
    distinct_items: int
    top1_item_share: float
    top10_item_share: float
    item_frequency_cv: float
    tree_volume_cv: float

    def __str__(self) -> str:
        return (
            f"n={self.num_transactions} avg_size={self.avg_transaction_size:.2f} "
            f"items={self.distinct_items} top1={self.top1_item_share:.1%} "
            f"top10={self.top10_item_share:.1%} "
            f"item_cv={self.item_frequency_cv:.2f} "
            f"tree_cv={self.tree_volume_cv:.2f}"
        )


def describe_dataset(
    database: TransactionDatabase,
    taxonomy: Taxonomy,
) -> DatasetStats:
    """Compute :class:`DatasetStats` for a database over a taxonomy."""
    if len(database) == 0:
        raise DataGenerationError("cannot describe an empty database")

    item_counts: dict[int, int] = {}
    tree_volume: dict[int, int] = {}
    for transaction in database:
        for item in transaction:
            item_counts[item] = item_counts.get(item, 0) + 1
            if item in taxonomy:
                root = taxonomy.root_of(item)
                tree_volume[root] = tree_volume.get(root, 0) + 1

    total_volume = sum(item_counts.values())
    ranked = sorted(item_counts.values(), reverse=True)
    top1 = ranked[0] / total_volume if total_volume else 0.0
    top10 = sum(ranked[:10]) / total_volume if total_volume else 0.0

    # Include silent trees: a root with zero volume is real skew.
    per_tree = [tree_volume.get(root, 0) for root in taxonomy.roots]

    return DatasetStats(
        num_transactions=len(database),
        avg_transaction_size=database.average_size(),
        distinct_items=len(item_counts),
        top1_item_share=top1,
        top10_item_share=top10,
        item_frequency_cv=coefficient_of_variation(ranked) if ranked else 0.0,
        tree_volume_cv=coefficient_of_variation(per_tree) if per_tree else 0.0,
    )
