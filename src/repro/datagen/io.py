"""On-disk transaction formats.

Three formats:

* **Text** — one transaction per line, space-separated item ids.  Human
  readable; interoperable with the classic FIMI repository layout.
* **Binary** — little-endian ``uint32`` stream: a magic word, the
  transaction count, then each transaction as a length prefix followed by
  its item ids.  Compact and fast to parse.
* **Store** — the chunked columnar directory format of
  :mod:`repro.store` (CSR segments + manifest with per-segment sha256
  digests).  The only format with a *streaming* writer and an mmap
  reader: :func:`save_transactions_store` accepts a plain iterator and
  never materialises the dataset, and
  :func:`load_transactions_store` returns a
  :class:`~repro.store.reader.TransactionStore` that miners scan
  directly (it satisfies the same protocol as
  :class:`~repro.datagen.corpus.TransactionDatabase`).

Text and binary round-trip through :class:`TransactionDatabase` and are
kept for interoperability; anything larger than memory should use the
store.
"""

from __future__ import annotations

import struct
from collections.abc import Iterable
from pathlib import Path

from repro.datagen.corpus import TransactionDatabase
from repro.errors import TransactionFormatError

_MAGIC = 0x47415231  # "GAR1" — generalized association rules, format 1
_HEADER = struct.Struct("<II")
_WORD = struct.Struct("<I")


def save_transactions_text(database: TransactionDatabase, path: str | Path) -> None:
    """Write one space-separated transaction per line."""
    path = Path(path)
    with path.open("w", encoding="ascii") as handle:
        for transaction in database:
            handle.write(" ".join(str(item) for item in transaction))
            handle.write("\n")


def load_transactions_text(path: str | Path) -> TransactionDatabase:
    """Read the text format written by :func:`save_transactions_text`.

    Blank lines are empty transactions; anything non-numeric raises
    :class:`~repro.errors.TransactionFormatError` with the line number.
    """
    path = Path(path)
    transactions: list[tuple[int, ...]] = []
    with path.open("r", encoding="ascii") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                transactions.append(())
                continue
            try:
                transactions.append(tuple(int(token) for token in line.split()))
            except ValueError as exc:
                raise TransactionFormatError(
                    f"{path}:{line_number}: non-integer item id"
                ) from exc
    return TransactionDatabase(transactions)


def save_transactions_binary(database: TransactionDatabase, path: str | Path) -> None:
    """Write the compact binary format (see module docstring)."""
    path = Path(path)
    with path.open("wb") as handle:
        handle.write(_HEADER.pack(_MAGIC, len(database)))
        for transaction in database:
            handle.write(_WORD.pack(len(transaction)))
            handle.write(struct.pack(f"<{len(transaction)}I", *transaction))


def load_transactions_binary(path: str | Path) -> TransactionDatabase:
    """Read the binary format written by :func:`save_transactions_binary`."""
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        raise TransactionFormatError(f"{path}: truncated header")
    magic, count = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise TransactionFormatError(f"{path}: bad magic {magic:#x}")
    offset = _HEADER.size
    transactions: list[tuple[int, ...]] = []
    for index in range(count):
        if offset + _WORD.size > len(data):
            raise TransactionFormatError(
                f"{path}: truncated at transaction {index} length prefix"
            )
        (length,) = _WORD.unpack_from(data, offset)
        offset += _WORD.size
        end = offset + length * _WORD.size
        if end > len(data):
            raise TransactionFormatError(f"{path}: truncated at transaction {index}")
        transactions.append(struct.unpack_from(f"<{length}I", data, offset))
        offset = end
    if offset != len(data):
        raise TransactionFormatError(f"{path}: {len(data) - offset} trailing bytes")
    return TransactionDatabase(transactions)


def save_transactions_store(
    transactions: Iterable[Iterable[int]] | TransactionDatabase,
    path: str | Path,
    segment_rows: int | None = None,
    meta: dict | None = None,
) -> Path:
    """Stream transactions into a columnar store directory at ``path``.

    Accepts any iterable — a :class:`TransactionDatabase`, a generator
    from :func:`repro.datagen.generator.iter_transactions`, a parsed
    file — and consumes it exactly once without materialising it.
    Returns the manifest path.
    """
    from repro.store.writer import DEFAULT_SEGMENT_ROWS, write_store

    return write_store(
        transactions,
        path,
        segment_rows=segment_rows if segment_rows is not None else DEFAULT_SEGMENT_ROWS,
        meta=meta,
    )


def load_transactions_store(path: str | Path, verify: bool = True):
    """Open a store directory written by :func:`save_transactions_store`.

    Returns a :class:`~repro.store.reader.TransactionStore` (mmap; rows
    are decoded lazily during scans).  Segment digests are verified up
    front unless ``verify=False``; corruption raises
    :class:`~repro.errors.StoreFormatError`.
    """
    from repro.store.reader import open_store

    return open_store(path, verify=verify)
