"""Quest-style synthetic transaction generator with a taxonomy.

Reimplements the generation procedure of Agrawal & Srikant (VLDB '94)
extended for classification hierarchies (VLDB '95), which the paper uses
verbatim ("The generation procedure is based on the method described in
[SA95]"):

1. Build the classification hierarchy (roots / fanout from the params).
2. Draw a pool of *maximal potentially large itemsets* ("patterns").
   Pattern sizes are Poisson around ``avg_pattern_size``; a fraction of
   each pattern's items (exponential around the correlation level) is
   inherited from the previous pattern; the rest are fresh draws from the
   taxonomy's leaves (or, with ``interior_item_prob``, interior items).
   Each pattern carries an exponentially distributed weight (optionally
   raised to a power to crank skew) and a corruption level drawn from a
   clipped normal.
3. Fill each transaction (Poisson size) by repeatedly picking a pattern
   by weight, corrupting it (dropping items while a uniform draw stays
   below the corruption level) and appending what fits; an over-long
   pattern is still appended in half of the cases, per the original
   recipe.

The entire dataset is a deterministic function of
:class:`~repro.datagen.params.GeneratorParams` (including its seed).
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from collections.abc import Iterator
from dataclasses import dataclass
from pathlib import Path

from repro.datagen.corpus import Transaction, TransactionDatabase
from repro.datagen.params import GeneratorParams
from repro.taxonomy.generate import generate_taxonomy
from repro.taxonomy.hierarchy import Taxonomy


@dataclass(frozen=True)
class Pattern:
    """One maximal potentially large itemset of the generator pool."""

    items: tuple[int, ...]
    weight: float
    corruption: float


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated dataset: hierarchy, transactions, and provenance."""

    params: GeneratorParams
    taxonomy: Taxonomy
    database: TransactionDatabase
    patterns: tuple[Pattern, ...]

    @property
    def name(self) -> str:
        return f"R{self.params.num_roots}F{self.params.fanout:g}"


def _poisson(rng: random.Random, mean: float) -> int:
    """Knuth's Poisson sampler; adequate for the small means used here."""
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


def _draw_pattern_items(
    rng: random.Random,
    size: int,
    previous: tuple[int, ...],
    leaves: tuple[int, ...],
    interior: tuple[int, ...],
    correlation: float,
    interior_item_prob: float,
) -> tuple[int, ...]:
    """Draw one pattern: part inherited from ``previous``, part fresh."""
    chosen: set[int] = set()
    if previous:
        fraction = min(1.0, rng.expovariate(1.0 / correlation) if correlation > 0 else 0.0)
        inherit = min(len(previous), round(fraction * size))
        if inherit:
            chosen.update(rng.sample(previous, inherit))
    while len(chosen) < size:
        if interior and rng.random() < interior_item_prob:
            chosen.add(rng.choice(interior))
        else:
            chosen.add(rng.choice(leaves))
    return tuple(sorted(chosen))


def generate_patterns(
    params: GeneratorParams,
    taxonomy: Taxonomy,
    rng: random.Random,
) -> tuple[Pattern, ...]:
    """Draw the potentially-large-itemset pool (step 2 of the recipe)."""
    leaves = taxonomy.leaves
    interior = tuple(i for i in sorted(taxonomy.items) if not taxonomy.is_leaf(i))
    patterns: list[Pattern] = []
    previous: tuple[int, ...] = ()
    weights: list[float] = []
    for _ in range(params.num_patterns):
        size = max(1, _poisson(rng, params.avg_pattern_size))
        size = min(size, len(leaves))
        items = _draw_pattern_items(
            rng,
            size,
            previous,
            leaves,
            interior,
            params.correlation,
            params.interior_item_prob,
        )
        corruption = min(
            1.0,
            max(0.0, rng.gauss(params.corruption_mean, params.corruption_sigma)),
        )
        weight = rng.expovariate(1.0) ** params.pattern_weight_exponent
        weights.append(weight)
        patterns.append(Pattern(items=items, weight=weight, corruption=corruption))
        previous = items
    total = sum(weights)
    if total > 0:
        patterns = [
            Pattern(items=p.items, weight=p.weight / total, corruption=p.corruption)
            for p in patterns
        ]
    return tuple(patterns)


def _cumulative_weights(patterns: tuple[Pattern, ...]) -> list[float]:
    cumulative: list[float] = []
    running = 0.0
    for pattern in patterns:
        running += pattern.weight
        cumulative.append(running)
    return cumulative


def iter_transactions(
    params: GeneratorParams,
    taxonomy: Taxonomy,
    patterns: tuple[Pattern, ...] | None = None,
    rng: random.Random | None = None,
) -> Iterator[Transaction]:
    """Stream ``params.num_transactions`` transactions, one at a time.

    This is the out-of-core generation path: it draws from exactly the
    same RNG sequence as :func:`generate_transactions` (which is now a
    thin materialising wrapper), so streaming a dataset into a
    :class:`~repro.store.writer.StoreWriter` yields row-for-row the
    database an in-memory run would mine — without ever holding more
    than one transaction.
    """
    rng = rng if rng is not None else random.Random(params.seed)
    if patterns is None:
        patterns = generate_patterns(params, taxonomy, rng)
    cumulative = _cumulative_weights(patterns)
    top = cumulative[-1]

    for _ in range(params.num_transactions):
        target = max(1, _poisson(rng, params.avg_transaction_size))
        contents: set[int] = set()
        while len(contents) < target:
            pattern = patterns[bisect_right(cumulative, rng.random() * top)]
            kept = list(pattern.items)
            while kept and rng.random() < pattern.corruption:
                kept.pop(rng.randrange(len(kept)))
            if not kept:
                continue
            if len(contents) + len(kept) > target and contents:
                # Over-long pattern: append anyway half the time, else
                # finish the transaction (original Quest behaviour).
                if rng.random() < 0.5:
                    contents.update(kept)
                break
            contents.update(kept)
        yield tuple(sorted(contents))


def generate_transactions(
    params: GeneratorParams,
    taxonomy: Taxonomy,
    patterns: tuple[Pattern, ...] | None = None,
    rng: random.Random | None = None,
) -> TransactionDatabase:
    """Fill ``params.num_transactions`` transactions from the pattern pool.

    Separated from :func:`generate_dataset` so tests and ablations can
    reuse one taxonomy/pattern pool across several transaction draws.
    Materialises the whole database; for datasets that should never
    live in memory use :func:`iter_transactions` /
    :func:`generate_dataset_to_store` instead.
    """
    return TransactionDatabase(iter_transactions(params, taxonomy, patterns, rng))


def generate_dataset(params: GeneratorParams) -> SyntheticDataset:
    """Generate the full dataset described by ``params``.

    Returns taxonomy, transactions and the pattern pool; everything is a
    pure function of ``params``.
    """
    rng = random.Random(params.seed)
    taxonomy = generate_taxonomy(
        num_items=params.num_items,
        num_roots=params.num_roots,
        fanout=params.fanout,
        seed=rng.randrange(2**31),
    )
    patterns = generate_patterns(params, taxonomy, rng)
    database = generate_transactions(params, taxonomy, patterns, rng)
    return SyntheticDataset(
        params=params, taxonomy=taxonomy, database=database, patterns=patterns
    )


def generate_dataset_to_store(
    params: GeneratorParams,
    path: str | Path,
    segment_rows: int | None = None,
) -> Path:
    """Generate a dataset straight into a columnar store directory.

    The transactions stream from :func:`iter_transactions` into the
    segment writer — peak memory is one segment's columns, independent
    of ``params.num_transactions`` — and the taxonomy is saved next to
    the manifest (``taxonomy.txt``), so the store directory is a
    self-contained mining input for ``repro-mine mine --store`` /
    ``CountingConfig(store=...)``.  Returns the manifest path.

    The store holds exactly the rows :func:`generate_dataset` would
    produce for the same ``params`` (same RNG stream, same
    normalisation) — digests of store-backed runs match in-memory runs
    byte for byte.
    """
    from repro.store.format import TAXONOMY_NAME
    from repro.store.writer import DEFAULT_SEGMENT_ROWS, StoreWriter
    from repro.taxonomy.io import save_taxonomy

    rng = random.Random(params.seed)
    taxonomy = generate_taxonomy(
        num_items=params.num_items,
        num_roots=params.num_roots,
        fanout=params.fanout,
        seed=rng.randrange(2**31),
    )
    patterns = generate_patterns(params, taxonomy, rng)
    meta = {
        "generator": "repro.datagen",
        "params": {
            "num_transactions": params.num_transactions,
            "num_items": params.num_items,
            "num_patterns": params.num_patterns,
            "num_roots": params.num_roots,
            "fanout": params.fanout,
            "seed": params.seed,
        },
    }
    with StoreWriter(
        path,
        segment_rows=segment_rows if segment_rows is not None else DEFAULT_SEGMENT_ROWS,
        meta=meta,
    ) as writer:
        writer.extend(iter_transactions(params, taxonomy, patterns, rng))
        save_taxonomy(taxonomy, writer.path / TAXONOMY_NAME)
    return writer.close()
