"""The :class:`TransactionDatabase` container.

A thin, immutable wrapper around a list of transactions (sorted tuples of
item ids) that carries the metadata every experiment needs — how many
transactions there are, which items occur, and basic size statistics.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence

from repro.errors import DataGenerationError

Transaction = tuple[int, ...]


class TransactionDatabase:
    """Immutable ordered collection of transactions.

    Parameters
    ----------
    transactions:
        Iterable of item collections; each is normalised to a sorted,
        deduplicated tuple.  Empty transactions are kept (they can occur
        after corruption) — they simply support nothing.
    """

    __slots__ = ("_transactions",)

    def __init__(self, transactions: Iterable[Iterable[int]]):
        self._transactions: tuple[Transaction, ...] = tuple(
            tuple(sorted(set(t))) for t in transactions
        )

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self._transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self._transactions[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TransactionDatabase):
            return NotImplemented
        return self._transactions == other._transactions

    def __hash__(self) -> int:
        return hash(self._transactions)

    @property
    def transactions(self) -> tuple[Transaction, ...]:
        """The underlying tuple of sorted transactions."""
        return self._transactions

    def item_universe(self) -> set[int]:
        """Every item id occurring in at least one transaction."""
        universe: set[int] = set()
        for transaction in self._transactions:
            universe.update(transaction)
        return universe

    def total_items(self) -> int:
        """Sum of transaction lengths (the database's raw volume)."""
        return sum(len(t) for t in self._transactions)

    def average_size(self) -> float:
        """Mean transaction length; 0.0 for an empty database."""
        if not self._transactions:
            return 0.0
        return self.total_items() / len(self._transactions)

    def slice(self, start: int, stop: int) -> "TransactionDatabase":
        """A new database over ``transactions[start:stop]``."""
        return TransactionDatabase(self._transactions[start:stop])

    def split(self, num_parts: int) -> list["TransactionDatabase"]:
        """Split into ``num_parts`` contiguous, near-equal databases.

        The first ``len(self) % num_parts`` parts receive one extra
        transaction, mirroring an even round of disk writes.
        """
        if num_parts <= 0:
            raise DataGenerationError(f"num_parts must be positive, got {num_parts}")
        base, extra = divmod(len(self._transactions), num_parts)
        parts: list[TransactionDatabase] = []
        cursor = 0
        for index in range(num_parts):
            size = base + (1 if index < extra else 0)
            parts.append(self.slice(cursor, cursor + size))
            cursor += size
        return parts

    @classmethod
    def from_sequence(cls, transactions: Sequence[Iterable[int]]) -> "TransactionDatabase":
        """Alias constructor; mirrors other containers in the library."""
        return cls(transactions)

    def __repr__(self) -> str:
        return (
            f"TransactionDatabase(n={len(self._transactions)}, "
            f"avg_size={self.average_size():.2f})"
        )
