"""Generator parameters and the paper's dataset presets (Table 5).

The paper's three datasets share every knob except the hierarchy shape:

==============================================  =======  =======  =======
Parameter                                        R30F5    R30F3    R30F10
==============================================  =======  =======  =======
Number of transactions                          3200000  3200000  3200000
Average size of the transactions                     10       10       10
Average size of maximal potentially large sets        5        5        5
Number of maximal potentially large itemsets      10000    10000    10000
Number of items                                   30000    30000    30000
Number of roots                                      30       30       30
Number of levels (emergent)                         5–6      6–7      3–4
Fanout                                                5        3       10
==============================================  =======  =======  =======

Full-size generation is supported but slow in pure Python, so
:func:`preset` takes a ``scale`` factor that shrinks the transaction
count, item universe and pattern pool proportionally while preserving the
structural ratios (roots and fanout are never scaled — they define the
hierarchy *shape* the experiments depend on).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import DataGenerationError


@dataclass(frozen=True)
class GeneratorParams:
    """Knobs of the synthetic transaction generator.

    Attributes
    ----------
    num_transactions:
        ``|D|`` — number of transactions to generate.
    avg_transaction_size:
        ``|T|`` — mean transaction size (Poisson).
    avg_pattern_size:
        ``|I|`` — mean size of the maximal potentially large itemsets
        (Poisson, at least 1).
    num_patterns:
        ``|L|`` — size of the potentially-large-itemset pool.
    num_items:
        ``N`` — total number of items across all hierarchy levels.
    num_roots:
        ``R`` — number of trees in the classification hierarchy.
    fanout:
        ``F`` — average children per interior item.
    correlation:
        Mean of the exponential deciding what fraction of a pattern is
        inherited from the previous pattern (Quest's correlation level).
    corruption_mean / corruption_sigma:
        Per-pattern corruption level ~ clipped normal; during transaction
        fill, each pattern is truncated by dropping items while a uniform
        draw is below the corruption level (Quest's recipe).
    pattern_weight_exponent:
        Pattern weights are ``exponential(1) ** pattern_weight_exponent``
        before normalisation.  1.0 reproduces Quest; larger values crank
        the frequency skew (used by the skew ablation bench).
    interior_item_prob:
        Probability that a pattern item is drawn from interior hierarchy
        levels instead of the leaves.  The default 0 matches retail
        reality (transactions contain actual products = leaves).
    seed:
        Base RNG seed; the full dataset is a pure function of the params.
    """

    num_transactions: int = 100_000
    avg_transaction_size: float = 10.0
    avg_pattern_size: float = 5.0
    num_patterns: int = 10_000
    num_items: int = 30_000
    num_roots: int = 30
    fanout: float = 5.0
    correlation: float = 0.25
    corruption_mean: float = 0.5
    corruption_sigma: float = 0.1
    pattern_weight_exponent: float = 1.0
    interior_item_prob: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_transactions <= 0:
            raise DataGenerationError("num_transactions must be positive")
        if self.avg_transaction_size < 1:
            raise DataGenerationError("avg_transaction_size must be >= 1")
        if self.avg_pattern_size < 1:
            raise DataGenerationError("avg_pattern_size must be >= 1")
        if self.num_patterns <= 0:
            raise DataGenerationError("num_patterns must be positive")
        if self.num_items <= self.num_roots:
            raise DataGenerationError("num_items must exceed num_roots")
        if self.num_roots <= 0:
            raise DataGenerationError("num_roots must be positive")
        if self.fanout < 1:
            raise DataGenerationError("fanout must be >= 1")
        if not 0 <= self.interior_item_prob <= 1:
            raise DataGenerationError("interior_item_prob must be in [0, 1]")
        if self.pattern_weight_exponent <= 0:
            raise DataGenerationError("pattern_weight_exponent must be positive")

    def scaled(self, scale: float) -> "GeneratorParams":
        """Proportionally shrink (or grow) the dataset.

        ``num_transactions``, ``num_items`` and ``num_patterns`` scale
        linearly; hierarchy shape (roots, fanout) and per-transaction
        statistics are untouched.  The item floor keeps at least three
        hierarchy levels so the generalized-rule machinery stays
        exercised at tiny scales.
        """
        if scale <= 0:
            raise DataGenerationError(f"scale must be positive, got {scale}")
        min_items = int(self.num_roots * (1 + self.fanout + self.fanout**2)) + 1
        return replace(
            self,
            num_transactions=max(1, round(self.num_transactions * scale)),
            num_items=max(min_items, round(self.num_items * scale)),
            num_patterns=max(10, round(self.num_patterns * scale)),
        )


#: The paper's datasets at full size (Table 5).
DATASET_PRESETS: dict[str, GeneratorParams] = {
    "R30F5": GeneratorParams(
        num_transactions=3_200_000, num_items=30_000, num_roots=30, fanout=5.0
    ),
    "R30F3": GeneratorParams(
        num_transactions=3_200_000, num_items=30_000, num_roots=30, fanout=3.0
    ),
    "R30F10": GeneratorParams(
        num_transactions=3_200_000, num_items=30_000, num_roots=30, fanout=10.0
    ),
}


def preset(name: str, scale: float = 1.0, seed: int | None = None) -> GeneratorParams:
    """Look up a Table-5 preset, optionally scaled and reseeded.

    Parameters
    ----------
    name:
        One of ``"R30F5"``, ``"R30F3"``, ``"R30F10"`` (case-insensitive).
    scale:
        Linear shrink factor applied to transactions/items/patterns; the
        experiment harness defaults to a laptop-friendly scale and
        records it in EXPERIMENTS.md.
    seed:
        Override the preset's RNG seed.
    """
    try:
        params = DATASET_PRESETS[name.upper()]
    except KeyError:
        known = ", ".join(sorted(DATASET_PRESETS))
        raise DataGenerationError(f"unknown preset {name!r}; known: {known}") from None
    if scale != 1.0:
        params = params.scaled(scale)
    if seed is not None:
        params = replace(params, seed=seed)
    return params
