"""Exception hierarchy for the ``repro`` library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch one base class.  Subclasses are grouped by subsystem:
taxonomy construction, data generation, cluster simulation, and mining.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class TaxonomyError(ReproError):
    """Invalid classification-hierarchy structure or item reference."""


class CycleError(TaxonomyError):
    """The supplied parent relation contains a cycle.

    A classification hierarchy is acyclic by definition (Section 2 of the
    paper): "there is no item which is an ancestor of itself".
    """


class UnknownItemError(TaxonomyError):
    """An operation referenced an item id outside the taxonomy."""


class DataGenerationError(ReproError):
    """Invalid synthetic-data parameters or generation failure."""


class TransactionFormatError(ReproError):
    """A transaction file or byte stream could not be parsed."""


class StoreFormatError(TransactionFormatError):
    """A columnar transaction store is malformed or corrupt.

    Raised by :mod:`repro.store` when a manifest or segment fails
    validation: bad magic, unsupported format version, truncated
    columns, or a sha256 segment digest that does not match the bytes
    on disk.  A digest mismatch means the dataset the miner would scan
    is not the dataset that was written — the store refuses to serve a
    single row from it.
    """


class ClusterError(ReproError):
    """Invalid cluster configuration or simulator misuse."""


class MemoryBudgetError(ClusterError):
    """A node's candidate memory budget was exceeded.

    Raised when an allocation strategy places more candidates on a node
    than :attr:`repro.cluster.config.ClusterConfig.memory_per_node` allows
    and the algorithm has no fragmenting fallback.
    """


class RoutingError(ClusterError):
    """A message was addressed to a node id outside the cluster."""


class FaultError(ClusterError):
    """Base class of the fault-injection / recovery layer.

    Raised when an injected fault could not be absorbed by the recovery
    protocol (see :mod:`repro.faults`).  Recoverable faults never raise
    — they are charged to the ``fault_*`` counters of
    :class:`~repro.cluster.stats.NodeStats` instead.
    """


class FaultPlanError(FaultError):
    """An invalid :class:`~repro.faults.plan.FaultPlan` declaration."""


class SendRetryExhaustedError(FaultError):
    """A transient send failure persisted past the retry budget."""


class CheckpointError(FaultError):
    """A recovery needed a pass checkpoint that was never recorded."""


class UnrecoverableFaultError(FaultError):
    """Recovery replay produced state that contradicts the checkpoint."""


class InvariantViolationError(ClusterError):
    """A simulator invariant failed at a pass boundary.

    Raised only when invariant checking is enabled (see
    :mod:`repro.cluster.invariants`): message conservation broke, the
    per-node statistics disagree with the network's ground truth, or a
    node's candidate residency exceeded its memory budget.
    """


class MiningError(ReproError):
    """Invalid mining parameters (e.g. minimum support outside (0, 1])."""


class ObservabilityError(ReproError):
    """Invalid telemetry usage: bad metric/label names, span misuse, or
    a malformed event-sink stream (see :mod:`repro.obs`)."""


class ServingError(ReproError):
    """Base class of the online serving layer (see :mod:`repro.serve`)."""


class SnapshotFormatError(ServingError):
    """A rule-snapshot (or rules JSONL) stream could not be parsed, or
    its content digest does not match the recorded version."""


class SLOViolationError(ServingError):
    """A service-level objective was breached (see :mod:`repro.obs.slo`).

    Raised by ``repro-slo check`` when any declared objective in
    ``slo.json`` is violated by the observed request stream; the
    dedicated exit code lets CI gate on SLOs separately from other
    serving failures.
    """


class ShardError(ServingError):
    """Base class of the sharded serving tier (see :mod:`repro.serve.shard`)."""


class ShardDownError(ShardError):
    """A shard worker is dead (killed, crashed, or past its breaker)."""


class ShardSaturatedError(ShardError):
    """A shard worker's bounded request queue is full.

    Internal failover signal: the router treats a saturated replica
    like a failed one and tries the next; only when *every* replica of
    a partition is saturated does the request shed as
    :class:`OverloadShedError`.
    """


class PartitionUnavailableError(ShardDownError):
    """Every replica of one partition failed past the retry budget.

    The router catches this per partition: the request degrades to a
    partial answer (``degraded: true`` with the unavailable partitions
    listed) instead of failing outright.
    """


class OverloadShedError(ServingError):
    """The tier refused a request to protect the ones already admitted.

    Carries ``retry_after`` (seconds) so front ends can answer with a
    structured ``429`` + ``Retry-After`` instead of queueing without
    bound.
    """

    def __init__(self, message: str, retry_after: float = 0.05):
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ServingError):
    """A request's deadline expired before an answer was assembled."""


class EmptyRuleSetError(ServingError):
    """A rules export or snapshot build produced zero rules.

    An empty snapshot would serve nothing; the thresholds (confidence,
    support, interest) are almost certainly wrong for the workload, so
    the CLIs fail loudly with a dedicated exit code instead of writing
    a vacuous artifact.
    """


#: Most-specific-first (class, exit code) table for the CLI front ends.
#: Codes 0–2 are reserved (success, unexpected crash, argparse usage).
_EXIT_CODES: tuple[tuple[type, int], ...] = (
    (MemoryBudgetError, 4),
    (InvariantViolationError, 5),
    (RoutingError, 6),
    (FaultError, 7),
    (MiningError, 3),
    (TaxonomyError, 9),
    (DataGenerationError, 10),
    (StoreFormatError, 18),
    (TransactionFormatError, 11),
    (ObservabilityError, 12),
    (SLOViolationError, 17),
    (EmptyRuleSetError, 15),
    (SnapshotFormatError, 16),
    (OverloadShedError, 19),
    (DeadlineExceededError, 20),
    (ShardError, 21),
    (ServingError, 14),
    (ClusterError, 8),
    (ReproError, 13),
)


def exit_code_for(error: BaseException) -> int:
    """Process exit code for a :class:`ReproError` (13 for the base)."""
    for error_type, code in _EXIT_CODES:
        if isinstance(error, error_type):
            return code
    return 13


def error_label(error: BaseException) -> str:
    """Human label of an error class: ``MemoryBudgetError`` → ``memory
    budget error`` (used for the CLI's one-line messages)."""
    name = type(error).__name__
    words: list[str] = []
    current = ""
    for char in name:
        if char.isupper() and current:
            words.append(current)
            current = char
        else:
            current += char
    if current:
        words.append(current)
    return " ".join(word.lower() for word in words)
